#include "storage/ext_hash.h"

#include <cstring>
#include <unordered_set>

namespace hdb::storage {

namespace {

constexpr uint32_t kHeaderBytes = 16;
constexpr uint32_t kEntryBytes = 16;
constexpr uint32_t kMaxDepth = 20;

uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ExtHashTable::ExtHashTable(BufferPool* pool, uint32_t owner_oid)
    : pool_(pool), owner_oid_(owner_oid) {
  // Start with a single bucket at depth 0.
  auto page = NewBucketPage(0);
  directory_.push_back(page.ok() ? *page : kInvalidPageId);
}

ExtHashTable::~ExtHashTable() {
  std::unordered_set<PageId> freed;
  for (const PageId head : directory_) {
    PageId id = head;
    while (id != kInvalidPageId && !freed.count(id)) {
      freed.insert(id);
      PageId next = kInvalidPageId;
      auto h = pool_->FetchPage(SpacePageId{SpaceId::kTemp, id},
                                PageType::kHeap, owner_oid_);
      if (h.ok()) {
        BucketHeader hdr;
        std::memcpy(&hdr, h->data(), sizeof(hdr));
        next = hdr.overflow;
        h->Release();
      }
      pool_->DiscardPage(SpacePageId{SpaceId::kTemp, id});
      id = next;
    }
  }
}

uint32_t ExtHashTable::EntriesPerPage() const {
  return (pool_->page_bytes() - kHeaderBytes) / kEntryBytes;
}

size_t ExtHashTable::DirIndex(uint64_t key) const {
  return static_cast<size_t>(MixKey(key) &
                             ((1ull << global_depth_) - 1ull));
}

Result<PageId> ExtHashTable::NewBucketPage(uint32_t local_depth) {
  PageId id = kInvalidPageId;
  HDB_ASSIGN_OR_RETURN(
      PageHandle h,
      pool_->NewPage(SpaceId::kTemp, PageType::kHeap, owner_oid_, &id));
  BucketHeader hdr{local_depth, 0, kInvalidPageId};
  std::memcpy(h.data(), &hdr, sizeof(hdr));
  h.MarkDirty();
  return id;
}

Status ExtHashTable::Insert(uint64_t key, uint64_t value) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const size_t dir = DirIndex(key);
    PageId id = directory_[dir];
    uint32_t local_depth = 0;
    // Walk the chain looking for a page with space.
    PageId last = kInvalidPageId;
    while (id != kInvalidPageId) {
      HDB_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FetchPage(SpacePageId{SpaceId::kTemp, id},
                                            PageType::kHeap, owner_oid_));
      BucketHeader hdr;
      std::memcpy(&hdr, h.data(), sizeof(hdr));
      if (id == directory_[dir]) local_depth = hdr.local_depth;
      if (hdr.count < EntriesPerPage()) {
        Entry e{key, value};
        std::memcpy(h.data() + kHeaderBytes + hdr.count * kEntryBytes, &e,
                    kEntryBytes);
        hdr.count++;
        std::memcpy(h.data(), &hdr, sizeof(hdr));
        h.MarkDirty();
        ++size_;
        return Status::OK();
      }
      last = id;
      id = hdr.overflow;
    }
    // Chain is full. Split if we can; otherwise chain an overflow page.
    if (local_depth < kMaxDepth) {
      HDB_RETURN_IF_ERROR(SplitBucket(dir));
      continue;  // retry
    }
    HDB_ASSIGN_OR_RETURN(const PageId fresh, NewBucketPage(local_depth));
    HDB_ASSIGN_OR_RETURN(PageHandle h,
                         pool_->FetchPage(SpacePageId{SpaceId::kTemp, last},
                                          PageType::kHeap, owner_oid_));
    BucketHeader hdr;
    std::memcpy(&hdr, h.data(), sizeof(hdr));
    hdr.overflow = fresh;
    std::memcpy(h.data(), &hdr, sizeof(hdr));
    h.MarkDirty();
  }
  return Status::Internal("extendible hash insert did not converge");
}

Status ExtHashTable::SplitBucket(size_t dir_index) {
  const PageId old_head = directory_[dir_index];

  // Gather every entry in the chain, then free the chain's pages.
  std::vector<Entry> entries;
  uint32_t local_depth = 0;
  {
    PageId id = old_head;
    while (id != kInvalidPageId) {
      HDB_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FetchPage(SpacePageId{SpaceId::kTemp, id},
                                            PageType::kHeap, owner_oid_));
      BucketHeader hdr;
      std::memcpy(&hdr, h.data(), sizeof(hdr));
      if (id == old_head) local_depth = hdr.local_depth;
      for (uint32_t i = 0; i < hdr.count; ++i) {
        Entry e;
        std::memcpy(&e, h.data() + kHeaderBytes + i * kEntryBytes,
                    kEntryBytes);
        entries.push_back(e);
      }
      const PageId next = hdr.overflow;
      h.Release();
      pool_->DiscardPage(SpacePageId{SpaceId::kTemp, id});
      id = next;
    }
  }

  if (local_depth == global_depth_) {
    // Double the directory.
    const size_t old_size = directory_.size();
    directory_.resize(old_size * 2);
    for (size_t i = 0; i < old_size; ++i) {
      directory_[old_size + i] = directory_[i];
    }
    ++global_depth_;
  }

  const uint32_t new_depth = local_depth + 1;
  HDB_ASSIGN_OR_RETURN(const PageId page0, NewBucketPage(new_depth));
  HDB_ASSIGN_OR_RETURN(const PageId page1, NewBucketPage(new_depth));

  // Repoint every directory slot that referenced the old chain, using bit
  // `local_depth` of the hash to choose the sibling.
  for (size_t i = 0; i < directory_.size(); ++i) {
    if (directory_[i] == old_head) {
      directory_[i] = ((i >> local_depth) & 1) ? page1 : page0;
    }
  }

  // Redistribute the entries; appending respects overflow creation via the
  // plain Insert path (size_ is adjusted to avoid double counting).
  const uint64_t saved_size = size_;
  for (const Entry& e : entries) {
    HDB_RETURN_IF_ERROR(Insert(e.key, e.value));
  }
  size_ = saved_size;
  return Status::OK();
}

Status ExtHashTable::Remove(uint64_t key, uint64_t value) {
  const size_t dir = DirIndex(key);
  PageId id = directory_[dir];
  while (id != kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(PageHandle h,
                         pool_->FetchPage(SpacePageId{SpaceId::kTemp, id},
                                          PageType::kHeap, owner_oid_));
    BucketHeader hdr;
    std::memcpy(&hdr, h.data(), sizeof(hdr));
    for (uint32_t i = 0; i < hdr.count; ++i) {
      Entry e;
      std::memcpy(&e, h.data() + kHeaderBytes + i * kEntryBytes, kEntryBytes);
      if (e.key == key && e.value == value) {
        // Swap the last entry of this page into the hole.
        Entry tail;
        std::memcpy(&tail,
                    h.data() + kHeaderBytes + (hdr.count - 1) * kEntryBytes,
                    kEntryBytes);
        std::memcpy(h.data() + kHeaderBytes + i * kEntryBytes, &tail,
                    kEntryBytes);
        hdr.count--;
        std::memcpy(h.data(), &hdr, sizeof(hdr));
        h.MarkDirty();
        --size_;
        return Status::OK();
      }
    }
    id = hdr.overflow;
  }
  return Status::NotFound("key/value not in hash table");
}

Status ExtHashTable::ForEach(uint64_t key,
                             const std::function<bool(uint64_t)>& fn) const {
  const size_t dir = DirIndex(key);
  PageId id = directory_[dir];
  while (id != kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(PageHandle h,
                         pool_->FetchPage(SpacePageId{SpaceId::kTemp, id},
                                          PageType::kHeap, owner_oid_));
    BucketHeader hdr;
    std::memcpy(&hdr, h.data(), sizeof(hdr));
    for (uint32_t i = 0; i < hdr.count; ++i) {
      Entry e;
      std::memcpy(&e, h.data() + kHeaderBytes + i * kEntryBytes, kEntryBytes);
      if (e.key == key && !fn(e.value)) return Status::OK();
    }
    id = hdr.overflow;
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> ExtHashTable::Lookup(uint64_t key) const {
  std::vector<uint64_t> out;
  HDB_RETURN_IF_ERROR(ForEach(key, [&out](uint64_t v) {
    out.push_back(v);
    return true;
  }));
  return out;
}

size_t ExtHashTable::bucket_pages() const {
  std::unordered_set<PageId> seen;
  for (const PageId head : directory_) seen.insert(head);
  return seen.size();
}

}  // namespace hdb::storage
