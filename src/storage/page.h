#ifndef HDB_STORAGE_PAGE_H_
#define HDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace hdb::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Default page/frame size. The paper stresses that *all* page frames in
/// the pool are the same size so any frame can hold any page type.
inline constexpr uint32_t kDefaultPageBytes = 4096;

/// Database spaces (files). The paper's layout: a main database file, a
/// separate transaction log, and temporary files for intermediate results;
/// heap pages spill to the temporary file when stolen.
enum class SpaceId : uint8_t {
  kMain = 0,
  kTemp = 1,
  kLog = 2,
};
inline constexpr int kNumSpaces = 3;

/// Every page type shares the single heterogeneous buffer pool (paper
/// §2.1). The type tags frames for replacement policy decisions (heap and
/// temp-table pages are lookaside-eligible) and for accounting.
enum class PageType : uint8_t {
  kFree = 0,
  kTable,
  kIndex,
  kUndoLog,
  kRedoLog,
  kBitmap,
  kHeap,
  kTempTable,
};

inline std::string_view PageTypeName(PageType t) {
  switch (t) {
    case PageType::kFree: return "free";
    case PageType::kTable: return "table";
    case PageType::kIndex: return "index";
    case PageType::kUndoLog: return "undo";
    case PageType::kRedoLog: return "redo";
    case PageType::kBitmap: return "bitmap";
    case PageType::kHeap: return "heap";
    case PageType::kTempTable: return "temp";
  }
  return "?";
}

/// Fully-qualified page address.
struct SpacePageId {
  SpaceId space = SpaceId::kMain;
  PageId page = kInvalidPageId;

  bool operator==(const SpacePageId&) const = default;
};

struct SpacePageIdHash {
  size_t operator()(const SpacePageId& id) const {
    return (static_cast<size_t>(id.space) << 32) ^ id.page;
  }
};

/// Log sequence number. 0 means "no logged change touched this page yet"
/// (freshly allocated, or a page type that is not WAL-logged at all).
using Lsn = uint64_t;
inline constexpr Lsn kNullLsn = 0;

/// WAL-logged page types place their page LSN in the first 8 bytes of the
/// image by convention (table_heap's slotted-page header starts with it).
/// Recovery's redo pass is made idempotent by this stamp: a record is
/// re-applied only when the page's LSN is older than the record's.
inline Lsn PageLsn(const char* page) {
  Lsn lsn;
  std::memcpy(&lsn, page, sizeof(lsn));
  return lsn;
}

inline void SetPageLsn(char* page, Lsn lsn) {
  std::memcpy(page, &lsn, sizeof(lsn));
}

}  // namespace hdb::storage

#endif  // HDB_STORAGE_PAGE_H_
