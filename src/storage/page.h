#ifndef HDB_STORAGE_PAGE_H_
#define HDB_STORAGE_PAGE_H_

#include <cstdint>
#include <string_view>

namespace hdb::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Default page/frame size. The paper stresses that *all* page frames in
/// the pool are the same size so any frame can hold any page type.
inline constexpr uint32_t kDefaultPageBytes = 4096;

/// Database spaces (files). The paper's layout: a main database file, a
/// separate transaction log, and temporary files for intermediate results;
/// heap pages spill to the temporary file when stolen.
enum class SpaceId : uint8_t {
  kMain = 0,
  kTemp = 1,
  kLog = 2,
};
inline constexpr int kNumSpaces = 3;

/// Every page type shares the single heterogeneous buffer pool (paper
/// §2.1). The type tags frames for replacement policy decisions (heap and
/// temp-table pages are lookaside-eligible) and for accounting.
enum class PageType : uint8_t {
  kFree = 0,
  kTable,
  kIndex,
  kUndoLog,
  kRedoLog,
  kBitmap,
  kHeap,
  kTempTable,
};

inline std::string_view PageTypeName(PageType t) {
  switch (t) {
    case PageType::kFree: return "free";
    case PageType::kTable: return "table";
    case PageType::kIndex: return "index";
    case PageType::kUndoLog: return "undo";
    case PageType::kRedoLog: return "redo";
    case PageType::kBitmap: return "bitmap";
    case PageType::kHeap: return "heap";
    case PageType::kTempTable: return "temp";
  }
  return "?";
}

/// Fully-qualified page address.
struct SpacePageId {
  SpaceId space = SpaceId::kMain;
  PageId page = kInvalidPageId;

  bool operator==(const SpacePageId&) const = default;
};

struct SpacePageIdHash {
  size_t operator()(const SpacePageId& id) const {
    return (static_cast<size_t>(id.space) << 32) ^ id.page;
  }
};

}  // namespace hdb::storage

#endif  // HDB_STORAGE_PAGE_H_
