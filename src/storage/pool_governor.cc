#include "storage/pool_governor.h"

#include <algorithm>

#include "obs/metric_names.h"

namespace hdb::storage {

PoolGovernor::PoolGovernor(BufferPool* pool, os::MemoryEnv* env,
                           os::VirtualClock* clock,
                           PoolGovernorOptions options)
    : pool_(pool), env_(env), clock_(clock), options_(options) {
  fast_polls_remaining_ = options_.startup_fast_polls;
  next_poll_micros_ = clock_->NowMicros() + options_.fast_poll_period_micros;
  last_db_bytes_ = pool_->disk()->TotalDatabaseBytes();
  last_free_physical_ = env_->FreePhysical();
  PublishAllocation();
}

uint64_t PoolGovernor::ReportedAllocation() const {
  return pool_->CurrentBytes() + options_.fixed_overhead_bytes +
         static_cast<uint64_t>(std::max<int64_t>(
             0, main_heap_bytes_.load(std::memory_order_relaxed)));
}

void PoolGovernor::PublishAllocation() {
  env_->SetAllocation(options_.process_name, ReportedAllocation());
}

void PoolGovernor::AddMainHeapBytes(int64_t delta) {
  const int64_t now =
      main_heap_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (now < 0) main_heap_bytes_.store(0, std::memory_order_relaxed);
  PublishAllocation();
}

uint64_t PoolGovernor::SoftUpperBoundLocked() const {
  // Eq. (1): min(database size + main heap size, upper bound). Database
  // size includes the temporary files, so large intermediate results
  // automatically unconstrain the pool (paper §2).
  const uint64_t db = pool_->disk()->TotalDatabaseBytes();
  const uint64_t heap = static_cast<uint64_t>(std::max<int64_t>(
      0, main_heap_bytes_.load(std::memory_order_relaxed)));
  return std::min(db + heap, options_.max_bytes);
}

std::vector<PoolGovernorSample> PoolGovernor::history() const {
  LockGuard lock(mu_);
  return history_;
}

void PoolGovernor::AttachTelemetry(obs::MetricsRegistry* registry,
                                   obs::DecisionLog* decisions) {
  // Register before taking mu_: snapshot callbacks run under the registry
  // mutex and may take subsystem mutexes, so the reverse order here would
  // be a lock-order inversion.
  obs::Counter* polls = nullptr;
  obs::Counter* grows = nullptr;
  obs::Counter* shrinks = nullptr;
  if (registry != nullptr) {
    polls = registry->RegisterCounter(obs::kPoolGovernorPolls);
    grows = registry->RegisterCounter(obs::kPoolResizesGrow);
    shrinks = registry->RegisterCounter(obs::kPoolResizesShrink);
  }
  LockGuard lock(mu_);
  polls_counter_ = polls;
  grows_counter_ = grows;
  shrinks_counter_ = shrinks;
  decisions_ = decisions;
}

bool PoolGovernor::MaybePoll() {
  // Cheap unlatched gate first: every session thread ticks the clock
  // through here, and most ticks are nowhere near the sampling period.
  if (clock_->NowMicros() < next_poll_micros()) return false;
  LockGuard lock(mu_);
  if (clock_->NowMicros() < next_poll_micros()) return false;  // lost race
  PollNowLocked();
  return true;
}

PoolGovernorSample PoolGovernor::PollNow() {
  LockGuard lock(mu_);
  return PollNowLocked();
}

PoolGovernorSample PoolGovernor::PollNowLocked() {
  PoolGovernorSample s;
  s.at_micros = clock_->NowMicros();
  s.working_set = env_->WorkingSetSize(options_.process_name);
  s.free_physical = env_->FreePhysical();
  s.misses_since_last = pool_->TakeMissesSinceLastPoll();

  const uint64_t current = pool_->CurrentBytes();
  const uint32_t page = pool_->page_bytes();

  uint64_t ideal;
  if (!options_.ce_mode) {
    // Target: the process's current real memory plus whatever is unused,
    // minus the OS reserve (paper §2).
    const uint64_t ws_plus_free = s.working_set + s.free_physical;
    ideal = ws_plus_free > options_.os_reserve_bytes
                ? ws_plus_free - options_.os_reserve_bytes
                : 0;
  } else {
    // Windows CE: no working-set reporting; reference input is the current
    // pool size. Grow only on an *increase* in device free memory; shrink
    // when free memory fell (another application allocated).
    ideal = current;
    if (s.free_physical > last_free_physical_) {
      const uint64_t headroom =
          s.free_physical > options_.os_reserve_bytes
              ? s.free_physical - options_.os_reserve_bytes
              : 0;
      ideal = current + headroom;
    } else if (s.free_physical < options_.os_reserve_bytes) {
      const uint64_t deficit = options_.os_reserve_bytes - s.free_physical;
      ideal = current > deficit ? current - deficit : 0;
    }
  }

  // Clamp to [lower bound, min(soft upper bound per Eq. (1), hard upper)].
  const uint64_t upper = SoftUpperBoundLocked();
  uint64_t target = std::clamp(ideal, options_.min_bytes,
                               std::max(options_.min_bytes, upper));
  s.target_bytes = target;

  // No buffer misses since the last poll => the working set of database
  // pages fits (or the server is idle): growth is pointless. Shrinking is
  // always allowed (paper §2).
  if (target > current && s.misses_since_last == 0) {
    s.growth_blocked_no_misses = true;
    target = current;
  }

  // Anti-hysteresis guard (§6 extension): right after a shrink, cap how
  // much of it may be re-grown immediately.
  if (options_.hysteresis_polls > 0 && target > current &&
      polls_since_shrink_ <= options_.hysteresis_polls) {
    const auto cap = current + static_cast<uint64_t>(
        options_.hysteresis_growth_cap *
        static_cast<double>(last_shrink_amount_));
    target = std::min(target, std::max(cap, current));
  }

  uint64_t new_size = current;
  const uint64_t diff = target > current ? target - current : current - target;
  if (diff < options_.dead_zone_bytes) {
    s.in_dead_zone = true;
  } else {
    // Eq. (2): damped resize.
    new_size = static_cast<uint64_t>(
        options_.damping * static_cast<double>(target) +
        (1.0 - options_.damping) * static_cast<double>(current));
  }

  if (new_size != current) {
    const size_t target_frames =
        std::max<size_t>(1, new_size / page);
    const size_t got = pool_->Resize(target_frames);
    new_size = static_cast<uint64_t>(got) * page;
    s.grew = new_size > current;
    s.shrank = new_size < current;
    if (s.shrank) {
      polls_since_shrink_ = 0;
      last_shrink_amount_ = current - new_size;
    }
    PublishAllocation();
  }
  if (!s.shrank) polls_since_shrink_++;
  s.new_size_bytes = new_size;

  // Sampling-period adaptation: fast at startup and after significant
  // database growth; the period is *not* changed by memory fluctuations
  // elsewhere in the system (paper §2).
  const uint64_t db_bytes = pool_->disk()->TotalDatabaseBytes();
  if (last_db_bytes_ > 0 &&
      static_cast<double>(db_bytes) >
          static_cast<double>(last_db_bytes_) *
              (1.0 + options_.significant_growth_fraction)) {
    fast_polls_remaining_ = std::max(fast_polls_remaining_, 2);
  }
  const bool fast = fast_polls_remaining_ > 0;
  if (fast_polls_remaining_ > 0) fast_polls_remaining_--;
  next_poll_micros_ =
      clock_->NowMicros() +
      (fast ? options_.fast_poll_period_micros : options_.poll_period_micros);

  last_db_bytes_ = db_bytes;
  last_free_physical_ = s.free_physical;
  polls_done_++;
  history_.push_back(s);

  if (polls_counter_ != nullptr) {
    polls_counter_->Add();
    if (s.grew) grows_counter_->Add();
    if (s.shrank) shrinks_counter_->Add();
  }
  if (decisions_ != nullptr) {
    const char* action = s.grew ? "grow" : (s.shrank ? "shrink" : "hold");
    const char* reason = s.grew ? "target_above_current"
                        : s.shrank ? "target_below_current"
                        : s.in_dead_zone ? "dead_zone"
                        : s.growth_blocked_no_misses ? "no_misses"
                                                     : "at_target";
    decisions_->Record(s.at_micros, "pool", action, reason,
                       static_cast<double>(s.target_bytes),
                       static_cast<double>(s.new_size_bytes));
  }
  return s;
}

}  // namespace hdb::storage
