#ifndef HDB_OPTIMIZER_PLAN_H_
#define HDB_OPTIMIZER_PLAN_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "optimizer/query.h"

namespace hdb::optimizer {

struct PlanNode;

/// Measured per-operator execution facts, collected by EXPLAIN ANALYZE
/// (the executor wraps each operator and fills one entry per plan node).
/// Rendered by PlanNode::Explain next to the optimizer's estimates so
/// estimate-vs-actual drift — the paper's §4 feedback signal — is
/// directly readable.
struct OpActuals {
  uint64_t rows = 0;         // rows returned (selected), never batch pulls
  uint64_t invocations = 0;  // Next()/NextBatch() calls (incl. final miss)
  uint64_t batches = 0;      // NextBatch() calls when batch-driven
  uint64_t opens = 0;        // Open() calls (re-opens on NL inner sides)
  int64_t wall_micros = 0;   // wall time inside Open+Next, children included
  uint64_t peak_memory_bytes = 0;  // high-water mark of MemoryBytes()
  uint64_t spilled_bytes = 0;      // cumulative bytes written to SpillFiles
  uint64_t spilled_tuples = 0;     // cumulative tuples written to SpillFiles
  // Wait-cause deltas (statement-trace tallies attributed to this
  // operator's Open/Next scope, children included — same nesting rule as
  // wall_micros). Zero unless a statement trace was installed.
  uint64_t wait_lock_micros = 0;
  uint64_t wait_wal_micros = 0;
  uint64_t wait_spill_micros = 0;  // spill write + read
  uint64_t wait_pool_micros = 0;
  // Exchange workers actually granted by the ParallelismGovernor for this
  // node's pipeline (0 = ran serial). EXPLAIN ANALYZE prints `workers=`.
  int workers = 0;
};

using OpActualsMap = std::map<const PlanNode*, OpActuals>;

enum class PlanKind : uint8_t {
  kSeqScan,
  kIndexScan,
  kNLJoin,
  kIndexNLJoin,
  kHashJoin,
  kFilter,
  kProject,
  kHashGroupBy,
  kHashDistinct,
  kSort,
  kLimit,
};

std::string_view PlanKindName(PlanKind k);

/// A physical plan node. One fat struct rather than a class hierarchy: the
/// executor dispatches on `kind`, the plan cache fingerprints the tree, and
/// EXPLAIN renders it. Children: scans none; joins two (outer=0, inner=1);
/// the rest one.
struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  // --- Scans ---
  int quantifier = -1;
  const catalog::TableDef* table = nullptr;
  const catalog::IndexDef* index = nullptr;
  bool index_is_virtual = false;
  /// Index scan key range in the order-preserving-hash domain.
  std::optional<double> index_lo, index_hi;
  /// Parameterized bounds: evaluated against RowContext::params at Open
  /// (how one cached procedure plan serves every parameter value, §4.1).
  ExprPtr index_lo_expr, index_hi_expr;
  bool index_lo_inclusive = true, index_hi_inclusive = true;
  /// Predicate re-checked against fetched rows (always includes the index
  /// condition: hash collisions must not produce wrong answers).
  ExprPtr residual;

  // --- Joins ---
  /// Equi-join keys (outer side evaluated against outer row, inner against
  /// inner). For index-NL the inner key identifies the probe column.
  ExprPtr outer_key, inner_key;
  /// Extra join condition checked after the equi-match.
  ExprPtr extra_condition;

  // --- Memory-governor annotations (paper §4.3) ---
  /// Pages this memory-intensive operator was costed to use (the
  /// optimizer's prediction of the soft limit share).
  uint32_t memory_quota_pages = 0;
  /// Hash join: alternate strategy annotation — switch to index-NL after
  /// building if the real build cardinality is below the threshold.
  bool alt_index_nl = false;
  const catalog::IndexDef* alt_index = nullptr;
  double alt_switch_threshold_rows = 0;

  // --- Grouping / distinct / sort / limit / projection ---
  std::vector<ExprPtr> group_keys;
  std::vector<AggSpec> aggregates;
  ExprPtr having;
  std::vector<OrderItem> order;
  int64_t limit = -1;
  std::vector<SelectItem> projections;

  // --- Estimates (for EXPLAIN, adaptivity thresholds, benches) ---
  double est_rows = 0;
  double est_cost = 0;

  // --- Intra-query parallelism (paper §4.4, DESIGN.md §13) ---
  /// Worker count the optimizer seeded for this node's pipeline from the
  /// cardinality estimate (MarkParallelFragments); 1 = serial. An upper
  /// bound only — the ParallelismGovernor grants the actual count at
  /// pipeline start and may revoke workers at morsel boundaries.
  /// Excluded from Fingerprint(): parallelism is a runtime decision, and
  /// cached plans must keep matching across MPL changes.
  int parallel_workers = 1;

  /// Stable structural fingerprint: equal plans (same shape, same access
  /// choices) fingerprint equal. The plan cache's training test (§4.1).
  std::string Fingerprint() const;

  /// Multi-line EXPLAIN rendering. When `actuals` is non-null (EXPLAIN
  /// ANALYZE), each line appends the operator's measured rows,
  /// invocations, wall time, and peak memory next to the estimates.
  std::string Explain(int indent = 0, const OpActualsMap* actuals = nullptr)
      const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_PLAN_H_
