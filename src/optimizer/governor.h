#ifndef HDB_OPTIMIZER_GOVERNOR_H_
#define HDB_OPTIMIZER_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hdb::optimizer {

struct GovernorOptions {
  /// Initial quota of search-tree node visits. The paper lets the
  /// application set this per statement for fine-grained tuning of
  /// optimization effort.
  uint64_t initial_quota = 50000;
  /// A new best plan improving estimated cost by at least this fraction
  /// triggers full quota redistribution along the current path (paper: 20%).
  double redistribute_improvement = 0.20;
  /// Disable to measure the naive DFS-with-early-halting baseline the
  /// paper argues against (search effort poorly distributed).
  bool enabled = true;
  /// When false, the quota is a single global budget with no per-subtree
  /// distribution — plain depth-first search that halts after N visits
  /// (the other ablation baseline of the paper's §4.1 argument).
  bool distribute = true;
};

/// The optimizer governor (paper §4.1, Young-Lai patent): distributes a
/// quota of search effort over the join-strategy search tree so that
/// effort is spread across dissimilar regions instead of being burned on
/// near-identical plans in one corner.
///
/// Discipline: each node holds a remaining quota. Descending into a child
/// grants it half of the parent's remainder (so the first child gets 1/2,
/// the second 1/2 of what's left after the first returns, and so on —
/// promising children, enumerated first, get the most). Visits consume
/// from the current node. Pruned subtrees return unused quota to their
/// parent. When a new optimum improves the best cost by >= 20%, all
/// remaining quota on the path is pooled and re-concentrated from the
/// root, anticipating more good plans nearby.
class OptimizerGovernor {
 public:
  explicit OptimizerGovernor(GovernorOptions options = {});

  /// Starts a fresh search with the configured quota.
  void Reset();
  void Reset(uint64_t quota);

  /// Consumes one visit at the current node. Returns false when the
  /// current subtree's quota is exhausted (caller prunes). Always true
  /// when the governor is disabled.
  bool TryVisit();

  /// Enters a child subtree, granting it half the current remainder.
  void EnterChild();

  /// Leaves the child, returning its unused quota to the parent.
  void LeaveChild();

  /// Reports a new best plan; `improvement` = (old-new)/old. May trigger
  /// redistribution.
  void OnImprovedPlan(double improvement);

  /// True when the root itself has no quota left (search should stop).
  bool Exhausted() const;

  uint64_t visits_used() const { return visits_; }
  uint64_t redistributions() const { return redistributions_; }
  size_t depth() const { return stack_.size(); }

 private:
  GovernorOptions options_;
  std::vector<uint64_t> stack_;  // remaining quota per level; [0] = root
  uint64_t visits_ = 0;
  uint64_t redistributions_ = 0;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_GOVERNOR_H_
