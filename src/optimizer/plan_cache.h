#ifndef HDB_OPTIMIZER_PLAN_CACHE_H_
#define HDB_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "optimizer/plan.h"

namespace hdb::optimizer {

struct PlanCacheOptions {
  /// Consecutive optimizations that must produce the *identical* plan
  /// before it is cached (the paper's training period).
  int training_executions = 4;
  /// First verification happens after this many cached uses...
  uint64_t first_verify_interval = 8;
  /// ...and each subsequent verification multiplies the interval by this
  /// factor — the paper's "decaying logarithmic scale" of re-verification.
  uint64_t verify_interval_growth = 8;
  /// LRU capacity (per connection in SQL Anywhere; per cache here).
  size_t max_entries = 64;
};

/// Plan cache for statements inside stored procedures, user-defined
/// functions and triggers (paper §4.1). Everything else re-optimizes on
/// every invocation.
///
/// Lifecycle per statement: TRAINING (optimize every time; cache only
/// after `training_executions` identical plans) -> CACHED (skip
/// optimization) with periodic VERIFY invocations on a decaying schedule;
/// a verification producing a different plan evicts and retrains.
class PlanCache {
 public:
  enum class Action {
    kOptimize,   // no usable cache entry: optimize (training data point)
    kUseCached,  // execute the cached plan, skip optimization
    kVerify,     // execute cached plan is NOT safe to skip: re-optimize,
                 // compare, then run the fresh or cached plan
  };

  struct Decision {
    Action action = Action::kOptimize;
    std::shared_ptr<const PlanNode> plan;  // set for kUseCached / kVerify
  };

  struct Stats {
    uint64_t invocations = 0;
    uint64_t cached_uses = 0;
    uint64_t optimizations = 0;
    uint64_t verifications = 0;
    uint64_t invalidations = 0;
    uint64_t trainings_completed = 0;
  };

  explicit PlanCache(PlanCacheOptions options = {}) : options_(options) {}

  /// Call at each invocation of a cache-eligible statement.
  Decision OnInvocation(const std::string& key);

  /// Call after optimizing `key` (because OnInvocation said kOptimize or
  /// kVerify). Returns the plan to execute — the cached one when the fresh
  /// plan verified identical, otherwise the fresh plan.
  std::shared_ptr<const PlanNode> OnPlanReady(
      const std::string& key, std::shared_ptr<const PlanNode> fresh);

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  enum class State { kTraining, kCached };

  struct Entry {
    State state = State::kTraining;
    int identical_count = 0;
    std::string fingerprint;
    std::shared_ptr<const PlanNode> plan;
    uint64_t uses_since_verify = 0;
    uint64_t verify_interval = 0;
    bool verifying = false;
    std::list<std::string>::iterator lru_it;
  };

  void TouchLru(const std::string& key, Entry& e);
  void EvictIfNeeded();

  PlanCacheOptions options_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  Stats stats_;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_PLAN_CACHE_H_
