#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace hdb::optimizer {

CostModel::CostModel(const os::DttModel* dtt, storage::BufferPool* pool,
                     IndexStatsProvider index_stats, CostModelOptions options)
    : dtt_(dtt),
      pool_(pool),
      index_stats_(std::move(index_stats)),
      options_(options) {}

uint32_t CostModel::page_bytes() const { return pool_->page_bytes(); }

double CostModel::ReadMicros(double band_pages) const {
  return dtt_->MicrosPerPage(os::DttOp::kRead, page_bytes(), band_pages);
}

double CostModel::WriteMicros(double band_pages) const {
  return dtt_->MicrosPerPage(os::DttOp::kWrite, page_bytes(), band_pages);
}

double CostModel::TablePages(const catalog::TableDef& t) const {
  return std::max<double>(1.0, static_cast<double>(t.page_count));
}

double CostModel::ResidentFraction(const catalog::TableDef& t) const {
  const double pages = TablePages(t);
  const double resident = static_cast<double>(pool_->ResidentPages(t.oid));
  return std::clamp(resident / pages, 0.0, 1.0);
}

double CostModel::RowsToPages(double rows, double row_bytes) const {
  return std::max(1.0, rows * row_bytes / page_bytes());
}

double CostModel::SeqScanCost(const catalog::TableDef& t,
                              double num_predicates) const {
  const double pages = TablePages(t);
  const double io = pages * ReadMicros(1.0) * (1.0 - ResidentFraction(t));
  const double rows = static_cast<double>(t.row_count);
  const double cpu =
      rows * (options_.cpu_row_us + num_predicates * options_.cpu_pred_us);
  return io + cpu;
}

double CostModel::IndexScanCost(const catalog::TableDef& t,
                                uint32_t index_oid, double match_fraction,
                                double assumed_pool_pages) const {
  const index::IndexStats* s = index_stats_ ? index_stats_(index_oid) : nullptr;
  const double table_pages = TablePages(t);
  const double rows = static_cast<double>(t.row_count);
  const double match_rows = rows * std::clamp(match_fraction, 0.0, 1.0);

  const double leaf_pages =
      s != nullptr ? std::max<double>(1.0, static_cast<double>(s->leaf_pages))
                   : std::max(1.0, table_pages / 8.0);
  const double height = std::max(1.0, std::log2(leaf_pages + 1.0));
  const double clustering = s != nullptr ? s->clustering_fraction() : 0.5;

  // Descent (upper levels are hot after the first touch: at most two cold
  // random reads) + contiguous leaf walk over the matching fraction.
  double io = std::min(height, 2.0) * ReadMicros(leaf_pages) +
              leaf_pages * match_fraction * ReadMicros(1.0);
  // Row fetches: random reads within a band that shrinks as the index gets
  // more clustered; the effective band is also capped by the memory the
  // prefix metric assumes available (half the pool, §4.1).
  double band = table_pages * (1.0 - clustering) + 1.0;
  band = std::min(band, std::max(1.0, assumed_pool_pages));
  const double fetch_pages =
      std::min(match_rows, table_pages * match_fraction + match_rows * (1.0 - clustering));
  io += fetch_pages * ReadMicros(band);
  io *= (1.0 - ResidentFraction(t));

  const double cpu = match_rows * (options_.cpu_row_us + options_.cpu_pred_us);
  return io + cpu;
}

double CostModel::IndexProbeCost(const catalog::TableDef& t,
                                 uint32_t index_oid, double probes,
                                 double rows_per_probe,
                                 double assumed_pool_pages) const {
  const index::IndexStats* s = index_stats_ ? index_stats_(index_oid) : nullptr;
  const double table_pages = TablePages(t);
  const double leaf_pages =
      s != nullptr ? std::max<double>(1.0, static_cast<double>(s->leaf_pages))
                   : std::max(1.0, table_pages / 8.0);
  const double height = std::max(1.0, std::log2(leaf_pages + 1.0));
  const double clustering = s != nullptr ? s->clustering_fraction() : 0.5;

  // Repeated probes touch upper levels that quickly become resident; only
  // the first few descents pay full random cost. Model: descent cost decays
  // to one leaf read once the index is hot.
  const double hot_after = std::min(probes, leaf_pages);
  double band = table_pages * (1.0 - clustering) + 1.0;
  band = std::min(band, std::max(1.0, assumed_pool_pages));
  const double descent_io =
      hot_after * height * ReadMicros(leaf_pages) +
      std::max(0.0, probes - hot_after) * ReadMicros(leaf_pages);
  const double fetch_io = probes * rows_per_probe * ReadMicros(band);
  const double io = (descent_io + fetch_io) * (1.0 - ResidentFraction(t));
  const double cpu =
      probes * options_.cpu_hash_us +
      probes * rows_per_probe * (options_.cpu_row_us + options_.cpu_pred_us);
  return io + cpu;
}

double CostModel::HashJoinCost(double build_rows, double probe_rows,
                               double quota_pages) const {
  const double cpu = (build_rows + probe_rows) * options_.cpu_hash_us +
                     (build_rows + probe_rows) * options_.cpu_row_us;
  const double build_pages =
      RowsToPages(build_rows, options_.intermediate_row_bytes);
  double io = 0;
  if (quota_pages > 0 && build_pages > quota_pages) {
    // Partition eviction (paper §4.3): the overflow fraction of both
    // inputs is written to temp and re-read.
    const double spill_frac = 1.0 - quota_pages / build_pages;
    const double probe_pages =
        RowsToPages(probe_rows, options_.intermediate_row_bytes);
    const double spill_pages = (build_pages + probe_pages) * spill_frac;
    io = spill_pages * (WriteMicros(quota_pages + 1) +
                        ReadMicros(quota_pages + 1));
  }
  return cpu + io;
}

double CostModel::NLJoinCost(double outer_rows, double inner_cost,
                             double inner_rows) const {
  return outer_rows * inner_cost +
         outer_rows * inner_rows * options_.cpu_pred_us;
}

double CostModel::SortCost(double rows, double quota_pages) const {
  if (rows < 2) return options_.cpu_sort_us;
  const double cpu = rows * std::log2(rows) * options_.cpu_sort_us;
  const double pages = RowsToPages(rows, options_.intermediate_row_bytes);
  double io = 0;
  if (quota_pages > 0 && pages > quota_pages) {
    // External runs: one write + one read pass per merge level.
    const double fan_in = std::max(2.0, quota_pages - 1);
    const double levels =
        std::ceil(std::log(pages / quota_pages) / std::log(fan_in)) + 1;
    io = pages * levels * (WriteMicros(1.0) + ReadMicros(1.0));
  }
  return cpu + io;
}

double CostModel::GroupByCost(double rows, double groups,
                              double quota_pages) const {
  const double cpu = rows * options_.cpu_hash_us;
  const double group_pages =
      RowsToPages(groups, options_.intermediate_row_bytes);
  double io = 0;
  if (quota_pages > 0 && group_pages > quota_pages) {
    const double spill = (group_pages - quota_pages);
    io = spill * (WriteMicros(quota_pages + 1) + ReadMicros(quota_pages + 1));
  }
  return cpu + io;
}

}  // namespace hdb::optimizer
