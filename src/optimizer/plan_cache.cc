#include "optimizer/plan_cache.h"

namespace hdb::optimizer {

void PlanCache::TouchLru(const std::string& key, Entry& e) {
  if (e.lru_it != lru_.end()) lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
}

void PlanCache::EvictIfNeeded() {
  while (entries_.size() > options_.max_entries && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
}

PlanCache::Decision PlanCache::OnInvocation(const std::string& key) {
  stats_.invocations++;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.lru_it = lru_.end();
    it = entries_.emplace(key, std::move(e)).first;
    EvictIfNeeded();
  }
  Entry& e = it->second;
  TouchLru(key, e);

  if (e.state == State::kTraining) {
    stats_.optimizations++;
    return Decision{Action::kOptimize, nullptr};
  }
  // Cached: check the decaying verification schedule.
  e.uses_since_verify++;
  if (e.uses_since_verify >= e.verify_interval) {
    e.verifying = true;
    stats_.verifications++;
    stats_.optimizations++;
    return Decision{Action::kVerify, e.plan};
  }
  stats_.cached_uses++;
  return Decision{Action::kUseCached, e.plan};
}

std::shared_ptr<const PlanNode> PlanCache::OnPlanReady(
    const std::string& key, std::shared_ptr<const PlanNode> fresh) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fresh;
  Entry& e = it->second;
  const std::string fp = fresh->Fingerprint();

  if (e.state == State::kCached && e.verifying) {
    e.verifying = false;
    e.uses_since_verify = 0;
    if (fp == e.fingerprint) {
      // Plan is still fresh: verify less often from now on.
      e.verify_interval *= options_.verify_interval_growth;
      return e.plan;
    }
    // The world changed: drop the cache and retrain.
    stats_.invalidations++;
    e.state = State::kTraining;
    e.identical_count = 1;
    e.fingerprint = fp;
    e.plan = nullptr;
    return fresh;
  }

  // Training.
  if (fp == e.fingerprint) {
    e.identical_count++;
  } else {
    e.fingerprint = fp;
    e.identical_count = 1;
  }
  if (e.identical_count >= options_.training_executions) {
    e.state = State::kCached;
    e.plan = fresh;
    e.uses_since_verify = 0;
    e.verify_interval = options_.first_verify_interval;
    stats_.trainings_completed++;
  }
  return fresh;
}

}  // namespace hdb::optimizer
