#include "optimizer/plan.h"

#include <cstdio>

namespace hdb::optimizer {

std::string_view PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kSeqScan: return "SeqScan";
    case PlanKind::kIndexScan: return "IndexScan";
    case PlanKind::kNLJoin: return "NestedLoopJoin";
    case PlanKind::kIndexNLJoin: return "IndexNLJoin";
    case PlanKind::kHashJoin: return "HashJoin";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kHashGroupBy: return "HashGroupBy";
    case PlanKind::kHashDistinct: return "HashDistinct";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit";
  }
  return "?";
}

std::string PlanNode::Fingerprint() const {
  std::string fp(PlanKindName(kind));
  if (table != nullptr) fp += ":" + table->name;
  if (index != nullptr) fp += ":" + index->name;
  if (index_is_virtual) fp += ":virtual";
  if (alt_index_nl) fp += ":alt";
  fp += "(";
  for (const auto& c : children) fp += c->Fingerprint() + ",";
  fp += ")";
  return fp;
}

std::string PlanNode::Explain(int indent, const OpActualsMap* actuals) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += PlanKindName(kind);
  if (table != nullptr) out += " " + table->name;
  if (index != nullptr) {
    out += " using " + index->name;
    if (index_is_virtual) out += " (virtual)";
  }
  if (kind == PlanKind::kHashJoin || kind == PlanKind::kIndexNLJoin) {
    if (outer_key != nullptr && inner_key != nullptr) {
      out += " on " + outer_key->ToString() + " = " + inner_key->ToString();
    }
  }
  if (residual != nullptr) out += " filter " + residual->ToString();
  if (memory_quota_pages > 0) {
    out += " mem=" + std::to_string(memory_quota_pages) + "p";
  }
  if (alt_index_nl) out += " [alt: index-NL]";
  if (parallel_workers > 1) {
    out += " parallel<=" + std::to_string(parallel_workers);
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  (rows=%.0f cost=%.0f)", est_rows,
                est_cost);
  out += buf;
  if (actuals != nullptr) {
    const auto it = actuals->find(this);
    if (it != actuals->end()) {
      const OpActuals& a = it->second;
      std::snprintf(buf, sizeof(buf),
                    "  (actual rows=%llu invocations=%llu time=%.3fms",
                    static_cast<unsigned long long>(a.rows),
                    static_cast<unsigned long long>(a.invocations),
                    static_cast<double>(a.wall_micros) / 1000.0);
      out += buf;
      if (a.batches > 0) {
        std::snprintf(buf, sizeof(buf), " batches=%llu",
                      static_cast<unsigned long long>(a.batches));
        out += buf;
      }
      if (a.workers > 0) {
        std::snprintf(buf, sizeof(buf), " workers=%d", a.workers);
        out += buf;
      }
      if (a.peak_memory_bytes > 0) {
        std::snprintf(buf, sizeof(buf), " mem=%.1fKB",
                      static_cast<double>(a.peak_memory_bytes) / 1024.0);
        out += buf;
      }
      if (a.spilled_bytes > 0 || a.spilled_tuples > 0) {
        std::snprintf(buf, sizeof(buf), " spilled=%lluB/%llut",
                      static_cast<unsigned long long>(a.spilled_bytes),
                      static_cast<unsigned long long>(a.spilled_tuples));
        out += buf;
      }
      if (a.wait_lock_micros > 0 || a.wait_wal_micros > 0 ||
          a.wait_spill_micros > 0 || a.wait_pool_micros > 0) {
        out += " wait=";
        bool first = true;
        const auto append_wait = [&](const char* label, uint64_t micros) {
          if (micros == 0) return;
          if (!first) out += ",";
          first = false;
          std::snprintf(buf, sizeof(buf), "%s:%lluus", label,
                        static_cast<unsigned long long>(micros));
          out += buf;
        };
        append_wait("lock", a.wait_lock_micros);
        append_wait("wal", a.wait_wal_micros);
        append_wait("spill", a.wait_spill_micros);
        append_wait("pool", a.wait_pool_micros);
      }
      out += ")";
    }
  }
  out += "\n";
  for (const auto& c : children) out += c->Explain(indent + 1, actuals);
  return out;
}

}  // namespace hdb::optimizer
