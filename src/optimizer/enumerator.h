#ifndef HDB_OPTIMIZER_ENUMERATOR_H_
#define HDB_OPTIMIZER_ENUMERATOR_H_

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "optimizer/cost_model.h"
#include "optimizer/governor.h"
#include "optimizer/query.h"
#include "optimizer/selectivity.h"
#include "optimizer/virtual_index.h"

namespace hdb::optimizer {

enum class JoinMethod : uint8_t { kFirst, kNL, kIndexNL, kHash };

/// One way to read a quantifier's rows.
struct AccessPath {
  const catalog::IndexDef* index = nullptr;  // null = sequential scan
  bool is_virtual = false;
  std::optional<double> lo, hi;  // hash-domain index condition
  ExprPtr lo_expr, hi_expr;      // parameterized bounds (evaluated at run)
  bool lo_inclusive = true, hi_inclusive = true;
  double index_selectivity = 1.0;  // fraction satisfying the index cond
  double cost = 0;                 // cost of producing filtered rows
};

/// An equi-join edge `qa.ca = qb.cb`.
struct JoinEdge {
  int qa, ca, qb, cb;
  double selectivity;
  ExprPtr expr;
};

struct EnumerationStep {
  int quantifier = -1;
  AccessPath path;
  JoinMethod method = JoinMethod::kFirst;
  int key_edge = -1;  // index into EnumerationResult::edges for the join key
  double rows_after = 0;
  double cost_after = 0;
};

struct EnumerationResult {
  std::vector<EnumerationStep> steps;  // left-deep order
  std::vector<JoinEdge> edges;
  double best_cost = 0;
  uint64_t nodes_visited = 0;
  uint64_t plans_completed = 0;
  uint64_t prunes = 0;
  /// Distinct (first, second) quantifier prefixes among completed plans —
  /// a diversity measure of where the search effort landed (paper §4.1:
  /// with naive early halting, "most of the enumerated plans will be very
  /// similar").
  uint64_t distinct_prefixes = 0;
  uint64_t governor_redistributions = 0;
  size_t arena_high_water = 0;
  bool governor_exhausted = false;
};

struct EnumeratorOptions {
  GovernorOptions governor;
  /// Byte budget for enumeration state (the 100-way-join claim runs with
  /// 1 MiB). 0 = unlimited.
  size_t arena_budget_bytes = 0;
  /// The optimistic prefix metric (paper §4.1): assume this fraction of
  /// the pool is available to *each* quantifier while costing prefixes —
  /// "clearly nonsense with any join degree greater than 1", but cheap.
  double assumed_pool_fraction = 0.5;
  /// Let the search *choose* virtual access paths (consultant what-if).
  bool use_virtual_indexes = false;
  /// Experiment knob (governor ablation bench): invert the promise
  /// ordering of candidates, emulating a worst-case heuristic ranking.
  /// The paper's §4.1 argument — naive early halting strands the budget
  /// in one bad corner — only bites when the ranking misleads.
  bool invert_promise_order = false;
};

/// Branch-and-bound, depth-first join enumeration over left-deep trees of
/// <quantifier, index, join method> 3-tuples (paper §4.1):
///  * quantifiers heuristically ranked, deferring Cartesian products;
///  * incremental prefix costing with provable pruning against the best
///    complete strategy;
///  * search effort managed by the OptimizerGovernor quota;
///  * all search state lives in a budgeted Arena whose high-water mark is
///    reported (the Dell Axim memory claim).
class JoinEnumerator {
 public:
  JoinEnumerator(const Query& query, const SelectivityEstimator* estimator,
                 const CostModel* cost_model, catalog::Catalog* catalog,
                 storage::BufferPool* pool,
                 VirtualIndexCollector* virtual_indexes,
                 EnumeratorOptions options = {});

  Result<EnumerationResult> Run();

  const OptimizerGovernor& governor() const { return governor_; }

 private:
  struct QuantInfo {
    double base_rows = 0;
    double local_selectivity = 1.0;
    int num_local_predicates = 0;
    double effective_rows = 0;
    std::vector<AccessPath> paths;
    std::vector<int> edge_indexes;
  };

  void PrepareQuantifiers();
  void Dfs(std::vector<char>& placed, int placed_count, double rows_so_far,
           double cost_so_far, std::vector<EnumerationStep>& prefix,
           EnumerationResult* result);

  /// Cost and cardinality of appending (q, path, method) to the prefix.
  struct Delta {
    double cost;
    double rows;
    int key_edge;
  };
  std::optional<Delta> CostStep(const std::vector<char>& placed,
                                double rows_so_far, int q,
                                const AccessPath& path, JoinMethod method);

  const Query& query_;
  const SelectivityEstimator* estimator_;
  const CostModel* cost_model_;
  catalog::Catalog* catalog_;
  storage::BufferPool* pool_;
  VirtualIndexCollector* virtual_indexes_;
  EnumeratorOptions options_;

  OptimizerGovernor governor_;
  Arena arena_;
  std::vector<QuantInfo> quants_;
  std::vector<JoinEdge> edges_;
  std::vector<ClassifiedConjunct> classified_;
  // Synthesized virtual index defs live here (what-if mode).
  std::vector<std::unique_ptr<catalog::IndexDef>> virtual_defs_;

  double assumed_pool_pages_ = 0;
  double best_cost_ = 0;
  std::vector<EnumerationStep> best_steps_;
  uint64_t plans_completed_ = 0;
  uint64_t prunes_ = 0;
  std::set<std::pair<int, int>> completed_prefixes_;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_ENUMERATOR_H_
