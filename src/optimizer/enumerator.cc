#include "optimizer/enumerator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdb::optimizer {

JoinEnumerator::JoinEnumerator(const Query& query,
                               const SelectivityEstimator* estimator,
                               const CostModel* cost_model,
                               catalog::Catalog* catalog,
                               storage::BufferPool* pool,
                               VirtualIndexCollector* virtual_indexes,
                               EnumeratorOptions options)
    : query_(query),
      estimator_(estimator),
      cost_model_(cost_model),
      catalog_(catalog),
      pool_(pool),
      virtual_indexes_(virtual_indexes),
      options_(options),
      governor_(options.governor),
      arena_(options.arena_budget_bytes) {}

void JoinEnumerator::PrepareQuantifiers() {
  classified_ = estimator_->Classify(query_);
  const size_t n = query_.quantifiers.size();
  quants_.assign(n, QuantInfo{});

  // Edges and local predicate folding.
  for (const ClassifiedConjunct& c : classified_) {
    if (c.is_equijoin) {
      JoinEdge e{c.qa, c.ca, c.qb, c.cb, c.selectivity, c.expr};
      const int idx = static_cast<int>(edges_.size());
      edges_.push_back(e);
      quants_[c.qa].edge_indexes.push_back(idx);
      quants_[c.qb].edge_indexes.push_back(idx);
    } else if (c.quantifiers.size() == 1) {
      QuantInfo& qi = quants_[c.quantifiers[0]];
      qi.local_selectivity *= c.selectivity;
      qi.num_local_predicates++;
    }
  }

  assumed_pool_pages_ = static_cast<double>(pool_->CurrentFrames()) *
                        options_.assumed_pool_fraction;

  for (size_t q = 0; q < n; ++q) {
    QuantInfo& qi = quants_[q];
    const catalog::TableDef& t = *query_.quantifiers[q].table;
    qi.base_rows = std::max<double>(1.0, static_cast<double>(t.row_count));
    qi.effective_rows =
        std::max(1.0, qi.base_rows * qi.local_selectivity);

    // Sequential scan is always available.
    AccessPath seq;
    seq.cost = cost_model_->SeqScanCost(
        t, static_cast<double>(qi.num_local_predicates));
    qi.paths.push_back(seq);

    // Collect this quantifier's indexable local ranges once.
    std::vector<SelectivityEstimator::IndexRange> ranges;
    for (const ClassifiedConjunct& c : classified_) {
      if (c.is_equijoin || c.quantifiers.size() != 1 ||
          c.quantifiers[0] != static_cast<int>(q)) {
        continue;
      }
      const auto range = estimator_->AsIndexRange(query_, c.expr);
      if (range.has_value()) ranges.push_back(*range);
    }

    // Physical index paths: one range path per matching (index, range)
    // pair on the index's leading key column, plus a probe-capable path
    // per index (no range) that enables index nested-loops on join keys.
    const std::vector<catalog::IndexDef*> indexes =
        catalog_->TableIndexes(t.oid);
    std::vector<bool> column_has_index(t.columns.size(), false);
    for (catalog::IndexDef* idx : indexes) {
      if (idx->column_indexes.empty()) continue;
      const int lead = idx->column_indexes[0];
      if (lead >= 0 && lead < static_cast<int>(t.columns.size())) {
        column_has_index[lead] = true;
      }
      bool had_range = false;
      for (const auto& r : ranges) {
        if (r.column != lead) continue;
        had_range = true;
        AccessPath p;
        p.index = idx;
        p.lo = r.lo;
        p.hi = r.hi;
        p.lo_expr = r.lo_expr;
        p.hi_expr = r.hi_expr;
        p.lo_inclusive = r.lo_inclusive;
        p.hi_inclusive = r.hi_inclusive;
        p.index_selectivity = r.selectivity;
        p.cost = cost_model_->IndexScanCost(t, idx->oid, r.selectivity,
                                            assumed_pool_pages_);
        qi.paths.push_back(p);
      }
      if (!had_range) {
        AccessPath p;
        p.index = idx;
        p.index_selectivity = 1.0;
        p.cost = cost_model_->IndexScanCost(t, idx->oid, 1.0,
                                            assumed_pool_pages_);
        qi.paths.push_back(p);
      }
    }

    // Virtual-index generation (paper §5): the optimizer requests indexes
    // it would have liked for unindexed predicate and join columns.
    if (virtual_indexes_ != nullptr) {
      auto add_virtual = [&](int col, double benefit) {
        virtual_indexes_->Request(t.oid, t.name, col, benefit);
        if (!virtual_indexes_->what_if()) return;
        auto vdef = std::make_unique<catalog::IndexDef>();
        vdef->oid = kInvalidOid;
        vdef->name = "virtual_" + t.name + "_" + t.columns[col].name;
        vdef->table_oid = t.oid;
        vdef->column_indexes = {col};
        AccessPath p;
        p.index = vdef.get();
        p.is_virtual = true;
        p.index_selectivity = 1.0;
        p.cost = cost_model_->IndexScanCost(t, kInvalidOid, 1.0,
                                            assumed_pool_pages_);
        for (const auto& r : ranges) {
          if (r.column == col) {
            p.lo = r.lo;
            p.hi = r.hi;
            p.lo_inclusive = r.lo_inclusive;
            p.hi_inclusive = r.hi_inclusive;
            p.index_selectivity = r.selectivity;
            p.cost = cost_model_->IndexScanCost(t, kInvalidOid, r.selectivity,
                                                assumed_pool_pages_);
            break;
          }
        }
        qi.paths.push_back(p);
        virtual_defs_.push_back(std::move(vdef));
      };
      std::vector<int> requested_cols;
      for (const auto& r : ranges) {
        if (r.column >= 0 && !column_has_index[r.column]) {
          const double hypothetical = cost_model_->IndexScanCost(
              t, kInvalidOid, r.selectivity, assumed_pool_pages_);
          add_virtual(r.column, std::max(0.0, seq.cost - hypothetical));
          column_has_index[r.column] = true;  // one request per column
          requested_cols.push_back(r.column);
        }
      }
      for (const int ei : qi.edge_indexes) {
        const JoinEdge& e = edges_[ei];
        const int col = (e.qa == static_cast<int>(q)) ? e.ca : e.cb;
        if (col >= 0 && !column_has_index[col]) {
          add_virtual(col, seq.cost);
          column_has_index[col] = true;
          // Tighten earlier predicate-column specs with the join column —
          // the consultant's progressively-specific ordering requirement.
          for (const int pc : requested_cols) {
            virtual_indexes_->Tighten(t.oid, pc, {col});
          }
        }
      }
    }
  }
}

std::optional<JoinEnumerator::Delta> JoinEnumerator::CostStep(
    const std::vector<char>& placed, double rows_so_far, int q,
    const AccessPath& path, JoinMethod method) {
  const QuantInfo& qi = quants_[q];
  const catalog::TableDef& t = *query_.quantifiers[q].table;

  // Combined selectivity of all edges between q and the placed set, and
  // the most selective edge as the join key.
  double edge_sel = 1.0;
  int key_edge = -1;
  double key_sel = 1.0;
  for (const int ei : qi.edge_indexes) {
    const JoinEdge& e = edges_[ei];
    const int other = (e.qa == q) ? e.qb : e.qa;
    if (!placed[other]) continue;
    edge_sel *= e.selectivity;
    if (key_edge < 0 || e.selectivity < key_sel) {
      key_edge = ei;
      key_sel = e.selectivity;
    }
  }

  const double out_rows =
      std::max(1.0, rows_so_far * qi.effective_rows * edge_sel);

  double cost = 0;
  switch (method) {
    case JoinMethod::kFirst:
      cost = path.cost;
      break;
    case JoinMethod::kNL:
      cost = cost_model_->NLJoinCost(rows_so_far, path.cost,
                                     qi.effective_rows);
      break;
    case JoinMethod::kIndexNL: {
      if (key_edge < 0 || path.index == nullptr) return std::nullopt;
      const JoinEdge& e = edges_[key_edge];
      const int join_col = (e.qa == q) ? e.ca : e.cb;
      if (path.index->column_indexes.empty() ||
          path.index->column_indexes[0] != join_col) {
        return std::nullopt;  // this index cannot probe the join key
      }
      const double rows_per_probe =
          std::max(qi.base_rows * key_sel, 1e-6);
      cost = cost_model_->IndexProbeCost(t, path.index->oid, rows_so_far,
                                         rows_per_probe, assumed_pool_pages_);
      break;
    }
    case JoinMethod::kHash: {
      if (key_edge < 0) return std::nullopt;  // hash join needs an equi key
      cost = path.cost + cost_model_->HashJoinCost(qi.effective_rows,
                                                   rows_so_far,
                                                   assumed_pool_pages_);
      break;
    }
  }
  return Delta{cost, out_rows, key_edge};
}

void JoinEnumerator::Dfs(std::vector<char>& placed, int placed_count,
                         double rows_so_far, double cost_so_far,
                         std::vector<EnumerationStep>& prefix,
                         EnumerationResult* result) {
  const int n = static_cast<int>(query_.quantifiers.size());
  if (placed_count == n) {
    ++plans_completed_;
    if (prefix.size() >= 2) {
      // Identify the plan's opening region by its first three placements
      // (the first two are often forced by connectivity).
      const int third = prefix.size() >= 3 ? prefix[2].quantifier : -1;
      completed_prefixes_.insert(
          {prefix[0].quantifier * 1000 + prefix[1].quantifier, third});
    }
    if (cost_so_far < best_cost_) {
      const double improvement =
          best_cost_ == std::numeric_limits<double>::infinity()
              ? 0.0
              : (best_cost_ - cost_so_far) / best_cost_;
      best_cost_ = cost_so_far;
      best_steps_ = prefix;
      governor_.OnImprovedPlan(improvement);
    }
    return;
  }

  // Candidate quantifiers: defer Cartesian products by considering only
  // candidates connected to the placed prefix whenever any exist.
  struct Candidate {
    int q;
    double promise;  // estimated resulting cardinality (lower = better)
  };
  // Per-level candidate array lives in the enumeration arena so the
  // memory footprint of the whole search is observable and budgeted.
  auto* cands = arena_.NewArray<Candidate>(static_cast<size_t>(n));
  if (cands == nullptr) return;  // arena budget exhausted: stop deepening
  int num_cands = 0;
  bool any_connected = false;
  for (int q = 0; q < n; ++q) {
    if (placed[q]) continue;
    bool connected = false;
    double edge_sel = 1.0;
    for (const int ei : quants_[q].edge_indexes) {
      const JoinEdge& e = edges_[ei];
      const int other = (e.qa == q) ? e.qb : e.qa;
      if (placed[other]) {
        connected = true;
        edge_sel *= e.selectivity;
      }
    }
    if (connected) any_connected = true;
    cands[num_cands++] =
        Candidate{q, rows_so_far * quants_[q].effective_rows * edge_sel +
                         (connected ? 0.0 : 1e18)};
  }
  if (placed_count == 0) any_connected = false;
  const bool invert = options_.invert_promise_order;
  std::sort(cands, cands + num_cands,
            [invert](const Candidate& a, const Candidate& b) {
              // Cartesian deferral (the 1e18 penalty) survives inversion.
              const bool a_cart = a.promise >= 1e18;
              const bool b_cart = b.promise >= 1e18;
              if (a_cart != b_cart) return b_cart;
              return invert ? a.promise > b.promise : a.promise < b.promise;
            });

  for (int ci = 0; ci < num_cands; ++ci) {
    const int q = cands[ci].q;
    if (any_connected && cands[ci].promise >= 1e18) {
      break;  // only Cartesian candidates remain; defer them
    }
    for (const AccessPath& path : quants_[q].paths) {
      if (path.is_virtual && !options_.use_virtual_indexes) continue;
      static constexpr JoinMethod kAllMethods[] = {
          JoinMethod::kHash, JoinMethod::kIndexNL, JoinMethod::kNL};
      const JoinMethod first_only[] = {JoinMethod::kFirst};
      const JoinMethod* methods =
          placed_count == 0 ? first_only : kAllMethods;
      const int num_methods = placed_count == 0 ? 1 : 3;
      for (int mi = 0; mi < num_methods; ++mi) {
        // One <quantifier, index, join method> 3-tuple = one search-tree
        // node visit, the governor's unit of effort. An exhausted quota
        // prunes the subtree — except that the search must always finish
        // at least one complete strategy, so before any plan exists the
        // descent continues greedily (first promising tuple only).
        const bool quota_ok = governor_.TryVisit();
        if (!quota_ok && !best_steps_.empty()) {
          ++prunes_;
          return;  // unused quota returns upward via LeaveChild
        }
        const auto delta =
            CostStep(placed, rows_so_far, q, path, methods[mi]);
        if (!delta.has_value()) continue;
        const double new_cost = cost_so_far + delta->cost;
        if (new_cost >= best_cost_) {
          // Branch-and-bound prune: additional quantifiers only add cost,
          // so the whole prefix extension set is abandoned.
          ++prunes_;
          continue;
        }
        placed[q] = 1;
        prefix.push_back(EnumerationStep{q, path, methods[mi],
                                         delta->key_edge, delta->rows,
                                         new_cost});
        governor_.EnterChild();
        Dfs(placed, placed_count + 1, delta->rows, new_cost, prefix, result);
        governor_.LeaveChild();
        prefix.pop_back();
        placed[q] = 0;
        if (!quota_ok) return;  // greedy completion path: one tuple only
      }
    }
  }
}

Result<EnumerationResult> JoinEnumerator::Run() {
  if (query_.quantifiers.empty()) {
    return Status::InvalidArgument("query has no quantifiers");
  }
  PrepareQuantifiers();

  best_cost_ = std::numeric_limits<double>::infinity();
  best_steps_.clear();
  governor_.Reset();

  EnumerationResult result;
  std::vector<char> placed(query_.quantifiers.size(), 0);
  std::vector<EnumerationStep> prefix;
  prefix.reserve(query_.quantifiers.size());
  Dfs(placed, 0, 1.0, 0.0, prefix, &result);

  if (best_steps_.empty()) {
    return Status::Internal("join enumeration found no complete plan");
  }
  result.steps = std::move(best_steps_);
  result.edges = edges_;
  result.best_cost = best_cost_;
  result.nodes_visited = governor_.visits_used();
  result.plans_completed = plans_completed_;
  result.prunes = prunes_;
  result.governor_redistributions = governor_.redistributions();
  result.distinct_prefixes = completed_prefixes_.size();
  result.arena_high_water = arena_.high_water_mark();
  result.governor_exhausted = governor_.Exhausted();
  return result;
}

}  // namespace hdb::optimizer
