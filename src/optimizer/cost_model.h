#ifndef HDB_OPTIMIZER_COST_MODEL_H_
#define HDB_OPTIMIZER_COST_MODEL_H_

#include <functional>

#include "catalog/schema.h"
#include "index/btree.h"
#include "os/dtt_model.h"
#include "storage/buffer_pool.h"

namespace hdb::optimizer {

struct CostModelOptions {
  double cpu_row_us = 0.5;   // touching one row
  double cpu_pred_us = 0.2;  // one predicate evaluation
  double cpu_hash_us = 0.8;  // one hash build/probe
  double cpu_sort_us = 1.5;  // one comparison unit (n log n scaling)
  /// Assumed width of intermediate-result rows, for spill estimates.
  double intermediate_row_bytes = 64.0;
};

/// Resolves live statistics for an index oid (the engine owns the BTree
/// objects); may return nullptr.
using IndexStatsProvider =
    std::function<const index::IndexStats*(uint32_t index_oid)>;

/// I/O-centric cost model built on the Disk-Transfer-Time function (paper
/// §4.2). Costs are estimated microseconds, but their only contract is the
/// paper's Eq. (3): preserve the *ordering* of actual plan run times.
///
/// I/O terms consult the DTT model with an access-pattern-appropriate band
/// size (sequential scans band 1; index row fetches a band derived from
/// the index's live clustering statistic), and are discounted by the
/// fraction of the table already resident in the buffer pool (the
/// real-time table statistic of §3.2).
class CostModel {
 public:
  CostModel(const os::DttModel* dtt, storage::BufferPool* pool,
            IndexStatsProvider index_stats, CostModelOptions options = {});

  uint32_t page_bytes() const;

  double TablePages(const catalog::TableDef& t) const;
  double ResidentFraction(const catalog::TableDef& t) const;
  double RowsToPages(double rows, double row_bytes) const;

  /// Full sequential scan evaluating `num_predicates` per row.
  double SeqScanCost(const catalog::TableDef& t, double num_predicates) const;

  /// Index scan returning `match_fraction` of the table: B-tree descent +
  /// leaf walk + row fetches whose band size comes from clustering.
  /// `assumed_pool_pages` caps the effective working band (the optimistic
  /// half-pool prefix metric of §4.1 passes pool/2 here).
  double IndexScanCost(const catalog::TableDef& t, uint32_t index_oid,
                       double match_fraction,
                       double assumed_pool_pages) const;

  /// `probes` index lookups each returning ~`rows_per_probe` rows
  /// (index nested-loops inner side).
  double IndexProbeCost(const catalog::TableDef& t, uint32_t index_oid,
                        double probes, double rows_per_probe,
                        double assumed_pool_pages) const;

  /// Hash join: build + probe CPU, plus partition-spill I/O when the build
  /// side exceeds `quota_pages` (the memory governor's predicted soft
  /// limit share, paper §4.3).
  double HashJoinCost(double build_rows, double probe_rows,
                      double quota_pages) const;

  /// Plain nested loops: outer_rows re-executions of the inner.
  double NLJoinCost(double outer_rows, double inner_cost,
                    double inner_rows) const;

  /// External merge sort with `quota_pages` of run memory.
  double SortCost(double rows, double quota_pages) const;

  /// Hash group-by of `rows` into ~`groups` groups.
  double GroupByCost(double rows, double groups, double quota_pages) const;

  const CostModelOptions& options() const { return options_; }

 private:
  double ReadMicros(double band_pages) const;
  double WriteMicros(double band_pages) const;

  const os::DttModel* dtt_;
  storage::BufferPool* pool_;
  IndexStatsProvider index_stats_;
  CostModelOptions options_;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_COST_MODEL_H_
