#ifndef HDB_OPTIMIZER_VIRTUAL_INDEX_H_
#define HDB_OPTIMIZER_VIRTUAL_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hdb::optimizer {

/// A "virtual index" specification generated *by the optimizer itself*
/// while costing access paths (paper §5: "the query optimizer is able to
/// generate specifications for indexes it would like to have"). Starts
/// general (a column it wished were indexed) and tightens as optimization
/// proceeds (column order requirements from repeated requests); the Index
/// Consultant imposes a physical composition at the end.
struct VirtualIndexSpec {
  uint32_t table_oid = 0;
  std::string table_name;
  std::vector<int> columns;  // tightened key column order
  double benefit_micros = 0; // accumulated predicted cost saved
  int requests = 0;
};

/// Collects virtual-index requests across an optimization (or a whole
/// profiled workload). When `what_if` is set, the enumerator may *choose*
/// virtual access paths, letting the consultant cost the workload as if
/// the index existed.
class VirtualIndexCollector {
 public:
  explicit VirtualIndexCollector(bool what_if = false) : what_if_(what_if) {}

  bool what_if() const { return what_if_; }

  /// The optimizer wishes table/column had an index worth ~`benefit` us.
  void Request(uint32_t table_oid, const std::string& table_name, int column,
               double benefit) {
    VirtualIndexSpec& spec = specs_[{table_oid, column}];
    spec.table_oid = table_oid;
    spec.table_name = table_name;
    if (spec.columns.empty()) spec.columns.push_back(column);
    spec.benefit_micros += benefit;
    spec.requests++;
  }

  /// Tightens a spec with an ordering requirement: `column` should lead,
  /// followed by `then` (paper §5: "the specification becomes tighter as
  /// optimization proceeds, as the optimizer desires more specific
  /// orderings").
  void Tighten(uint32_t table_oid, int column, const std::vector<int>& then) {
    auto it = specs_.find({table_oid, column});
    if (it == specs_.end()) return;
    for (const int c : then) {
      bool present = false;
      for (const int existing : it->second.columns) {
        if (existing == c) present = true;
      }
      if (!present) it->second.columns.push_back(c);
    }
  }

  std::vector<VirtualIndexSpec> specs() const {
    std::vector<VirtualIndexSpec> out;
    out.reserve(specs_.size());
    for (const auto& [key, spec] : specs_) out.push_back(spec);
    return out;
  }

  void Clear() { specs_.clear(); }

 private:
  bool what_if_;
  std::map<std::pair<uint32_t, int>, VirtualIndexSpec> specs_;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_VIRTUAL_INDEX_H_
