#ifndef HDB_OPTIMIZER_QUERY_H_
#define HDB_OPTIMIZER_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "optimizer/expr.h"

namespace hdb::optimizer {

/// A range variable in the FROM list. (The paper's enumeration operates on
/// quantifiers rather than tables, since converted subqueries and table
/// functions also enumerate; here quantifiers are base tables.)
struct Quantifier {
  const catalog::TableDef* table = nullptr;
  std::string alias;
};

enum class AggKind : uint8_t { kCountStar, kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;  // null for COUNT(*)
  std::string name;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectItem {
  ExprPtr expr;   // null when this item is an aggregate output
  int agg_index = -1;  // >= 0: index into Query::aggregates
  std::string name;
};

/// Bound logical SELECT query — the optimizer's input. WHERE is kept as a
/// flat conjunct list; the enumerator classifies conjuncts into local
/// predicates and join edges itself.
struct Query {
  std::vector<Quantifier> quantifiers;
  std::vector<ExprPtr> conjuncts;

  std::vector<SelectItem> select;
  bool distinct = false;

  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggregates;
  /// HAVING, expressed over the grouped output row: ColumnRefs with
  /// quantifier == quantifiers.size() address [group keys..., aggregates...].
  ExprPtr having;

  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1: no limit

  bool has_grouping() const {
    return !group_by.empty() || !aggregates.empty();
  }
  /// Pseudo-quantifier index used by HAVING / post-aggregation exprs.
  int group_quantifier() const {
    return static_cast<int>(quantifiers.size());
  }
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_QUERY_H_
