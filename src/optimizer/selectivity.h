#ifndef HDB_OPTIMIZER_SELECTIVITY_H_
#define HDB_OPTIMIZER_SELECTIVITY_H_

#include <functional>
#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/query.h"
#include "stats/stats_registry.h"

namespace hdb::optimizer {

/// A conjunct classified for the enumerator.
struct ClassifiedConjunct {
  ExprPtr expr;
  /// Quantifiers referenced.
  std::vector<int> quantifiers;
  /// Equi-join edge decomposition when the conjunct is `qa.ca = qb.cb`.
  bool is_equijoin = false;
  int qa = -1, ca = -1, qb = -1, cb = -1;
  /// Estimated selectivity (fraction of candidate rows / cross product).
  double selectivity = 1.0;
};

/// Probes a physical index at optimization time: fraction of entries in
/// the hash-domain range [lo, hi] (paper §3 lists "index probing" among
/// the automatic statistics techniques). Returns nullopt when the index
/// is unavailable.
using IndexProber = std::function<std::optional<double>(
    uint32_t index_oid, double lo, double hi)>;

/// Selectivity analysis over the self-managing statistics (paper §3):
/// singleton/histogram estimates for local predicates, join histograms,
/// referential-integrity constraints, index statistics for join edges,
/// and index probing where histograms cannot answer (long-string columns
/// and columns with no statistics at all).
class SelectivityEstimator {
 public:
  SelectivityEstimator(const stats::StatsRegistry* stats,
                       catalog::Catalog* catalog,
                       IndexProber prober = nullptr)
      : stats_(stats), catalog_(catalog), prober_(std::move(prober)) {}

  /// Classifies every conjunct of `q` and estimates its selectivity.
  std::vector<ClassifiedConjunct> Classify(const Query& q) const;

  /// Selectivity of one predicate local to quantifier `quant`.
  double LocalSelectivity(const Query& q, int quant, const ExprPtr& e) const;

  /// Selectivity of the equi-join `ta.ca = tb.cb` as a fraction of the
  /// cross product. Preference order: declared foreign key, join
  /// histogram, index distinct statistics, 1/max(card) fallback.
  double JoinSelectivity(const catalog::TableDef& ta, int ca,
                         const catalog::TableDef& tb, int cb) const;

  /// If `e` is a single-column predicate usable as an index range on
  /// (quantifier, column), returns the hash-domain range. Used by access-
  /// path generation.
  struct IndexRange {
    int quantifier = -1;
    int column = -1;
    std::optional<double> lo, hi;
    /// Parameterized bounds (procedure statements keep :params symbolic so
    /// one cached plan serves every invocation, §4.1): evaluated against
    /// the parameter bindings at execution time.
    ExprPtr lo_expr, hi_expr;
    bool lo_inclusive = true, hi_inclusive = true;
    double selectivity = 1.0;
  };
  std::optional<IndexRange> AsIndexRange(const Query& q,
                                         const ExprPtr& e) const;

 private:
  /// Index-probe fallback for a predicate the registry cannot estimate.
  std::optional<double> ProbeSelectivity(uint32_t table_oid, int column,
                                         double lo, double hi) const;

  const stats::StatsRegistry* stats_;
  catalog::Catalog* catalog_;
  IndexProber prober_;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_SELECTIVITY_H_
