#include "optimizer/governor.h"

#include <numeric>

namespace hdb::optimizer {

OptimizerGovernor::OptimizerGovernor(GovernorOptions options)
    : options_(options) {
  Reset();
}

void OptimizerGovernor::Reset() { Reset(options_.initial_quota); }

void OptimizerGovernor::Reset(uint64_t quota) {
  stack_.assign(1, quota);
  visits_ = 0;
  redistributions_ = 0;
}

bool OptimizerGovernor::TryVisit() {
  if (!options_.enabled) {
    ++visits_;
    return true;
  }
  if (stack_.back() == 0) return false;
  stack_.back()--;
  ++visits_;
  return true;
}

void OptimizerGovernor::EnterChild() {
  if (!options_.enabled) {
    stack_.push_back(0);
    return;
  }
  // Non-distributing (ablation) mode: the child simply inherits the whole
  // remainder — one global countdown, no effort spreading.
  const uint64_t grant =
      options_.distribute ? stack_.back() / 2 : stack_.back();
  stack_.back() -= grant;
  stack_.push_back(grant);
}

void OptimizerGovernor::LeaveChild() {
  if (stack_.size() <= 1) return;
  const uint64_t unused = stack_.back();
  stack_.pop_back();
  if (options_.enabled) stack_.back() += unused;
}

void OptimizerGovernor::OnImprovedPlan(double improvement) {
  if (!options_.enabled ||
      improvement < options_.redistribute_improvement) {
    return;
  }
  // Pool every level's remainder and re-concentrate it on the current
  // path, starting at the root (paper: "any remaining quota for that
  // search path is completely redistributed, starting at the root").
  const uint64_t total =
      std::accumulate(stack_.begin(), stack_.end(), uint64_t{0});
  // The deepest (current) level gets half, its parent half of the rest,
  // and the residue lands at the root for fresh branches.
  uint64_t remaining = total;
  for (size_t i = stack_.size(); i-- > 0;) {
    const uint64_t grant = (i == 0) ? remaining : remaining / 2;
    stack_[i] = grant;
    remaining -= grant;
  }
  ++redistributions_;
}

bool OptimizerGovernor::Exhausted() const {
  if (!options_.enabled) return false;
  for (const uint64_t q : stack_) {
    if (q > 0) return false;
  }
  return true;
}

}  // namespace hdb::optimizer
