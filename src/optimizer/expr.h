#ifndef HDB_OPTIMIZER_EXPR_H_
#define HDB_OPTIMIZER_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace hdb::optimizer {

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kParam,       // :name placeholder inside procedure bodies
  kCompare,     // =, <>, <, <=, >, >=
  kAnd,
  kOr,
  kNot,
  kIsNull,      // IS [NOT] NULL via negated_
  kBetween,     // child0 BETWEEN child1 AND child2
  kLike,        // child0 LIKE literal pattern
  kInList,      // child0 IN (literals...)
  kArith,       // +, -, *, /
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// A row context for evaluation: one row slot per quantifier; each slot is
/// the decoded base-table row. ColumnRefs address (quantifier, column).
struct RowContext {
  /// rows[q] may be null while q is not yet bound (e.g. probing).
  std::vector<const std::vector<Value>*> rows;
  /// Final projected row, produced by the Project operator and consumed by
  /// operators above it (Distinct, Limit) and by result fetch.
  std::vector<Value> output;
  /// Procedure parameter bindings (kParam lookup). Plans for statements
  /// inside procedures keep parameters symbolic so one cached plan serves
  /// every invocation (paper §4.1); values bind here at execution.
  const std::vector<std::pair<std::string, Value>>* params = nullptr;
};

/// Immutable expression tree with SQL three-valued-logic evaluation.
/// Built by the binder; consumed by the optimizer (selectivity analysis)
/// and the executor (predicate/projection evaluation).
class Expr {
 public:
  // --- Factories ---
  static ExprPtr Literal(Value v);
  static ExprPtr Column(int quantifier, int column, TypeId type,
                        std::string name = "");
  static ExprPtr Param(std::string name);
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr IsNull(ExprPtr e, bool negated);
  static ExprPtr Between(ExprPtr v, ExprPtr lo, ExprPtr hi);
  static ExprPtr Like(ExprPtr v, std::string pattern);
  static ExprPtr InList(ExprPtr v, std::vector<ExprPtr> list);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);

  ExprKind kind() const { return kind_; }
  CompareOp compare_op() const { return cmp_; }
  ArithOp arith_op() const { return arith_; }
  const Value& literal() const { return literal_; }
  int quantifier() const { return quantifier_; }
  int column() const { return column_; }
  TypeId type() const { return type_; }
  const std::string& name() const { return name_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates under `ctx`. Comparison/logic results are Boolean Values or
  /// NULL (three-valued logic). Errors only on type misuse.
  Result<Value> Evaluate(const RowContext& ctx) const;

  /// True iff Evaluate yields TRUE (NULL and FALSE both fail a filter).
  Result<bool> EvaluatesToTrue(const RowContext& ctx) const;

  /// Bitmask of quantifiers referenced anywhere in this tree (supports up
  /// to 128 quantifiers — the 100-way-join experiment needs >64).
  void CollectQuantifiers(std::vector<bool>* mask) const;

  /// Replaces kParam nodes by literal values (procedure invocation).
  static ExprPtr BindParams(
      const ExprPtr& e,
      const std::vector<std::pair<std::string, Value>>& params);

  /// Display form for EXPLAIN and the profiler.
  std::string ToString() const;

  /// SQL LIKE matching ('%' any run, '_' one char), case-insensitive.
  static bool LikeMatch(std::string_view text, std::string_view pattern);

 private:
  explicit Expr(ExprKind k) : kind_(k) {}

  ExprKind kind_;
  CompareOp cmp_ = CompareOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  Value literal_;
  int quantifier_ = -1;
  int column_ = -1;
  TypeId type_ = TypeId::kInt;
  std::string name_;
  std::string pattern_;
  bool negated_ = false;
  std::vector<ExprPtr> children_;
};

/// Splits a predicate tree on AND into conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_EXPR_H_
