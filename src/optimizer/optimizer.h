#ifndef HDB_OPTIMIZER_OPTIMIZER_H_
#define HDB_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan.h"
#include "optimizer/query.h"
#include "optimizer/selectivity.h"
#include "optimizer/virtual_index.h"
#include "stats/stats_registry.h"

namespace hdb::optimizer {

/// Everything the optimizer consults, wired by the engine per statement.
struct OptimizerContext {
  catalog::Catalog* catalog = nullptr;
  const stats::StatsRegistry* stats = nullptr;
  storage::BufferPool* pool = nullptr;
  IndexStatsProvider index_stats;
  /// Optional index-probing callback for selectivity (paper §3).
  IndexProber index_prober;
  /// The memory governor's predicted soft limit in pages (Eq. (5)); used
  /// to cost and annotate memory-intensive operators (paper §4.3).
  double predicted_soft_limit_pages = 256;
  GovernorOptions governor;
  size_t arena_budget_bytes = 0;
  VirtualIndexCollector* virtual_indexes = nullptr;
  bool use_virtual_indexes = false;
  bool invert_promise_order = false;  // ablation experiments only
  CostModelOptions cost_options;
  /// Intra-query parallelism seeding (paper §4.4, DESIGN.md §13). With
  /// parallel_max_workers <= 1 the marking pass is disabled and every
  /// plan stays serial. Seeds are upper bounds: the ParallelismGovernor
  /// grants the actual worker count at pipeline start.
  int parallel_max_workers = 1;
  double parallel_rows_per_worker = 8192;
  double parallel_min_table_rows = 2048;
};

struct OptimizeDiagnostics {
  bool bypassed = false;
  EnumerationResult enumeration;
};

/// Cost-based optimizer facade (paper §4.1). SQL Anywhere re-optimizes a
/// query at each invocation, so this object is cheap to use per statement;
/// the heuristic bypass handles the simple single-table DML class.
class Optimizer {
 public:
  explicit Optimizer(OptimizerContext ctx);

  /// True when the statement qualifies for the heuristic bypass: a single
  /// table, no grouping/ordering — "the cost of optimization approaches
  /// the cost of statement execution".
  static bool QualifiesForBypass(const Query& q);

  /// Full optimization. `allow_bypass` lets simple statements skip the
  /// cost-based search (set for DML and trivial selects).
  Result<PlanPtr> Optimize(const Query& q, bool allow_bypass = false,
                           OptimizeDiagnostics* diag = nullptr);

  /// The heuristic (non-cost-based) single-table plan.
  Result<PlanPtr> BuildBypassPlan(const Query& q);

  const CostModel& cost_model() const { return cost_model_; }

 private:
  PlanPtr BuildScanNode(const Query& q, const EnumerationStep& step,
                        const std::vector<ClassifiedConjunct>& classified);
  Result<PlanPtr> BuildPlanFromSteps(const Query& q,
                                     const EnumerationResult& enumeration);
  void AddPostJoinNodes(const Query& q, PlanPtr* root);
  void AnnotateHashJoinAlternate(const Query& q, PlanNode* join,
                                 int outer_quantifier, int outer_column,
                                 double est_build_rows, double probe_rows);
  /// Post-pass marking parallel-eligible fragments (paper §4.4): seeds
  /// PlanNode::parallel_workers on exchange-capable nodes from the scanned
  /// tables' cardinalities. Runs on both the enumerated and bypass paths.
  void MarkParallelFragments(PlanNode* root);
  void MarkParallelNode(PlanNode* n, bool under_limit);
  int SeedWorkers(double scan_rows) const;

  OptimizerContext ctx_;
  SelectivityEstimator estimator_;
  CostModel cost_model_;
};

}  // namespace hdb::optimizer

#endif  // HDB_OPTIMIZER_OPTIMIZER_H_
