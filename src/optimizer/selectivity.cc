#include "optimizer/selectivity.h"

#include <algorithm>
#include <limits>

#include "common/ophash.h"
#include "stats/join_histogram.h"

namespace hdb::optimizer {

namespace {

// Matches Compare(ColumnRef, Literal) in either orientation; flips the
// operator when the column is on the right.
bool MatchColLit(const ExprPtr& e, const Expr** col, const Value** lit,
                 CompareOp* op) {
  if (e->kind() != ExprKind::kCompare) return false;
  const Expr* l = e->children()[0].get();
  const Expr* r = e->children()[1].get();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    *col = l;
    *lit = &r->literal();
    *op = e->compare_op();
    return true;
  }
  if (r->kind() == ExprKind::kColumnRef && l->kind() == ExprKind::kLiteral) {
    *col = r;
    *lit = &l->literal();
    switch (e->compare_op()) {
      case CompareOp::kLt: *op = CompareOp::kGt; break;
      case CompareOp::kLe: *op = CompareOp::kGe; break;
      case CompareOp::kGt: *op = CompareOp::kLt; break;
      case CompareOp::kGe: *op = CompareOp::kLe; break;
      default: *op = e->compare_op(); break;
    }
    return true;
  }
  return false;
}

bool MatchColCol(const ExprPtr& e, const Expr** a, const Expr** b) {
  if (e->kind() != ExprKind::kCompare ||
      e->compare_op() != CompareOp::kEq) {
    return false;
  }
  const Expr* l = e->children()[0].get();
  const Expr* r = e->children()[1].get();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kColumnRef &&
      l->quantifier() != r->quantifier()) {
    *a = l;
    *b = r;
    return true;
  }
  return false;
}

}  // namespace

std::optional<double> SelectivityEstimator::ProbeSelectivity(
    uint32_t table_oid, int column, double lo, double hi) const {
  if (prober_ == nullptr) return std::nullopt;
  for (catalog::IndexDef* idx : catalog_->TableIndexes(table_oid)) {
    if (idx->column_indexes.empty() || idx->column_indexes[0] != column) {
      continue;
    }
    return prober_(idx->oid, lo, hi);
  }
  return std::nullopt;
}

double SelectivityEstimator::LocalSelectivity(const Query& q, int quant,
                                              const ExprPtr& e) const {
  const catalog::TableDef* t = q.quantifiers[quant].table;
  const Expr* col = nullptr;
  const Value* lit = nullptr;
  CompareOp op = CompareOp::kEq;

  if (MatchColLit(e, &col, &lit, &op)) {
    const int c = col->column();
    // Index probing (paper §3): when the column's histogram cannot answer
    // — no statistics at all, or a long-string column whose predicate has
    // never been observed — probe a physical index on the column instead
    // of guessing.
    const stats::ColumnStats* cs = stats_->Get(t->oid, c);
    const bool hist_blind =
        cs == nullptr ||
        (cs->long_string &&
         stats_->SelEquals(t->oid, c, *lit) ==
             stats::DefaultSelectivity::kEquals) ||
        (cs->histogram != nullptr && cs->histogram->total_rows() == 0 &&
         t->row_count > 0);
    if (hist_blind) {
      const double h = OrderPreservingHash(*lit);
      std::optional<double> probed;
      switch (op) {
        case CompareOp::kEq:
          probed = ProbeSelectivity(t->oid, c, h, h);
          break;
        case CompareOp::kLt:
        case CompareOp::kLe:
          probed = ProbeSelectivity(
              t->oid, c, -std::numeric_limits<double>::infinity(), h);
          break;
        case CompareOp::kGt:
        case CompareOp::kGe:
          probed = ProbeSelectivity(
              t->oid, c, h, std::numeric_limits<double>::infinity());
          break;
        default:
          break;
      }
      if (probed.has_value()) return *probed;
    }
    switch (op) {
      case CompareOp::kEq:
        return stats_->SelEquals(t->oid, c, *lit);
      case CompareOp::kNe:
        return std::clamp(1.0 - stats_->SelEquals(t->oid, c, *lit) -
                              stats_->SelIsNull(t->oid, c),
                          0.0, 1.0);
      case CompareOp::kLt:
        return stats_->SelRange(t->oid, c, nullptr, true, lit, false);
      case CompareOp::kLe:
        return stats_->SelRange(t->oid, c, nullptr, true, lit, true);
      case CompareOp::kGt:
        return stats_->SelRange(t->oid, c, lit, false, nullptr, true);
      case CompareOp::kGe:
        return stats_->SelRange(t->oid, c, lit, true, nullptr, true);
    }
  }
  switch (e->kind()) {
    case ExprKind::kIsNull: {
      const Expr* child = e->children()[0].get();
      if (child->kind() == ExprKind::kColumnRef) {
        const double null_sel = stats_->SelIsNull(t->oid, child->column());
        return e->negated() ? 1.0 - null_sel : null_sel;
      }
      break;
    }
    case ExprKind::kBetween: {
      const Expr* v = e->children()[0].get();
      const Expr* lo = e->children()[1].get();
      const Expr* hi = e->children()[2].get();
      if (v->kind() == ExprKind::kColumnRef &&
          lo->kind() == ExprKind::kLiteral &&
          hi->kind() == ExprKind::kLiteral) {
        return stats_->SelRange(t->oid, v->column(), &lo->literal(), true,
                                &hi->literal(), true);
      }
      break;
    }
    case ExprKind::kLike: {
      const Expr* v = e->children()[0].get();
      if (v->kind() == ExprKind::kColumnRef) {
        return stats_->SelLike(t->oid, v->column(), e->pattern());
      }
      break;
    }
    case ExprKind::kInList: {
      const Expr* v = e->children()[0].get();
      if (v->kind() == ExprKind::kColumnRef) {
        double sel = 0;
        for (size_t i = 1; i < e->children().size(); ++i) {
          if (e->children()[i]->kind() == ExprKind::kLiteral) {
            sel += stats_->SelEquals(t->oid, v->column(),
                                     e->children()[i]->literal());
          }
        }
        return std::min(sel, 1.0);
      }
      break;
    }
    case ExprKind::kOr: {
      std::vector<ExprPtr> sides = {e->children()[0], e->children()[1]};
      double s0 = LocalSelectivity(q, quant, sides[0]);
      double s1 = LocalSelectivity(q, quant, sides[1]);
      return std::min(1.0, s0 + s1 - s0 * s1);
    }
    case ExprKind::kNot: {
      return std::clamp(1.0 - LocalSelectivity(q, quant, e->children()[0]),
                        0.0, 1.0);
    }
    default:
      break;
  }
  return 0.33;  // generic predicate guess
}

double SelectivityEstimator::JoinSelectivity(const catalog::TableDef& ta,
                                             int ca,
                                             const catalog::TableDef& tb,
                                             int cb) const {
  // Referential integrity: a child FK joining its parent key matches
  // exactly one parent row — selectivity 1/parent_rows (paper §3.2).
  if (catalog_->HasForeignKey(ta.oid, ca, tb.oid, cb)) {
    return tb.row_count > 0 ? 1.0 / static_cast<double>(tb.row_count) : 1.0;
  }
  if (catalog_->HasForeignKey(tb.oid, cb, ta.oid, ca)) {
    return ta.row_count > 0 ? 1.0 / static_cast<double>(ta.row_count) : 1.0;
  }

  // Join histogram, computed on the fly (paper §3.2).
  const stats::ColumnStats* sa = stats_->Get(ta.oid, ca);
  const stats::ColumnStats* sb = stats_->Get(tb.oid, cb);
  if (sa != nullptr && sb != nullptr && sa->histogram != nullptr &&
      sb->histogram != nullptr && sa->histogram->total_rows() > 0 &&
      sb->histogram->total_rows() > 0) {
    return stats::JoinHistogram(*sa->histogram, *sb->histogram).selectivity();
  }

  // Distinct-count containment fallback.
  double da = 0, db = 0;
  if (sa != nullptr && sa->histogram != nullptr) {
    da = sa->histogram->EstimateDistinct();
  }
  if (sb != nullptr && sb->histogram != nullptr) {
    db = sb->histogram->EstimateDistinct();
  }
  const double d = std::max(da, db);
  if (d >= 1) return 1.0 / d;
  const double m = static_cast<double>(std::max(ta.row_count, tb.row_count));
  return m > 0 ? 1.0 / m : 1.0;
}

std::vector<ClassifiedConjunct> SelectivityEstimator::Classify(
    const Query& q) const {
  std::vector<ClassifiedConjunct> out;
  out.reserve(q.conjuncts.size());
  for (const ExprPtr& e : q.conjuncts) {
    ClassifiedConjunct c;
    c.expr = e;
    std::vector<bool> mask;
    e->CollectQuantifiers(&mask);
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) c.quantifiers.push_back(static_cast<int>(i));
    }
    const Expr* a = nullptr;
    const Expr* b = nullptr;
    if (MatchColCol(e, &a, &b)) {
      c.is_equijoin = true;
      c.qa = a->quantifier();
      c.ca = a->column();
      c.qb = b->quantifier();
      c.cb = b->column();
      c.selectivity = JoinSelectivity(*q.quantifiers[c.qa].table, c.ca,
                                      *q.quantifiers[c.qb].table, c.cb);
    } else if (c.quantifiers.size() == 1) {
      c.selectivity = LocalSelectivity(q, c.quantifiers[0], e);
    } else {
      c.selectivity = 0.33;  // generic multi-quantifier predicate
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::optional<SelectivityEstimator::IndexRange>
SelectivityEstimator::AsIndexRange(const Query& q, const ExprPtr& e) const {
  const Expr* col = nullptr;
  const Value* lit = nullptr;
  CompareOp op = CompareOp::kEq;
  IndexRange r;

  // Parameterized predicate: column <op> :param. The bound is symbolic —
  // evaluated per invocation — and selectivity falls back to the default
  // guesses (the realistic price of plan caching, §4.1).
  if (e->kind() == ExprKind::kCompare) {
    const Expr* l = e->children()[0].get();
    const Expr* rr = e->children()[1].get();
    const Expr* column = nullptr;
    ExprPtr operand;
    CompareOp pop = e->compare_op();
    if (l->kind() == ExprKind::kColumnRef && rr->kind() == ExprKind::kParam) {
      column = l;
      operand = e->children()[1];
    } else if (rr->kind() == ExprKind::kColumnRef &&
               l->kind() == ExprKind::kParam) {
      column = rr;
      operand = e->children()[0];
      switch (pop) {
        case CompareOp::kLt: pop = CompareOp::kGt; break;
        case CompareOp::kLe: pop = CompareOp::kGe; break;
        case CompareOp::kGt: pop = CompareOp::kLt; break;
        case CompareOp::kGe: pop = CompareOp::kLe; break;
        default: break;
      }
    }
    if (column != nullptr) {
      r.quantifier = column->quantifier();
      r.column = column->column();
      switch (pop) {
        case CompareOp::kEq:
          r.lo_expr = operand;
          r.hi_expr = operand;
          r.selectivity = stats::DefaultSelectivity::kEquals;
          break;
        case CompareOp::kLt:
          r.hi_expr = operand;
          r.hi_inclusive = false;
          r.selectivity = stats::DefaultSelectivity::kRange;
          break;
        case CompareOp::kLe:
          r.hi_expr = operand;
          r.selectivity = stats::DefaultSelectivity::kRange;
          break;
        case CompareOp::kGt:
          r.lo_expr = operand;
          r.lo_inclusive = false;
          r.selectivity = stats::DefaultSelectivity::kRange;
          break;
        case CompareOp::kGe:
          r.lo_expr = operand;
          r.selectivity = stats::DefaultSelectivity::kRange;
          break;
        default:
          return std::nullopt;
      }
      return r;
    }
  }

  if (MatchColLit(e, &col, &lit, &op)) {
    r.quantifier = col->quantifier();
    r.column = col->column();
    const double h = OrderPreservingHash(*lit);
    switch (op) {
      case CompareOp::kEq:
        r.lo = h;
        r.hi = h;
        break;
      case CompareOp::kLt:
        r.hi = h;
        r.hi_inclusive = false;
        break;
      case CompareOp::kLe:
        r.hi = h;
        break;
      case CompareOp::kGt:
        r.lo = h;
        r.lo_inclusive = false;
        break;
      case CompareOp::kGe:
        r.lo = h;
        break;
      default:
        return std::nullopt;  // <> is not an index range
    }
    r.selectivity = LocalSelectivity(q, r.quantifier, e);
    return r;
  }
  if (e->kind() == ExprKind::kBetween) {
    const Expr* v = e->children()[0].get();
    const Expr* lo = e->children()[1].get();
    const Expr* hi = e->children()[2].get();
    if (v->kind() == ExprKind::kColumnRef &&
        lo->kind() == ExprKind::kLiteral &&
        hi->kind() == ExprKind::kLiteral) {
      r.quantifier = v->quantifier();
      r.column = v->column();
      r.lo = OrderPreservingHash(lo->literal());
      r.hi = OrderPreservingHash(hi->literal());
      r.selectivity = LocalSelectivity(q, r.quantifier, e);
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace hdb::optimizer
