#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

namespace hdb::optimizer {

namespace {

/// AND-combines a list of conjuncts (nullptr when empty).
ExprPtr Conjoin(const std::vector<ExprPtr>& parts) {
  ExprPtr acc;
  for (const ExprPtr& p : parts) {
    acc = acc == nullptr ? p : Expr::And(acc, p);
  }
  return acc;
}

bool AllBound(const ClassifiedConjunct& c, const std::vector<char>& bound) {
  for (const int q : c.quantifiers) {
    if (q >= static_cast<int>(bound.size()) || !bound[q]) return false;
  }
  return !c.quantifiers.empty();
}

/// Plan-time memory estimate for a blocking operator (DESIGN.md §10):
/// estimated buffered rows × the executor's per-row charge (48 bytes per
/// value + overhead), capped by the predicted soft limit. Feeds
/// MemoryConsumer::predicted_pages (the sys.governors predicted column)
/// and EXPLAIN's mem=Np annotation — no longer the bare soft limit, so
/// the annotation distinguishes a 1-page aggregate from a spill-bound
/// join under the same governor.
uint32_t EstimateQuotaPages(const OptimizerContext& ctx, double est_rows,
                            size_t row_arity) {
  const double page_bytes =
      ctx.pool != nullptr ? static_cast<double>(ctx.pool->page_bytes())
                          : 4096.0;
  const double bytes =
      std::max(1.0, est_rows) *
      (48.0 * static_cast<double>(row_arity) + 64.0);
  const double pages = std::max(1.0, bytes / page_bytes);
  return static_cast<uint32_t>(
      std::max(1.0, std::min(ctx.predicted_soft_limit_pages, pages)));
}

}  // namespace

Optimizer::Optimizer(OptimizerContext ctx)
    : ctx_(ctx),
      estimator_(ctx.stats, ctx.catalog, ctx.index_prober),
      cost_model_(&ctx.catalog->dtt_model(), ctx.pool, ctx.index_stats,
                  ctx.cost_options) {}

bool Optimizer::QualifiesForBypass(const Query& q) {
  return q.quantifiers.size() == 1 && !q.has_grouping() &&
         q.order_by.empty() && !q.distinct;
}

PlanPtr Optimizer::BuildScanNode(
    const Query& q, const EnumerationStep& step,
    const std::vector<ClassifiedConjunct>& classified) {
  auto node = std::make_unique<PlanNode>();
  const int quant = step.quantifier;
  node->quantifier = quant;
  node->table = q.quantifiers[quant].table;
  const bool has_range =
      step.path.lo.has_value() || step.path.hi.has_value() ||
      step.path.lo_expr != nullptr || step.path.hi_expr != nullptr;
  if (step.path.index != nullptr && has_range) {
    node->kind = PlanKind::kIndexScan;
    node->index = step.path.index;
    node->index_is_virtual = step.path.is_virtual;
    node->index_lo = step.path.lo;
    node->index_hi = step.path.hi;
    node->index_lo_expr = step.path.lo_expr;
    node->index_hi_expr = step.path.hi_expr;
    node->index_lo_inclusive = step.path.lo_inclusive;
    node->index_hi_inclusive = step.path.hi_inclusive;
  } else {
    node->kind = PlanKind::kSeqScan;
  }
  // Residual: every local predicate, including the index condition — index
  // keys are order-preserving hashes, so matches must be re-verified.
  std::vector<ExprPtr> locals;
  for (const ClassifiedConjunct& c : classified) {
    if (!c.is_equijoin && c.quantifiers.size() == 1 &&
        c.quantifiers[0] == quant) {
      locals.push_back(c.expr);
    }
  }
  node->residual = Conjoin(locals);
  node->est_rows = step.rows_after;
  node->est_cost = step.path.cost;
  return node;
}

void Optimizer::AnnotateHashJoinAlternate(const Query& q, PlanNode* join,
                                          int outer_quantifier,
                                          int outer_column,
                                          double est_build_rows,
                                          double probe_rows) {
  const catalog::TableDef& outer_table = *q.quantifiers[outer_quantifier].table;
  for (catalog::IndexDef* idx : ctx_.catalog->TableIndexes(outer_table.oid)) {
    if (idx->column_indexes.empty() ||
        idx->column_indexes[0] != outer_column) {
      continue;
    }
    // Cost of probing the outer's index once, with an average number of
    // matches per key.
    const double rows_per_probe = std::max(
        1.0, static_cast<double>(outer_table.row_count) /
                 std::max(1.0, est_build_rows * 4));
    const double one_probe = cost_model_.IndexProbeCost(
        outer_table, idx->oid, 1.0, rows_per_probe,
        ctx_.predicted_soft_limit_pages);
    const double hash_side =
        cost_model_.SeqScanCost(outer_table, 1.0) +
        probe_rows * cost_model_.options().cpu_hash_us;
    join->alt_index_nl = true;
    join->alt_index = idx;
    join->alt_switch_threshold_rows =
        one_probe > 0 ? hash_side / one_probe : 0;
    return;
  }
}

Result<PlanPtr> Optimizer::BuildPlanFromSteps(
    const Query& q, const EnumerationResult& enumeration) {
  const auto classified = estimator_.Classify(q);
  std::vector<char> bound(q.quantifiers.size(), 0);
  std::vector<char> conjunct_applied(classified.size(), 0);

  // Mark single-quantifier conjuncts applied: scans carry them.
  for (size_t i = 0; i < classified.size(); ++i) {
    if (!classified[i].is_equijoin && classified[i].quantifiers.size() == 1) {
      conjunct_applied[i] = 1;
    }
  }

  PlanPtr current;
  for (size_t si = 0; si < enumeration.steps.size(); ++si) {
    const EnumerationStep& step = enumeration.steps[si];
    const int quant = step.quantifier;
    const catalog::TableDef& t = *q.quantifiers[quant].table;
    PlanPtr scan = BuildScanNode(q, step, classified);

    if (si == 0) {
      current = std::move(scan);
      bound[quant] = 1;
      continue;
    }

    auto join = std::make_unique<PlanNode>();
    join->est_rows = step.rows_after;
    join->est_cost = step.cost_after;
    join->quantifier = quant;
    join->table = &t;

    const JoinEdge* key = step.key_edge >= 0
                              ? &enumeration.edges[step.key_edge]
                              : nullptr;
    // Orient the key: "outer" is the already-bound side.
    int outer_q = -1, outer_c = -1, inner_c = -1;
    if (key != nullptr) {
      if (key->qa == quant) {
        outer_q = key->qb;
        outer_c = key->cb;
        inner_c = key->ca;
      } else {
        outer_q = key->qa;
        outer_c = key->ca;
        inner_c = key->cb;
      }
    }

    switch (step.method) {
      case JoinMethod::kHash: {
        join->kind = PlanKind::kHashJoin;
        join->outer_key = Expr::Column(
            outer_q, outer_c,
            q.quantifiers[outer_q].table->columns[outer_c].type,
            q.quantifiers[outer_q].table->columns[outer_c].name);
        join->inner_key =
            Expr::Column(quant, inner_c, t.columns[inner_c].type,
                         t.columns[inner_c].name);
        // The join buffers its build side: the inner scan's output.
        join->memory_quota_pages =
            EstimateQuotaPages(ctx_, scan->est_rows, t.columns.size());
        // The alternate index-NL strategy applies when the probe side is a
        // single base table with an index on the join column (paper §4.3).
        if (si == 1) {
          AnnotateHashJoinAlternate(q, join.get(), outer_q, outer_c,
                                    step.rows_after, step.rows_after);
        }
        join->children.push_back(std::move(current));  // probe / outer
        join->children.push_back(std::move(scan));     // build / inner
        break;
      }
      case JoinMethod::kIndexNL: {
        join->kind = PlanKind::kIndexNLJoin;
        join->index = step.path.index;
        join->index_is_virtual = step.path.is_virtual;
        join->outer_key = Expr::Column(
            outer_q, outer_c,
            q.quantifiers[outer_q].table->columns[outer_c].type,
            q.quantifiers[outer_q].table->columns[outer_c].name);
        join->inner_key =
            Expr::Column(quant, inner_c, t.columns[inner_c].type,
                         t.columns[inner_c].name);
        // Residual: local predicates plus the equi condition itself (the
        // probe is on hash codes; re-verify on values).
        join->residual = scan->residual;
        if (key != nullptr) {
          join->residual = join->residual == nullptr
                               ? key->expr
                               : Expr::And(join->residual, key->expr);
        }
        join->children.push_back(std::move(current));
        break;
      }
      case JoinMethod::kNL:
      case JoinMethod::kFirst: {
        join->kind = PlanKind::kNLJoin;
        join->children.push_back(std::move(current));
        join->children.push_back(std::move(scan));
        break;
      }
    }

    bound[quant] = 1;
    // Mark the key conjunct applied where the join method itself enforces
    // it: hash joins match on Values (exact) and index-NL rechecks via the
    // residual above. Plain NL joins evaluate it as an extra condition.
    if (key != nullptr && step.method != JoinMethod::kNL) {
      for (size_t i = 0; i < classified.size(); ++i) {
        if (classified[i].expr == key->expr) conjunct_applied[i] = 1;
      }
    }
    // Any other conjunct that just became fully bound attaches here.
    std::vector<ExprPtr> extras;
    for (size_t i = 0; i < classified.size(); ++i) {
      if (!conjunct_applied[i] && AllBound(classified[i], bound)) {
        extras.push_back(classified[i].expr);
        conjunct_applied[i] = 1;
      }
    }
    join->extra_condition = Conjoin(extras);
    current = std::move(join);
  }

  // Safety net: conjuncts that never became bound (shouldn't happen).
  std::vector<ExprPtr> leftovers;
  for (size_t i = 0; i < classified.size(); ++i) {
    if (!conjunct_applied[i]) leftovers.push_back(classified[i].expr);
  }
  if (!leftovers.empty()) {
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->residual = Conjoin(leftovers);
    filter->est_rows = current->est_rows;
    filter->est_cost = current->est_cost;
    filter->children.push_back(std::move(current));
    current = std::move(filter);
  }

  AddPostJoinNodes(q, &current);
  return current;
}

void Optimizer::AddPostJoinNodes(const Query& q, PlanPtr* root) {
  if (q.has_grouping()) {
    auto gb = std::make_unique<PlanNode>();
    gb->kind = PlanKind::kHashGroupBy;
    gb->group_keys = q.group_by;
    gb->aggregates = q.aggregates;
    gb->having = q.having;
    gb->est_rows = std::max(1.0, (*root)->est_rows / 10.0);
    // One group entry per output row: keys plus one agg state each.
    gb->memory_quota_pages = EstimateQuotaPages(
        ctx_, gb->est_rows, q.group_by.size() + q.aggregates.size());
    gb->est_cost = (*root)->est_cost;
    gb->children.push_back(std::move(*root));
    *root = std::move(gb);
  }
  if (!q.order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    sort->order = q.order_by;
    // The sort buffers whole flattened rows: every bound table's width.
    size_t sort_arity = q.order_by.size();
    for (const auto& quant : q.quantifiers) {
      if (quant.table != nullptr) sort_arity += quant.table->columns.size();
    }
    sort->memory_quota_pages =
        EstimateQuotaPages(ctx_, (*root)->est_rows, sort_arity);
    sort->est_rows = (*root)->est_rows;
    sort->est_cost = (*root)->est_cost;
    sort->children.push_back(std::move(*root));
    *root = std::move(sort);
  }
  {
    auto proj = std::make_unique<PlanNode>();
    proj->kind = PlanKind::kProject;
    proj->projections = q.select;
    proj->est_rows = (*root)->est_rows;
    proj->est_cost = (*root)->est_cost;
    proj->children.push_back(std::move(*root));
    *root = std::move(proj);
  }
  if (q.distinct) {
    auto d = std::make_unique<PlanNode>();
    d->kind = PlanKind::kHashDistinct;
    // Distinct runs above the projection: it keys on the select list.
    d->memory_quota_pages =
        EstimateQuotaPages(ctx_, (*root)->est_rows, q.select.size());
    d->est_rows = (*root)->est_rows;
    d->est_cost = (*root)->est_cost;
    d->children.push_back(std::move(*root));
    *root = std::move(d);
  }
  if (q.limit >= 0) {
    auto l = std::make_unique<PlanNode>();
    l->kind = PlanKind::kLimit;
    l->limit = q.limit;
    l->est_rows = std::min<double>((*root)->est_rows,
                                   static_cast<double>(q.limit));
    l->est_cost = (*root)->est_cost;
    l->children.push_back(std::move(*root));
    *root = std::move(l);
  }
}

Result<PlanPtr> Optimizer::BuildBypassPlan(const Query& q) {
  if (q.quantifiers.size() != 1) {
    return Status::InvalidArgument("bypass plan needs exactly one table");
  }
  const catalog::TableDef& t = *q.quantifiers[0].table;
  const auto classified = estimator_.Classify(q);

  // Heuristic: first indexable predicate with a matching index wins; no
  // costing at all (paper §4.1).
  PlanPtr scan = std::make_unique<PlanNode>();
  scan->kind = PlanKind::kSeqScan;
  scan->quantifier = 0;
  scan->table = &t;
  for (const ClassifiedConjunct& c : classified) {
    if (c.is_equijoin) continue;
    const auto range = estimator_.AsIndexRange(q, c.expr);
    if (!range.has_value()) continue;
    for (catalog::IndexDef* idx : ctx_.catalog->TableIndexes(t.oid)) {
      if (!idx->column_indexes.empty() &&
          idx->column_indexes[0] == range->column) {
        scan->kind = PlanKind::kIndexScan;
        scan->index = idx;
        scan->index_lo = range->lo;
        scan->index_hi = range->hi;
        scan->index_lo_expr = range->lo_expr;
        scan->index_hi_expr = range->hi_expr;
        scan->index_lo_inclusive = range->lo_inclusive;
        scan->index_hi_inclusive = range->hi_inclusive;
        break;
      }
    }
    if (scan->kind == PlanKind::kIndexScan) break;
  }
  std::vector<ExprPtr> locals;
  for (const ClassifiedConjunct& c : classified) locals.push_back(c.expr);
  scan->residual = Conjoin(locals);
  scan->est_rows = static_cast<double>(t.row_count);
  AddPostJoinNodes(q, &scan);
  return scan;
}

Result<PlanPtr> Optimizer::Optimize(const Query& q, bool allow_bypass,
                                    OptimizeDiagnostics* diag) {
  if (allow_bypass && QualifiesForBypass(q)) {
    if (diag != nullptr) diag->bypassed = true;
    HDB_ASSIGN_OR_RETURN(PlanPtr plan, BuildBypassPlan(q));
    MarkParallelFragments(plan.get());
    return plan;
  }
  EnumeratorOptions opts;
  opts.governor = ctx_.governor;
  opts.arena_budget_bytes = ctx_.arena_budget_bytes;
  opts.use_virtual_indexes = ctx_.use_virtual_indexes;
  opts.invert_promise_order = ctx_.invert_promise_order;
  JoinEnumerator enumerator(q, &estimator_, &cost_model_, ctx_.catalog,
                            ctx_.pool, ctx_.virtual_indexes, opts);
  HDB_ASSIGN_OR_RETURN(EnumerationResult result, enumerator.Run());
  if (diag != nullptr) diag->enumeration = result;
  HDB_ASSIGN_OR_RETURN(PlanPtr plan, BuildPlanFromSteps(q, result));
  MarkParallelFragments(plan.get());
  return plan;
}

namespace {

/// Walks a {Filter, Project}* chain down to its scan; returns it when the
/// chain is exchange-runnable: a plain SeqScan over a real (non-virtual)
/// base table, so workers can share one FCFS morsel dispenser.
const PlanNode* EligibleFragmentScan(const PlanNode* n) {
  while (n->kind == PlanKind::kFilter || n->kind == PlanKind::kProject) {
    if (n->children.size() != 1) return nullptr;
    n = n->children[0].get();
  }
  if (n->kind != PlanKind::kSeqScan) return nullptr;
  if (n->table == nullptr || n->table->is_virtual) return nullptr;
  return n;
}

bool FragmentHasProjection(const PlanNode* n) {
  for (;;) {
    switch (n->kind) {
      case PlanKind::kProject:
        return true;
      case PlanKind::kFilter:
        n = n->children[0].get();
        break;
      default:
        return false;
    }
  }
}

}  // namespace

int Optimizer::SeedWorkers(double scan_rows) const {
  if (scan_rows < ctx_.parallel_min_table_rows) return 1;
  const double per = std::max(1.0, ctx_.parallel_rows_per_worker);
  const int w = static_cast<int>(std::ceil(scan_rows / per));
  return std::clamp(w, 1, ctx_.parallel_max_workers);
}

void Optimizer::MarkParallelFragments(PlanNode* root) {
  if (ctx_.parallel_max_workers <= 1 || root == nullptr) return;
  MarkParallelNode(root, /*under_limit=*/false);
}

/// Seeds parallel_workers on the topmost exchange-capable nodes. The
/// worker count is driven by the scanned tables' cardinalities — that is
/// what the dispenser dispenses, regardless of predicate selectivity.
/// `under_limit` tracks a LIMIT above us with no intervening Sort:
/// exchange packet order is nondeterministic, so parallelizing there
/// would change *which* rows a LIMIT keeps, not just their order (a Sort
/// or a group-by in between restores determinism — both emit in an order
/// independent of arrival). NL-join inner sides are never descended
/// into: they re-Open per outer row, which would relaunch a worker crew
/// each time.
void Optimizer::MarkParallelNode(PlanNode* n, bool under_limit) {
  switch (n->kind) {
    case PlanKind::kLimit:
      MarkParallelNode(n->children[0].get(), true);
      return;
    case PlanKind::kSort:
      MarkParallelNode(n->children[0].get(), false);
      return;
    case PlanKind::kNLJoin:
    case PlanKind::kIndexNLJoin:
      MarkParallelNode(n->children[0].get(), under_limit);
      return;
    case PlanKind::kHashJoin: {
      const PlanNode* outer = EligibleFragmentScan(n->children[0].get());
      const PlanNode* inner = EligibleFragmentScan(n->children[1].get());
      // alt_index_nl joins stay serial: the build-side cardinality check
      // and index-NL switchover are serial-operator machinery.
      if (!under_limit && outer != nullptr && inner != nullptr &&
          !n->alt_index_nl) {
        const double rows = std::max(
            static_cast<double>(outer->table->row_count),
            static_cast<double>(inner->table->row_count));
        const int w = SeedWorkers(rows);
        if (w > 1) {
          n->parallel_workers = w;
          return;
        }
      }
      MarkParallelNode(n->children[0].get(), under_limit);
      MarkParallelNode(n->children[1].get(), under_limit);
      return;
    }
    case PlanKind::kHashGroupBy: {
      // Parallel pre-aggregation emits in encoded-key order — the same
      // order as the serial operator — so a LIMIT above is still
      // deterministic and under_limit does not block marking.
      const PlanNode* scan = EligibleFragmentScan(n->children[0].get());
      if (scan != nullptr) {
        const int w =
            SeedWorkers(static_cast<double>(scan->table->row_count));
        if (w > 1) {
          n->parallel_workers = w;
          return;
        }
      }
      MarkParallelNode(n->children[0].get(), under_limit);
      return;
    }
    case PlanKind::kHashDistinct: {
      // Needs the fragment's projected output as the dedup key; emission
      // order differs from the serial arrival order, so not under LIMIT.
      const PlanNode* scan = EligibleFragmentScan(n->children[0].get());
      if (!under_limit && scan != nullptr &&
          FragmentHasProjection(n->children[0].get())) {
        const int w =
            SeedWorkers(static_cast<double>(scan->table->row_count));
        if (w > 1) {
          n->parallel_workers = w;
          return;
        }
      }
      MarkParallelNode(n->children[0].get(), under_limit);
      return;
    }
    default: {
      const PlanNode* scan = EligibleFragmentScan(n);
      if (scan != nullptr) {
        // This whole subtree is one fragment; either it parallelizes as a
        // unit or it stays serial — nothing below to mark separately.
        if (!under_limit) {
          const int w =
              SeedWorkers(static_cast<double>(scan->table->row_count));
          if (w > 1) n->parallel_workers = w;
        }
        return;
      }
      for (auto& c : n->children) MarkParallelNode(c.get(), under_limit);
      return;
    }
  }
}

}  // namespace hdb::optimizer
