#include "optimizer/expr.h"

#include <algorithm>
#include <cctype>

namespace hdb::optimizer {

namespace {

Value TriBool(bool b) { return Value::Boolean(b); }
Value TriNull() { return Value::Null(TypeId::kBoolean); }

bool IsTrue(const Value& v) { return !v.is_null() && v.AsBool(); }
bool IsFalse(const Value& v) { return !v.is_null() && !v.AsBool(); }

char Lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr(ExprKind::kLiteral));
  e->type_ = v.type();
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(int quantifier, int column, TypeId type,
                     std::string name) {
  auto e = ExprPtr(new Expr(ExprKind::kColumnRef));
  e->quantifier_ = quantifier;
  e->column_ = column;
  e->type_ = type;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Param(std::string name) {
  auto e = ExprPtr(new Expr(ExprKind::kParam));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kCompare));
  e->cmp_ = op;
  e->type_ = TypeId::kBoolean;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kAnd));
  e->type_ = TypeId::kBoolean;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kOr));
  e->type_ = TypeId::kBoolean;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr c) {
  auto e = ExprPtr(new Expr(ExprKind::kNot));
  e->type_ = TypeId::kBoolean;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::IsNull(ExprPtr c, bool negated) {
  auto e = ExprPtr(new Expr(ExprKind::kIsNull));
  e->type_ = TypeId::kBoolean;
  e->negated_ = negated;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::Between(ExprPtr v, ExprPtr lo, ExprPtr hi) {
  auto e = ExprPtr(new Expr(ExprKind::kBetween));
  e->type_ = TypeId::kBoolean;
  e->children_ = {std::move(v), std::move(lo), std::move(hi)};
  return e;
}

ExprPtr Expr::Like(ExprPtr v, std::string pattern) {
  auto e = ExprPtr(new Expr(ExprKind::kLike));
  e->type_ = TypeId::kBoolean;
  e->pattern_ = std::move(pattern);
  e->children_ = {std::move(v)};
  return e;
}

ExprPtr Expr::InList(ExprPtr v, std::vector<ExprPtr> list) {
  auto e = ExprPtr(new Expr(ExprKind::kInList));
  e->type_ = TypeId::kBoolean;
  e->children_.push_back(std::move(v));
  for (auto& item : list) e->children_.push_back(std::move(item));
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kArith));
  e->arith_ = op;
  e->type_ = TypeId::kDouble;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

bool Expr::LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matcher with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || Lower(pattern[p]) == Lower(text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Expr::Evaluate(const RowContext& ctx) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kParam: {
      if (ctx.params != nullptr) {
        for (const auto& [name, value] : *ctx.params) {
          if (name == name_) return value;
        }
      }
      return Status::InvalidArgument("unbound parameter :" + name_);
    }
    case ExprKind::kColumnRef: {
      if (quantifier_ < 0 ||
          quantifier_ >= static_cast<int>(ctx.rows.size()) ||
          ctx.rows[quantifier_] == nullptr) {
        return Status::Internal("column ref to unbound quantifier");
      }
      const auto& row = *ctx.rows[quantifier_];
      if (column_ < 0 || column_ >= static_cast<int>(row.size())) {
        return Status::Internal("column ref out of range");
      }
      return row[column_];
    }
    case ExprKind::kCompare: {
      HDB_ASSIGN_OR_RETURN(const Value l, children_[0]->Evaluate(ctx));
      HDB_ASSIGN_OR_RETURN(const Value r, children_[1]->Evaluate(ctx));
      if (l.is_null() || r.is_null()) return TriNull();
      const int c = l.Compare(r);
      switch (cmp_) {
        case CompareOp::kEq: return TriBool(c == 0);
        case CompareOp::kNe: return TriBool(c != 0);
        case CompareOp::kLt: return TriBool(c < 0);
        case CompareOp::kLe: return TriBool(c <= 0);
        case CompareOp::kGt: return TriBool(c > 0);
        case CompareOp::kGe: return TriBool(c >= 0);
      }
      return TriNull();
    }
    case ExprKind::kAnd: {
      HDB_ASSIGN_OR_RETURN(const Value l, children_[0]->Evaluate(ctx));
      if (IsFalse(l)) return TriBool(false);
      HDB_ASSIGN_OR_RETURN(const Value r, children_[1]->Evaluate(ctx));
      if (IsFalse(r)) return TriBool(false);
      if (l.is_null() || r.is_null()) return TriNull();
      return TriBool(true);
    }
    case ExprKind::kOr: {
      HDB_ASSIGN_OR_RETURN(const Value l, children_[0]->Evaluate(ctx));
      if (IsTrue(l)) return TriBool(true);
      HDB_ASSIGN_OR_RETURN(const Value r, children_[1]->Evaluate(ctx));
      if (IsTrue(r)) return TriBool(true);
      if (l.is_null() || r.is_null()) return TriNull();
      return TriBool(false);
    }
    case ExprKind::kNot: {
      HDB_ASSIGN_OR_RETURN(const Value v, children_[0]->Evaluate(ctx));
      if (v.is_null()) return TriNull();
      return TriBool(!v.AsBool());
    }
    case ExprKind::kIsNull: {
      HDB_ASSIGN_OR_RETURN(const Value v, children_[0]->Evaluate(ctx));
      return TriBool(negated_ ? !v.is_null() : v.is_null());
    }
    case ExprKind::kBetween: {
      HDB_ASSIGN_OR_RETURN(const Value v, children_[0]->Evaluate(ctx));
      HDB_ASSIGN_OR_RETURN(const Value lo, children_[1]->Evaluate(ctx));
      HDB_ASSIGN_OR_RETURN(const Value hi, children_[2]->Evaluate(ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return TriNull();
      return TriBool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }
    case ExprKind::kLike: {
      HDB_ASSIGN_OR_RETURN(const Value v, children_[0]->Evaluate(ctx));
      if (v.is_null()) return TriNull();
      if (v.type() != TypeId::kVarchar) {
        return Status::InvalidArgument("LIKE on non-string");
      }
      return TriBool(LikeMatch(v.AsString(), pattern_));
    }
    case ExprKind::kInList: {
      HDB_ASSIGN_OR_RETURN(const Value v, children_[0]->Evaluate(ctx));
      if (v.is_null()) return TriNull();
      bool saw_null = false;
      for (size_t i = 1; i < children_.size(); ++i) {
        HDB_ASSIGN_OR_RETURN(const Value item, children_[i]->Evaluate(ctx));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.Compare(item) == 0) return TriBool(true);
      }
      return saw_null ? TriNull() : TriBool(false);
    }
    case ExprKind::kArith: {
      HDB_ASSIGN_OR_RETURN(const Value l, children_[0]->Evaluate(ctx));
      HDB_ASSIGN_OR_RETURN(const Value r, children_[1]->Evaluate(ctx));
      if (l.is_null() || r.is_null()) return Value::Null(TypeId::kDouble);
      const bool integral =
          l.type() != TypeId::kDouble && r.type() != TypeId::kDouble &&
          l.type() != TypeId::kVarchar && r.type() != TypeId::kVarchar;
      if (integral) {
        const int64_t a = l.AsInt(), b = r.AsInt();
        switch (arith_) {
          case ArithOp::kAdd: return Value::Bigint(a + b);
          case ArithOp::kSub: return Value::Bigint(a - b);
          case ArithOp::kMul: return Value::Bigint(a * b);
          case ArithOp::kDiv:
            if (b == 0) return Status::InvalidArgument("division by zero");
            return Value::Bigint(a / b);
        }
      }
      const double a = l.AsDouble(), b = r.AsDouble();
      switch (arith_) {
        case ArithOp::kAdd: return Value::Double(a + b);
        case ArithOp::kSub: return Value::Double(a - b);
        case ArithOp::kMul: return Value::Double(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value::Double(a / b);
      }
      return TriNull();
    }
  }
  return Status::Internal("unhandled expr kind");
}

Result<bool> Expr::EvaluatesToTrue(const RowContext& ctx) const {
  HDB_ASSIGN_OR_RETURN(const Value v, Evaluate(ctx));
  return IsTrue(v);
}

void Expr::CollectQuantifiers(std::vector<bool>* mask) const {
  if (kind_ == ExprKind::kColumnRef) {
    if (quantifier_ >= 0) {
      if (static_cast<size_t>(quantifier_) >= mask->size()) {
        mask->resize(quantifier_ + 1, false);
      }
      (*mask)[quantifier_] = true;
    }
    return;
  }
  for (const ExprPtr& c : children_) c->CollectQuantifiers(mask);
}

ExprPtr Expr::BindParams(
    const ExprPtr& e,
    const std::vector<std::pair<std::string, Value>>& params) {
  if (e == nullptr) return nullptr;
  if (e->kind_ == ExprKind::kParam) {
    for (const auto& [name, value] : params) {
      if (name == e->name_) return Expr::Literal(value);
    }
    return e;
  }
  if (e->children_.empty()) return e;
  auto copy = ExprPtr(new Expr(*e));
  for (ExprPtr& c : copy->children_) c = BindParams(c, params);
  return copy;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kParam:
      return ":" + name_;
    case ExprKind::kColumnRef:
      return name_.empty() ? "q" + std::to_string(quantifier_) + ".c" +
                                 std::to_string(column_)
                           : name_;
    case ExprKind::kCompare: {
      static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return "(" + children_[0]->ToString() + " " +
             ops[static_cast<int>(cmp_)] + " " + children_[1]->ToString() +
             ")";
    }
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + children_[0]->ToString();
    case ExprKind::kIsNull:
      return children_[0]->ToString() +
             (negated_ ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kBetween:
      return children_[0]->ToString() + " BETWEEN " +
             children_[1]->ToString() + " AND " + children_[2]->ToString();
    case ExprKind::kLike:
      return children_[0]->ToString() + " LIKE '" + pattern_ + "'";
    case ExprKind::kInList: {
      std::string s = children_[0]->ToString() + " IN (";
      for (size_t i = 1; i < children_.size(); ++i) {
        if (i > 1) s += ", ";
        s += children_[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kArith: {
      static const char* ops[] = {"+", "-", "*", "/"};
      return "(" + children_[0]->ToString() + " " +
             ops[static_cast<int>(arith_)] + " " + children_[1]->ToString() +
             ")";
    }
  }
  return "?";
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->children()[0], out);
    SplitConjuncts(e->children()[1], out);
    return;
  }
  out->push_back(e);
}

}  // namespace hdb::optimizer
