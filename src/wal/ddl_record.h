#ifndef HDB_WAL_DDL_RECORD_H_
#define HDB_WAL_DDL_RECORD_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "wal/wal_record.h"

namespace hdb::wal {

// DDL barrier payloads (DESIGN.md §7). Each record carries the full
// definition *including the oid the catalog assigned*, because heap
// records address tables by oid: replay must reproduce the same oids even
// though the in-memory catalog is rebuilt from scratch on every open.
// Decoding lives in recovery.cc; the engine only encodes.

inline std::string EncodeDdlCreateTable(const catalog::TableDef& def) {
  ByteWriter w;
  w.U32(def.oid);
  w.Str(def.name);
  w.U32(static_cast<uint32_t>(def.columns.size()));
  for (const catalog::ColumnDef& c : def.columns) {
    w.Str(c.name);
    w.U8(static_cast<uint8_t>(c.type));
    w.U8(c.nullable ? 1 : 0);
  }
  return w.Take();
}

inline std::string EncodeDdlCreateIndex(const catalog::IndexDef& def) {
  ByteWriter w;
  w.U32(def.oid);
  w.Str(def.name);
  w.U32(def.table_oid);
  w.U8(def.unique ? 1 : 0);
  w.U32(static_cast<uint32_t>(def.column_indexes.size()));
  for (const int c : def.column_indexes) w.U32(static_cast<uint32_t>(c));
  return w.Take();
}

inline std::string EncodeDdlDropName(const std::string& name) {
  ByteWriter w;
  w.Str(name);
  return w.Take();
}

inline std::string EncodeDdlCreateProcedure(const catalog::ProcedureDef& def) {
  ByteWriter w;
  w.Str(def.name);
  w.U32(static_cast<uint32_t>(def.param_names.size()));
  for (const std::string& p : def.param_names) w.Str(p);
  w.U32(static_cast<uint32_t>(def.statements.size()));
  for (const std::string& s : def.statements) w.Str(s);
  return w.Take();
}

inline std::string EncodeDdlSetOption(const std::string& name,
                                      const std::string& value) {
  ByteWriter w;
  w.Str(name);
  w.Str(value);
  return w.Take();
}

inline std::string EncodeDdlForeignKey(const catalog::ForeignKey& fk) {
  ByteWriter w;
  w.U32(fk.table_oid);
  w.U32(static_cast<uint32_t>(fk.column_index));
  w.U32(fk.ref_table_oid);
  w.U32(static_cast<uint32_t>(fk.ref_column_index));
  return w.Take();
}

}  // namespace hdb::wal

#endif  // HDB_WAL_DDL_RECORD_H_
