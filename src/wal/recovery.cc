#include "wal/recovery.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "table/heap_page.h"
#include "wal/ddl_record.h"

namespace hdb::wal {

namespace {

bool IsHeapOpType(WalRecordType t) {
  return t == WalRecordType::kHeapInsert || t == WalRecordType::kHeapDelete ||
         t == WalRecordType::kHeapUpdate ||
         t == WalRecordType::kHeapAppendPage;
}

// Applies a slot-level heap record to a raw page image. The caller has
// already checked the page-LSN gate. Defensive about slots beyond
// slot_count (possible on a zeroed torn page mid-rebuild): the directory
// is extended rather than trusted.
void ApplySlotOp(const WalRecord& rec, const HeapOp& op, char* page) {
  table::HeapPageHeader header = table::ReadHeapHeader(page);
  switch (rec.type) {
    case WalRecordType::kHeapInsert: {
      std::memcpy(page + op.offset, op.after.data(), op.after.size());
      table::WriteHeapSlot(
          page, op.slot,
          table::HeapSlot{op.offset, static_cast<uint16_t>(op.after.size())});
      if (op.slot >= header.slot_count) {
        header.slot_count = static_cast<uint16_t>(op.slot + 1);
      }
      if (op.offset < header.free_end) header.free_end = op.offset;
      break;
    }
    case WalRecordType::kHeapDelete: {
      table::WriteHeapSlot(page, op.slot, table::HeapSlot{op.offset, 0});
      if (op.slot >= header.slot_count) {
        header.slot_count = static_cast<uint16_t>(op.slot + 1);
      }
      if (op.offset < header.free_end) header.free_end = op.offset;
      break;
    }
    case WalRecordType::kHeapUpdate: {
      std::memcpy(page + op.offset, op.after.data(), op.after.size());
      table::WriteHeapSlot(
          page, op.slot,
          table::HeapSlot{op.offset, static_cast<uint16_t>(op.after.size())});
      if (op.slot >= header.slot_count) {
        header.slot_count = static_cast<uint16_t>(op.slot + 1);
      }
      break;
    }
    default:
      return;
  }
  header.lsn = rec.lsn;
  table::WriteHeapHeader(page, header);
}

// The exact page-level inverse of a loser's record, to be appended as a
// CLR and applied through the same redo machinery.
bool InvertHeapOp(const WalRecord& rec, const HeapOp& op,
                  WalRecordType* inv_type, std::string* inv_payload) {
  switch (rec.type) {
    case WalRecordType::kHeapInsert:
      *inv_type = WalRecordType::kHeapDelete;
      *inv_payload =
          EncodeHeapDelete(op.table_oid, op.page, op.slot, op.offset, op.after);
      return true;
    case WalRecordType::kHeapDelete:
      *inv_type = WalRecordType::kHeapInsert;
      *inv_payload =
          EncodeHeapInsert(op.table_oid, op.page, op.slot, op.offset,
                           op.before);
      return true;
    case WalRecordType::kHeapUpdate:
      *inv_type = WalRecordType::kHeapUpdate;
      *inv_payload = EncodeHeapUpdate(op.table_oid, op.page, op.slot,
                                      op.offset, op.after, op.before);
      return true;
    default:
      // kHeapAppendPage has no inverse: the empty page stays linked, which
      // scans tolerate and later inserts reuse.
      return false;
  }
}

}  // namespace

Recovery::Recovery(storage::DiskManager* disk, WalManager* wal,
                   catalog::Catalog* catalog)
    : disk_(disk), wal_(wal), catalog_(catalog) {}

Result<char*> Recovery::PageFor(storage::PageId page) {
  auto it = pages_.find(page);
  if (it != pages_.end()) return it->second.data();
  disk_->EnsureAllocated(storage::SpaceId::kMain, page);
  std::vector<char> buf(disk_->page_bytes());
  bool torn = false;
  HDB_RETURN_IF_ERROR(disk_->ReadPageAllowTorn(storage::SpaceId::kMain, page,
                                               buf.data(), &torn));
  if (torn) {
    // The in-flight write shredded the old image too; rebuild the page
    // entirely from the log (its zeroed LSN makes every record re-apply).
    std::memset(buf.data(), 0, buf.size());
    stats_.torn_pages++;
    stats_.full_replay = true;
  }
  return pages_.emplace(page, std::move(buf)).first->second.data();
}

Status Recovery::ReplayCatalog(const std::vector<WalRecord>& records) {
  for (const WalRecord& rec : records) {
    ByteReader r(rec.payload);
    switch (rec.type) {
      case WalRecordType::kDdlCreateTable: {
        const uint32_t oid = r.U32();
        const std::string name(r.Str());
        const uint32_t ncols = r.U32();
        std::vector<catalog::ColumnDef> cols;
        for (uint32_t i = 0; r.ok() && i < ncols; ++i) {
          catalog::ColumnDef c;
          c.name = std::string(r.Str());
          c.type = static_cast<TypeId>(r.U8());
          c.nullable = r.U8() != 0;
          cols.push_back(std::move(c));
        }
        if (!r.ok()) return Status::Internal("bad DDL create-table record");
        HDB_RETURN_IF_ERROR(
            catalog_->ReplayCreateTable(oid, name, std::move(cols)).status());
        break;
      }
      case WalRecordType::kDdlCreateIndex: {
        const uint32_t oid = r.U32();
        const std::string name(r.Str());
        const uint32_t table_oid = r.U32();
        const bool unique = r.U8() != 0;
        const uint32_t ncols = r.U32();
        std::vector<int> cols;
        for (uint32_t i = 0; r.ok() && i < ncols; ++i) {
          cols.push_back(static_cast<int>(r.U32()));
        }
        if (!r.ok()) return Status::Internal("bad DDL create-index record");
        HDB_RETURN_IF_ERROR(catalog_
                                ->ReplayCreateIndex(oid, name, table_oid,
                                                    std::move(cols), unique)
                                .status());
        break;
      }
      case WalRecordType::kDdlDropTable: {
        const std::string name(r.Str());
        if (!r.ok()) return Status::Internal("bad DDL drop-table record");
        // Replay is idempotent: the table may already be gone.
        IgnoreError(catalog_->DropTable(name));
        break;
      }
      case WalRecordType::kDdlDropIndex: {
        const std::string name(r.Str());
        if (!r.ok()) return Status::Internal("bad DDL drop-index record");
        // Replay is idempotent: the index may already be gone.
        IgnoreError(catalog_->DropIndex(name));
        break;
      }
      case WalRecordType::kDdlCreateProcedure: {
        catalog::ProcedureDef def;
        def.name = std::string(r.Str());
        const uint32_t nparams = r.U32();
        for (uint32_t i = 0; r.ok() && i < nparams; ++i) {
          def.param_names.emplace_back(r.Str());
        }
        const uint32_t nstmts = r.U32();
        for (uint32_t i = 0; r.ok() && i < nstmts; ++i) {
          def.statements.emplace_back(r.Str());
        }
        if (!r.ok()) return Status::Internal("bad DDL create-procedure record");
        // Replay is idempotent: the procedure may already exist.
        IgnoreError(catalog_->CreateProcedure(std::move(def)));
        break;
      }
      case WalRecordType::kDdlSetOption: {
        const std::string name(r.Str());
        const std::string value(r.Str());
        if (!r.ok()) return Status::Internal("bad DDL set-option record");
        catalog_->SetOption(name, value);
        break;
      }
      case WalRecordType::kDdlForeignKey: {
        catalog::ForeignKey fk;
        fk.table_oid = r.U32();
        fk.column_index = static_cast<int>(r.U32());
        fk.ref_table_oid = r.U32();
        fk.ref_column_index = static_cast<int>(r.U32());
        if (!r.ok()) return Status::Internal("bad DDL foreign-key record");
        // Replay is idempotent: the constraint may already exist.
        IgnoreError(catalog_->AddForeignKey(fk));
        break;
      }
      case WalRecordType::kHeapAppendPage: {
        // Heap-chain bookkeeping is catalog-level (the TableDef is rebuilt
        // from scratch too) and applies to winners and losers alike: undo
        // leaves appended pages linked.
        HeapOp op;
        if (!DecodeHeapOp(rec, &op)) {
          return Status::Internal("bad heap append-page record");
        }
        auto def = catalog_->GetTableByOid(op.table_oid);
        if (!def.ok()) break;  // table dropped later in the log
        if (op.prev_page == storage::kInvalidPageId) {
          (*def)->first_page = op.page;
        }
        (*def)->last_page = op.page;
        (*def)->page_count++;
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

Status Recovery::RedoPass(const std::vector<WalRecord>& records,
                          size_t from_index) {
  for (size_t i = from_index; i < records.size(); ++i) {
    const WalRecord& rec = records[i];
    if (!IsHeapOpType(rec.type)) continue;
    stats_.redo_bytes += kWalHeaderBytes + rec.payload.size();
    HeapOp op;
    if (!DecodeHeapOp(rec, &op)) {
      return Status::Internal("bad heap record in redo");
    }
    if (rec.type == WalRecordType::kHeapAppendPage) {
      HDB_ASSIGN_OR_RETURN(char* fresh, PageFor(op.page));
      if (storage::PageLsn(fresh) < rec.lsn) {
        table::InitHeapPage(fresh, disk_->page_bytes());
        storage::SetPageLsn(fresh, rec.lsn);
        stats_.redo_records++;
      } else {
        stats_.redo_skipped++;
      }
      if (op.prev_page != storage::kInvalidPageId) {
        HDB_ASSIGN_OR_RETURN(char* prev, PageFor(op.prev_page));
        if (storage::PageLsn(prev) < rec.lsn) {
          table::HeapPageHeader ph = table::ReadHeapHeader(prev);
          ph.next_page = op.page;
          ph.lsn = rec.lsn;
          table::WriteHeapHeader(prev, ph);
        }
      }
      continue;
    }
    HDB_ASSIGN_OR_RETURN(char* page, PageFor(op.page));
    if (storage::PageLsn(page) >= rec.lsn) {
      stats_.redo_skipped++;
      continue;
    }
    ApplySlotOp(rec, op, page);
    stats_.redo_records++;
  }
  return Status::OK();
}

Status Recovery::UndoPass(const std::vector<WalRecord>& records) {
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const WalRecord& rec = *it;
    if (rec.txn_id == 0 || losers_.count(rec.txn_id) == 0) continue;
    if (!IsHeapOpType(rec.type)) continue;
    HeapOp op;
    if (!DecodeHeapOp(rec, &op)) {
      return Status::Internal("bad heap record in undo");
    }
    WalRecordType inv_type;
    std::string inv_payload;
    if (!InvertHeapOp(rec, op, &inv_type, &inv_payload)) continue;
    HDB_ASSIGN_OR_RETURN(
        const storage::Lsn clr_lsn,
        wal_->Append(inv_type, rec.txn_id, inv_payload, kWalFlagClr));
    WalRecord clr;
    clr.lsn = clr_lsn;
    clr.txn_id = rec.txn_id;
    clr.type = inv_type;
    clr.flags = kWalFlagClr;
    clr.payload = std::move(inv_payload);
    HeapOp clr_op;
    if (!DecodeHeapOp(clr, &clr_op)) {
      return Status::Internal("bad CLR payload");
    }
    HDB_ASSIGN_OR_RETURN(char* page, PageFor(clr_op.page));
    ApplySlotOp(clr, clr_op, page);  // CLR LSN > every page LSN: applies
    stats_.undo_records++;
  }
  // Close every loser so a later analysis pass sees a terminated txn.
  for (const uint64_t txn : losers_) {
    HDB_RETURN_IF_ERROR(
        wal_->Append(WalRecordType::kAbort, txn, std::string()).status());
  }
  return Status::OK();
}

Result<RecoveryStats> Recovery::Run() {
  HDB_ASSIGN_OR_RETURN(WalManager::ScanResult scan, wal_->ScanLog());
  stats_.scanned_records = scan.records.size();
  stats_.log_found = !scan.records.empty();
  stats_.max_lsn = scan.max_lsn;
  stats_.max_txn_id = scan.max_txn_id;
  HDB_RETURN_IF_ERROR(
      wal_->ResumeAt(scan.tail_page, scan.tail_offset, scan.max_lsn + 1));
  if (scan.records.empty()) return stats_;

  // --- analysis ----------------------------------------------------------
  std::unordered_set<uint64_t> committed;
  storage::Lsn redo_start = 1;
  for (const WalRecord& rec : scan.records) {
    if (rec.txn_id != 0) {
      if (rec.type == WalRecordType::kCommit) {
        committed.insert(rec.txn_id);
        losers_.erase(rec.txn_id);
      } else if (rec.type == WalRecordType::kAbort) {
        losers_.erase(rec.txn_id);
      } else if (committed.count(rec.txn_id) == 0) {
        losers_.insert(rec.txn_id);
      }
    }
    if (rec.type == WalRecordType::kCheckpointEnd) {
      storage::Lsn begin_lsn = storage::kNullLsn;
      storage::Lsn min_rec_lsn = storage::kNullLsn;
      if (DecodeCheckpointEnd(rec, &begin_lsn, &min_rec_lsn) &&
          begin_lsn != storage::kNullLsn) {
        redo_start = min_rec_lsn != storage::kNullLsn
                         ? std::min(begin_lsn, min_rec_lsn)
                         : begin_lsn;
      }
    }
  }
  stats_.committed_txns = committed.size();
  stats_.loser_txns = losers_.size();
  stats_.redo_start_lsn = redo_start;

  // --- catalog / heap-chain replay (whole log) ---------------------------
  HDB_RETURN_IF_ERROR(ReplayCatalog(scan.records));

  // --- redo --------------------------------------------------------------
  // LSNs are strictly sequential from 1, so the record with lsn L sits at
  // index L - first_lsn. ScanLog always starts at the log's first page, so
  // first_lsn is records[0].lsn (== 1 unless the log head predates the
  // scan, which never happens here).
  const storage::Lsn first_lsn = scan.records.front().lsn;
  const size_t redo_index =
      redo_start > first_lsn ? static_cast<size_t>(redo_start - first_lsn) : 0;
  HDB_RETURN_IF_ERROR(RedoPass(scan.records, redo_index));
  if (stats_.full_replay && redo_index > 0) {
    // A torn page was zeroed: rebuild it from the full history. Untorn
    // pages are LSN-gated, so the second pass only re-applies what the
    // zeroing erased.
    HDB_RETURN_IF_ERROR(RedoPass(scan.records, 0));
  }

  // --- undo --------------------------------------------------------------
  HDB_RETURN_IF_ERROR(UndoPass(scan.records));

  // WAL-before-data, by hand: CLRs and abort markers become durable before
  // any repaired page image is written back.
  HDB_RETURN_IF_ERROR(wal_->EnsureDurable(wal_->appended_lsn()));
  for (auto& [page_id, buf] : pages_) {
    HDB_RETURN_IF_ERROR(
        disk_->WritePage(storage::SpaceId::kMain, page_id, buf.data()));
  }
  HDB_RETURN_IF_ERROR(disk_->Sync());
  return stats_;
}

}  // namespace hdb::wal
