#include "wal/wal_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace hdb::wal {

namespace {

// How long the flusher lingers after waking so concurrent commits join the
// same fsync. The virtual-clock fsync is instantaneous in real time, so
// without a window no batch would ever form; 100µs of real time is far
// cheaper than the device fsync it amortizes.
constexpr auto kGroupCommitWindow = std::chrono::microseconds(100);

thread_local WalManager::TxnContext tls_txn;

}  // namespace

WalManager::TxnScope::TxnScope(uint64_t txn_id, bool clr) : prev_(tls_txn) {
  tls_txn = TxnContext{txn_id, clr};
}

WalManager::TxnScope::~TxnScope() { tls_txn = prev_; }

WalManager::TxnContext WalManager::CurrentTxn() { return tls_txn; }

WalManager::WalManager(storage::DiskManager* disk, WalOptions options)
    : disk_(disk), options_(options) {
  page_buf_.assign(disk_->page_bytes(), 0);
}

WalManager::~WalManager() { Shutdown(); }

Status WalManager::AdvancePageLocked() {
  const storage::PageId next =
      cur_page_ == storage::kInvalidPageId ? 0 : cur_page_ + 1;
  // Log pages are strictly sequential; EnsureAllocated (not AllocatePage)
  // keeps the id stream gapless even when reopening over media whose page
  // count already extends past the recovered tail.
  disk_->EnsureAllocated(storage::SpaceId::kLog, next);
  cur_page_ = next;
  cur_offset_ = 0;
  tail_dirty_ = false;
  std::memset(page_buf_.data(), 0, page_buf_.size());
  return Status::OK();
}

Status WalManager::WriteTailPageLocked() {
  if (cur_page_ == storage::kInvalidPageId || !tail_dirty_) {
    return Status::OK();
  }
  HDB_RETURN_IF_ERROR(
      disk_->WritePage(storage::SpaceId::kLog, cur_page_, page_buf_.data()));
  tail_dirty_ = false;
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void WalManager::InflightLsn::Release() {
  if (wal_ == nullptr) return;
  {
    LockGuard lock(wal_->mu_);
    const auto it = wal_->inflight_lsns_.find(lsn_);
    if (it != wal_->inflight_lsns_.end()) wal_->inflight_lsns_.erase(it);
  }
  wal_ = nullptr;
  lsn_ = storage::kNullLsn;
}

storage::Lsn WalManager::MinInflightLsn() const {
  LockGuard lock(mu_);
  return inflight_lsns_.empty() ? storage::kNullLsn : *inflight_lsns_.begin();
}

Result<storage::Lsn> WalManager::Append(WalRecordType type, uint64_t txn_id,
                                        std::string payload, uint8_t flags,
                                        InflightLsn* inflight) {
  if (!options_.enabled) return storage::kNullLsn;
  const uint32_t need = kWalHeaderBytes + static_cast<uint32_t>(payload.size());
  if (need > disk_->page_bytes() || payload.size() > 0xffff) {
    return Status::InvalidArgument("wal record larger than a log page");
  }

  LockGuard lock(mu_);
  if (cur_page_ == storage::kInvalidPageId ||
      cur_offset_ + need > disk_->page_bytes()) {
    HDB_RETURN_IF_ERROR(WriteTailPageLocked());
    HDB_RETURN_IF_ERROR(AdvancePageLocked());
  }
  const storage::Lsn lsn = next_lsn_++;

  char* base = page_buf_.data() + cur_offset_;
  const auto len = static_cast<uint16_t>(payload.size());
  const auto type_byte = static_cast<uint8_t>(type);
  std::memcpy(base + 4, &len, 2);
  std::memcpy(base + 6, &type_byte, 1);
  std::memcpy(base + 7, &flags, 1);
  std::memcpy(base + 8, &epoch_, 4);
  std::memcpy(base + 12, &lsn, 8);
  std::memcpy(base + 20, &txn_id, 8);
  std::memcpy(base + kWalHeaderBytes, payload.data(), payload.size());
  const uint32_t crc = Crc32(base + 4, need - 4);
  std::memcpy(base, &crc, 4);

  cur_offset_ += need;
  tail_dirty_ = true;
  appended_lsn_.store(lsn, std::memory_order_release);
  if (inflight != nullptr && inflight->wal_ == nullptr) {
    // Registered under mu_, i.e. strictly before any later-LSN append —
    // including a checkpoint's kCheckpointBegin. See InflightLsn.
    inflight->wal_ = this;
    inflight->lsn_ = lsn;
    inflight_lsns_.insert(lsn);
  }

  appends_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(need, std::memory_order_relaxed);
  bytes_since_checkpoint_.fetch_add(need, std::memory_order_relaxed);
  if ((flags & kWalFlagClr) != 0) {
    clr_records_.fetch_add(1, std::memory_order_relaxed);
  }
  if (m_appends_ != nullptr) m_appends_->Add(1);
  if (m_bytes_ != nullptr) m_bytes_->Add(need);
  return lsn;
}

Status WalManager::EnsureDurable(storage::Lsn lsn) {
  if (!options_.enabled || lsn == storage::kNullLsn) return Status::OK();
  if (disk_->media() == nullptr) return Status::OK();
  if (durable_lsn() >= lsn) return Status::OK();

  // Fast paths are done: this thread is about to pay a real flush (or wait
  // for one in flight). The flusher thread has no statement trace; a
  // statement thread arriving here (direct commit, or the buffer pool's
  // WAL-before-data barrier) records the wait against itself.
  obs::ScopedWait durable_wait(obs::WaitCause::kWalDurable, lsn);
  LockGuard flush_lock(flush_mu_);
  if (durable_lsn() >= lsn) return Status::OK();
  storage::Lsn target;
  {
    LockGuard lock(mu_);
    target = appended_lsn_.load(std::memory_order_relaxed);
    HDB_RETURN_IF_ERROR(WriteTailPageLocked());
  }
  HDB_RETURN_IF_ERROR(disk_->Sync());
  syncs_.fetch_add(1, std::memory_order_relaxed);
  if (m_syncs_ != nullptr) m_syncs_->Add(1);
  // `target` may undercount records that raced in after the snapshot and
  // reached the media inside this sync — undercounting durability is the
  // safe direction.
  storage::Lsn cur = durable_lsn_.load(std::memory_order_relaxed);
  while (cur < target && !durable_lsn_.compare_exchange_weak(
                             cur, target, std::memory_order_release)) {
  }
  return durable_lsn() >= lsn
             ? Status::OK()
             : Status::Internal("wal flush did not reach requested lsn");
}

Status WalManager::WaitDurable(storage::Lsn lsn) {
  if (!options_.enabled || lsn == storage::kNullLsn) return Status::OK();
  if (disk_->media() == nullptr) return Status::OK();
  if (!options_.group_commit) return EnsureDurable(lsn);

  UniqueLock gl(gc_mu_);
  if (!flusher_running_) {
    gl.unlock();
    return EnsureDurable(lsn);
  }
  if (durable_lsn() >= lsn) return Status::OK();
  if (!gc_error_.ok()) return gc_error_;
  obs::ScopedWait durable_wait(obs::WaitCause::kWalDurable, lsn);
  gc_target_ = std::max(gc_target_, lsn);
  gc_work_cv_.notify_one();
  // Explicit wait loop rather than a predicate lambda: the predicate reads
  // gc_mu_-guarded state, and the analysis checks a lambda as a separate
  // (lock-free) function — the loop keeps the guarded reads in this scope,
  // where gl visibly holds gc_mu_.
  while (!(durable_lsn() >= lsn || !gc_error_.ok() || stop_flusher_)) {
    gc_done_cv_.wait(gl);
  }
  if (durable_lsn() >= lsn) return Status::OK();
  if (!gc_error_.ok()) return gc_error_;
  return Status::Aborted("wal flusher stopped before commit became durable");
}

void WalManager::StartFlusher() {
  if (!options_.enabled || !options_.group_commit) return;
  LockGuard gl(gc_mu_);
  if (flusher_running_) return;
  stop_flusher_ = false;
  flusher_running_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void WalManager::FlusherLoop() {
  UniqueLock gl(gc_mu_);
  while (true) {
    // Explicit wait loop (see WaitDurable): keeps the gc_mu_-guarded reads
    // in a scope where the analysis can see the lock held.
    while (!(stop_flusher_ || gc_target_ > durable_lsn())) {
      gc_work_cv_.wait(gl);
    }
    if (stop_flusher_) break;
    gl.unlock();
    // Linger so commits arriving "while the fsync is in flight" join this
    // batch rather than paying their own.
    std::this_thread::sleep_for(kGroupCommitWindow);
    const storage::Lsn target = appended_lsn();
    const Status st = EnsureDurable(target);
    gl.lock();
    group_batches_.fetch_add(1, std::memory_order_relaxed);
    if (m_batches_ != nullptr) m_batches_->Add(1);
    if (!st.ok()) {
      if (gc_error_.ok()) gc_error_ = st;
      gc_target_ = durable_lsn();  // don't spin on a dead media
    }
    gc_done_cv_.notify_all();
  }
  gc_done_cv_.notify_all();
}

void WalManager::Shutdown() {
  {
    LockGuard gl(gc_mu_);
    stop_flusher_ = true;
    gc_work_cv_.notify_all();
    gc_done_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  {
    LockGuard gl(gc_mu_);
    flusher_running_ = false;
  }
  // Best-effort tail flush on clean shutdown; a crashed media just fails.
  if (options_.enabled && disk_->media() != nullptr) {
    IgnoreError(EnsureDurable(appended_lsn()));
  }
}

Result<WalManager::ScanResult> WalManager::ScanLog() {
  ScanResult res;
  if (!options_.enabled || disk_->media() == nullptr) return res;
  const uint64_t npages = disk_->NumPages(storage::SpaceId::kLog);
  const uint32_t page_bytes = disk_->page_bytes();
  std::vector<char> buf(page_bytes);
  storage::Lsn last_lsn = storage::kNullLsn;
  uint32_t last_epoch = 0;

  for (uint64_t page = 0; page < npages; ++page) {
    bool torn = false;
    HDB_RETURN_IF_ERROR(disk_->ReadPageAllowTorn(
        storage::SpaceId::kLog, static_cast<storage::PageId>(page), buf.data(),
        &torn));
    // A torn page is still parsed: record CRCs identify the valid prefix
    // (tail rewrites only append, so previously synced records are
    // byte-identical in both the old and new sector mix).
    uint32_t off = 0;
    bool terminated = false;
    const size_t records_before_page = res.records.size();
    while (off + kWalHeaderBytes <= page_bytes) {
      const char* base = buf.data() + off;
      uint32_t crc;
      uint16_t len;
      uint8_t type_byte, flags;
      uint32_t epoch;
      storage::Lsn lsn;
      uint64_t txn_id;
      std::memcpy(&crc, base, 4);
      std::memcpy(&len, base + 4, 2);
      std::memcpy(&type_byte, base + 6, 1);
      std::memcpy(&flags, base + 7, 1);
      std::memcpy(&epoch, base + 8, 4);
      std::memcpy(&lsn, base + 12, 8);
      std::memcpy(&txn_id, base + 20, 8);
      if (type_byte == 0) {
        terminated = true;
        break;
      }
      const uint32_t need = kWalHeaderBytes + len;
      if (off + need > page_bytes ||
          Crc32(base + 4, need - 4) != crc ||
          lsn != last_lsn + 1 || epoch < last_epoch) {
        terminated = true;
        break;
      }
      WalRecord rec;
      rec.lsn = lsn;
      rec.txn_id = txn_id;
      rec.epoch = epoch;
      rec.type = static_cast<WalRecordType>(type_byte);
      rec.flags = flags;
      rec.payload.assign(base + kWalHeaderBytes, len);
      res.records.push_back(std::move(rec));
      last_lsn = lsn;
      last_epoch = epoch;
      res.max_txn_id = std::max(res.max_txn_id, txn_id);
      off += need;
    }
    // A page that yielded nothing is the end of the log (or, past page 0,
    // an orphan from a dropped batch): the tail stays on the previous
    // page. A page that yielded records becomes the new tail — even if it
    // ends in a terminator, because the writer zero-fills the remainder of
    // a page whenever the next record does not fit and continues on the
    // following page. The next iteration peeks at that page; the CRC +
    // LSN-continuity + epoch checks above accept it only if it really
    // chains, so stale orphan pages beyond the true end still terminate
    // the scan here.
    if (terminated && res.records.size() == records_before_page && page > 0) {
      break;
    }
    res.tail_page = static_cast<storage::PageId>(page);
    res.tail_offset = off;
  }
  res.max_lsn = last_lsn;
  {
    // Recovery runs single-threaded, but max_epoch_seen_ is writer state
    // under mu_ (ResumeAt consumes it there); publish it under the lock so
    // the handoff does not depend on the single-threaded assumption.
    LockGuard lock(mu_);
    max_epoch_seen_ = last_epoch;
  }
  return res;
}

Status WalManager::ResumeAt(storage::PageId tail_page, uint32_t tail_offset,
                            storage::Lsn next_lsn) {
  LockGuard lock(mu_);
  next_lsn_ = next_lsn;
  appended_lsn_.store(next_lsn - 1, std::memory_order_release);
  durable_lsn_.store(storage::kNullLsn, std::memory_order_release);
  epoch_ = max_epoch_seen_ + 1;
  if (tail_page == storage::kInvalidPageId) {
    cur_page_ = storage::kInvalidPageId;
    cur_offset_ = 0;
    tail_dirty_ = false;
    return Status::OK();
  }
  bool torn = false;
  HDB_RETURN_IF_ERROR(disk_->ReadPageAllowTorn(storage::SpaceId::kLog,
                                               tail_page, page_buf_.data(),
                                               &torn));
  // Scrub everything past the valid prefix so garbage (or a torn mix)
  // never reappears behind freshly appended records.
  if (tail_offset < page_buf_.size()) {
    std::memset(page_buf_.data() + tail_offset, 0,
                page_buf_.size() - tail_offset);
  }
  cur_page_ = tail_page;
  cur_offset_ = tail_offset;
  tail_dirty_ = true;  // the scrubbed tail must reach the media again
  return Status::OK();
}

void WalManager::NoteCheckpointBegin(storage::Lsn begin_lsn) {
  last_checkpoint_begin_.store(begin_lsn, std::memory_order_relaxed);
  bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
}

WalStats WalManager::stats() const {
  WalStats s;
  s.appends = appends_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.syncs = syncs_.load(std::memory_order_relaxed);
  s.group_batches = group_batches_.load(std::memory_order_relaxed);
  s.clr_records = clr_records_.load(std::memory_order_relaxed);
  s.appended_lsn = appended_lsn();
  s.durable_lsn = durable_lsn();
  s.bytes_since_checkpoint = bytes_since_checkpoint();
  s.last_checkpoint_begin = last_checkpoint_begin();
  return s;
}

void WalManager::AttachTelemetry(obs::MetricsRegistry* registry) {
  m_appends_ = registry->RegisterCounter(obs::kWalAppends);
  m_bytes_ = registry->RegisterCounter(obs::kWalBytes);
  m_syncs_ = registry->RegisterCounter(obs::kWalFsyncs);
  m_batches_ = registry->RegisterCounter(obs::kWalGroupCommitBatches);
  registry->RegisterCallback(obs::kWalDurableLsn, [this] {
    return static_cast<double>(durable_lsn());
  });
  registry->RegisterCallback(obs::kWalAppendedLsn, [this] {
    return static_cast<double>(appended_lsn());
  });
  registry->RegisterCallback(obs::kWalBytesSinceCheckpoint, [this] {
    return static_cast<double>(bytes_since_checkpoint());
  });
}

}  // namespace hdb::wal
