#include "wal/checkpoint_governor.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "wal/wal_record.h"

namespace hdb::wal {

namespace {

// EMA weight for the measured-cost estimates. A structural constant (like
// the pool governor's damping factor), not a tuning knob: it only controls
// how fast the estimates forget old media behavior.
constexpr double kEmaAlpha = 0.5;

// Eviction-latency guard: checkpoint when more than this fraction of the
// pool is dirty, independent of the cost balance.
constexpr double kDirtyRatioGuard = 0.5;

}  // namespace

CheckpointGovernor::CheckpointGovernor(WalManager* wal,
                                       storage::BufferPool* pool,
                                       os::VirtualClock* clock)
    : wal_(wal), pool_(pool), clock_(clock) {}

uint64_t CheckpointGovernor::EstimatedCheckpointMicrosLocked() const {
  const storage::BufferPoolStats ps = pool_->stats();
  return static_cast<uint64_t>(ps.dirty_frames * flush_micros_per_page_ +
                               sync_micros_);
}

bool CheckpointGovernor::MaybeCheckpoint() {
  if (!wal_->enabled()) return false;
  const uint64_t log_bytes = wal_->bytes_since_checkpoint();
  if (log_bytes == 0) return false;

  // Fast pre-check without the mutex: the target is maintained as the
  // break-even log size of the *last* decision, so most calls return here.
  if (log_bytes < target_log_bytes_.load(std::memory_order_relaxed)) {
    const storage::BufferPoolStats ps = pool_->stats();
    const double dirty_ratio =
        ps.current_frames == 0
            ? 0.0
            : static_cast<double>(ps.dirty_frames) / ps.current_frames;
    if (dirty_ratio <= kDirtyRatioGuard) return false;
  }

  if (!mu_.try_lock()) return false;  // a checkpoint is already running
  UniqueLock lock(mu_, std::adopt_lock);

  // Re-derive the balance with the measured estimates under the lock.
  const uint64_t est_ckpt = EstimatedCheckpointMicrosLocked();
  const double est_redo = log_bytes * redo_micros_per_byte_;
  const storage::BufferPoolStats ps = pool_->stats();
  const double dirty_ratio =
      ps.current_frames == 0
          ? 0.0
          : static_cast<double>(ps.dirty_frames) / ps.current_frames;
  const bool cost_fires = est_redo >= static_cast<double>(est_ckpt);
  const bool dirty_fires = dirty_ratio > kDirtyRatioGuard;
  if (!cost_fires && !dirty_fires) {
    // Remember the break-even point so the lock-free pre-check stays
    // accurate as the estimates move.
    target_log_bytes_.store(
        static_cast<uint64_t>(est_ckpt / std::max(1e-9, redo_micros_per_byte_)),
        std::memory_order_relaxed);
    return false;
  }
  const Status st =
      RunCheckpointLocked(dirty_fires && !cost_fires ? "dirty_ratio"
                                                     : "redo_bound");
  return st.ok();
}

Status CheckpointGovernor::ForceCheckpoint(const char* reason) {
  if (!wal_->enabled()) return Status::OK();
  LockGuard lock(mu_);
  return RunCheckpointLocked(reason);
}

Status CheckpointGovernor::RunCheckpointLocked(const char* reason) {
  const uint64_t log_bytes_before = wal_->bytes_since_checkpoint();
  const storage::BufferPoolStats before = pool_->stats();
  const int64_t t0 = clock_ != nullptr ? clock_->NowMicros() : 0;

  // Fuzzy checkpoint protocol: begin record durable first, then flush
  // whatever is flushable (pinned frames are skipped — their min recLSN
  // goes into the end record), make the data pages themselves durable, and
  // only then declare the checkpoint complete. A crash anywhere in between
  // leaves the previous completed checkpoint governing redo.
  HDB_ASSIGN_OR_RETURN(
      const storage::Lsn begin_lsn,
      wal_->Append(WalRecordType::kCheckpointBegin, 0, std::string()));
  HDB_RETURN_IF_ERROR(wal_->EnsureDurable(begin_lsn));
  HDB_RETURN_IF_ERROR(pool_->FlushAll());
  HDB_RETURN_IF_ERROR(pool_->disk()->Sync());
  // Min recLSN = min over (a) dirty frames and (b) in-flight mutations
  // that appended their record but have not yet published it to a frame.
  // Read (b) first: a mutator publishes before it unregisters, so this
  // order can only over-cover. Any mutation logged before our begin record
  // was registered before it too (both happen under the WAL append mutex),
  // so it is visible through one of the two reads — without (b), a
  // checkpoint racing that window would set redo_start past a committed
  // update whose page never reached the media.
  const storage::Lsn inflight_lsn = wal_->MinInflightLsn();
  storage::Lsn min_rec_lsn = pool_->MinDirtyLsn();
  if (inflight_lsn != storage::kNullLsn &&
      (min_rec_lsn == storage::kNullLsn || inflight_lsn < min_rec_lsn)) {
    min_rec_lsn = inflight_lsn;
  }
  HDB_ASSIGN_OR_RETURN(
      const storage::Lsn end_lsn,
      wal_->Append(WalRecordType::kCheckpointEnd, 0,
                   EncodeCheckpointEnd(begin_lsn, min_rec_lsn)));
  HDB_RETURN_IF_ERROR(wal_->EnsureDurable(end_lsn));
  wal_->NoteCheckpointBegin(begin_lsn);

  const int64_t t1 = clock_ != nullptr ? clock_->NowMicros() : 0;
  const uint64_t micros = static_cast<uint64_t>(std::max<int64_t>(0, t1 - t0));
  const storage::BufferPoolStats after = pool_->stats();
  const uint64_t flushed =
      before.dirty_frames > after.dirty_frames
          ? before.dirty_frames - after.dirty_frames
          : 0;

  // Feed the measurements back into the cost model.
  if (flushed > 0) {
    flush_micros_per_page_ =
        (1 - kEmaAlpha) * flush_micros_per_page_ +
        kEmaAlpha * (static_cast<double>(micros) / flushed);
  }
  if (log_bytes_before > 0) {
    // Replaying a byte of log costs roughly what flushing the page work it
    // generated cost: the redo pass re-reads the log and re-issues the
    // same page writes the checkpoint just performed.
    redo_micros_per_byte_ =
        (1 - kEmaAlpha) * redo_micros_per_byte_ +
        kEmaAlpha * (static_cast<double>(micros) / log_bytes_before);
  }
  const uint64_t target = static_cast<uint64_t>(
      EstimatedCheckpointMicrosLocked() /
      std::max(1e-9, redo_micros_per_byte_));
  target_log_bytes_.store(std::max<uint64_t>(1, target),
                          std::memory_order_relaxed);

  stats_.checkpoints++;
  stats_.pages_flushed += flushed;
  stats_.micros += micros;
  stats_.target_log_bytes = target_log_bytes_.load(std::memory_order_relaxed);
  stats_.last_begin_lsn = begin_lsn;
  stats_.last_end_lsn = end_lsn;

  if (m_count_ != nullptr) m_count_->Add(1);
  if (m_pages_ != nullptr) m_pages_->Add(flushed);
  if (m_micros_ != nullptr) m_micros_->Add(micros);
  if (decisions_ != nullptr) {
    decisions_->Record(t1, "checkpoint", "checkpoint", reason,
                       static_cast<double>(log_bytes_before),
                       static_cast<double>(stats_.target_log_bytes));
  }
  return Status::OK();
}

CheckpointStats CheckpointGovernor::stats() const {
  LockGuard lock(mu_);
  CheckpointStats s = stats_;
  s.target_log_bytes = target_log_bytes_.load(std::memory_order_relaxed);
  return s;
}

void CheckpointGovernor::AttachTelemetry(obs::MetricsRegistry* registry,
                                         obs::DecisionLog* decisions) {
  obs::Counter* count = nullptr;
  obs::Counter* pages = nullptr;
  obs::Counter* micros = nullptr;
  if (registry != nullptr) {
    // Register outside mu_: the registry has its own mutex, and nothing
    // orders it after the governor's.
    count = registry->RegisterCounter(obs::kCheckpointCount);
    pages = registry->RegisterCounter(obs::kCheckpointPagesFlushed);
    micros = registry->RegisterCounter(obs::kCheckpointMicros);
    registry->RegisterCallback(obs::kCheckpointTargetLogBytes, [this] {
      return static_cast<double>(
          target_log_bytes_.load(std::memory_order_relaxed));
    });
  }
  LockGuard lock(mu_);
  m_count_ = count;
  m_pages_ = pages;
  m_micros_ = micros;
  decisions_ = decisions;
}

}  // namespace hdb::wal
