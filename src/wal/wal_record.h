#ifndef HDB_WAL_WAL_RECORD_H_
#define HDB_WAL_WAL_RECORD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "storage/page.h"

namespace hdb::wal {

/// Record types in the write-ahead log. kEnd (0) doubles as the page
/// terminator: the scan of a log page stops at the first zero type byte.
enum class WalRecordType : uint8_t {
  kEnd = 0,
  // Physiological heap ops: page-level position, logical row payload.
  kHeapInsert,      // {table_oid, page, slot, offset, row bytes}
  kHeapDelete,      // {table_oid, page, slot, offset, before image}
  kHeapUpdate,      // {table_oid, page, slot, offset, before, after}
  kHeapAppendPage,  // {table_oid, new_page, prev_page}
  // Transaction outcome.
  kCommit,
  kAbort,
  // Fuzzy checkpoint brackets (redo starts at the begin of the last
  // completed pair).
  kCheckpointBegin,
  kCheckpointEnd,  // {begin_lsn}
  // DDL barriers: the full definition, with assigned oids, so replay
  // reconstructs an identical catalog.
  kDdlCreateTable,
  kDdlCreateIndex,
  kDdlDropTable,
  kDdlDropIndex,
  kDdlCreateProcedure,
  kDdlSetOption,
  kDdlForeignKey,
};

/// Compensation log record: written while undoing (at runtime abort or in
/// recovery's undo phase). Informational — undo inverts CLRs like any
/// other record, which makes repeated crash-during-recovery converge.
inline constexpr uint8_t kWalFlagClr = 0x1;

/// On-page record framing:
///   [u32 crc][u16 len][u8 type][u8 flags][u32 epoch][u64 lsn][u64 txn]
///   [payload...]
/// crc covers everything after itself (len..payload). Records never span
/// pages; the tail of a page is zero-filled, terminating the scan.
///
/// `epoch` counts recoveries: the writer bumps it past the largest epoch
/// seen in the log each time it resumes. Epochs must be non-decreasing
/// along the log, which rejects a stale orphan page (valid records from a
/// previous run that survived beyond a truncation point) even when its
/// LSNs would happen to continue the new sequence.
inline constexpr uint32_t kWalHeaderBytes = 28;

struct WalRecord {
  storage::Lsn lsn = storage::kNullLsn;
  uint64_t txn_id = 0;
  uint32_t epoch = 0;
  WalRecordType type = WalRecordType::kEnd;
  uint8_t flags = 0;
  std::string payload;

  bool is_clr() const { return (flags & kWalFlagClr) != 0; }
};

// --- byte-buffer helpers -------------------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view s) : p_(s.data()), n_(s.size()) {}

  uint8_t U8() { return Fixed<uint8_t>(); }
  uint16_t U16() { return Fixed<uint16_t>(); }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint64_t U64() { return Fixed<uint64_t>(); }
  std::string_view Str() {
    const uint32_t len = U32();
    if (!ok_ || len > n_) {
      ok_ = false;
      return {};
    }
    std::string_view s(p_, len);
    p_ += len;
    n_ -= len;
    return s;
  }
  std::string_view Rest() {
    std::string_view s(p_, n_);
    p_ += n_;
    n_ = 0;
    return s;
  }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  T Fixed() {
    if (sizeof(T) > n_) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    n_ -= sizeof(T);
    return v;
  }

  const char* p_;
  size_t n_;
  bool ok_ = true;
};

// --- heap op payloads ----------------------------------------------------

/// Decoded view of a kHeapInsert/kHeapDelete/kHeapUpdate/kHeapAppendPage
/// payload. `before`/`after` alias the record's payload string.
struct HeapOp {
  uint32_t table_oid = 0;
  storage::PageId page = storage::kInvalidPageId;
  uint16_t slot = 0;
  uint16_t offset = 0;
  std::string_view before;
  std::string_view after;
  storage::PageId prev_page = storage::kInvalidPageId;  // kHeapAppendPage
};

inline std::string EncodeHeapInsert(uint32_t table_oid, storage::PageId page,
                                    uint16_t slot, uint16_t offset,
                                    std::string_view row) {
  ByteWriter w;
  w.U32(table_oid);
  w.U32(page);
  w.U16(slot);
  w.U16(offset);
  w.Raw(row.data(), row.size());
  return w.Take();
}

inline std::string EncodeHeapDelete(uint32_t table_oid, storage::PageId page,
                                    uint16_t slot, uint16_t offset,
                                    std::string_view before) {
  return EncodeHeapInsert(table_oid, page, slot, offset, before);
}

inline std::string EncodeHeapUpdate(uint32_t table_oid, storage::PageId page,
                                    uint16_t slot, uint16_t offset,
                                    std::string_view before,
                                    std::string_view after) {
  ByteWriter w;
  w.U32(table_oid);
  w.U32(page);
  w.U16(slot);
  w.U16(offset);
  w.Str(before);
  w.Raw(after.data(), after.size());
  return w.Take();
}

inline std::string EncodeHeapAppendPage(uint32_t table_oid,
                                        storage::PageId new_page,
                                        storage::PageId prev_page) {
  ByteWriter w;
  w.U32(table_oid);
  w.U32(new_page);
  w.U32(prev_page);
  return w.Take();
}

// --- checkpoint payloads -------------------------------------------------

/// kCheckpointEnd payload: the matching begin LSN, plus the smallest
/// "first unflushed change" LSN among frames the fuzzy flush had to skip
/// (pinned) — redo starts at min(begin, min_rec_lsn) of the last complete
/// pair. min_rec_lsn == kNullLsn means every logged page reached the
/// media.
inline std::string EncodeCheckpointEnd(storage::Lsn begin_lsn,
                                       storage::Lsn min_rec_lsn) {
  ByteWriter w;
  w.U64(begin_lsn);
  w.U64(min_rec_lsn);
  return w.Take();
}

inline bool DecodeCheckpointEnd(const WalRecord& rec, storage::Lsn* begin_lsn,
                                storage::Lsn* min_rec_lsn) {
  if (rec.type != WalRecordType::kCheckpointEnd) return false;
  ByteReader r(rec.payload);
  *begin_lsn = r.U64();
  *min_rec_lsn = r.U64();
  return r.ok();
}

/// Decodes the heap-op payload of `rec` into `op`. False if `rec` is not a
/// heap op or the payload is malformed.
inline bool DecodeHeapOp(const WalRecord& rec, HeapOp* op) {
  ByteReader r(rec.payload);
  switch (rec.type) {
    case WalRecordType::kHeapInsert:
    case WalRecordType::kHeapDelete: {
      op->table_oid = r.U32();
      op->page = r.U32();
      op->slot = r.U16();
      op->offset = r.U16();
      op->before = r.Rest();  // row image (the inserted row / the deleted row)
      op->after = op->before;
      return r.ok();
    }
    case WalRecordType::kHeapUpdate: {
      op->table_oid = r.U32();
      op->page = r.U32();
      op->slot = r.U16();
      op->offset = r.U16();
      op->before = r.Str();
      op->after = r.Rest();
      return r.ok();
    }
    case WalRecordType::kHeapAppendPage: {
      op->table_oid = r.U32();
      op->page = r.U32();
      op->prev_page = r.U32();
      return r.ok();
    }
    default:
      return false;
  }
}

}  // namespace hdb::wal

#endif  // HDB_WAL_WAL_RECORD_H_
