#ifndef HDB_WAL_WAL_MANAGER_H_
#define HDB_WAL_WAL_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "wal/wal_record.h"

#include "common/lock_rank.h"

namespace hdb::wal {

struct WalOptions {
  /// Master switch (HDB_WAL=OFF / DatabaseOptions). Off = pre-WAL
  /// behavior: no logging, no recovery, no durability.
  bool enabled = true;
  /// Batch commit fsyncs across sessions through the flusher thread. Off =
  /// every commit pays its own fsync (the bench's single-fsync baseline).
  bool group_commit = true;
};

struct WalStats {
  uint64_t appends = 0;
  uint64_t bytes = 0;
  uint64_t flushes = 0;
  uint64_t syncs = 0;
  uint64_t group_batches = 0;
  uint64_t clr_records = 0;
  storage::Lsn appended_lsn = storage::kNullLsn;
  storage::Lsn durable_lsn = storage::kNullLsn;
  uint64_t bytes_since_checkpoint = 0;
  storage::Lsn last_checkpoint_begin = storage::kNullLsn;
};

/// The write-ahead log (DESIGN.md §7).
///
/// Records are packed into kLog-space pages written *directly* through the
/// DiskManager, bypassing the buffer pool. (Deviation from the paper's
/// pool-resident log pages: the pool's flush barrier calls back into the
/// WAL, so the log living outside the pool breaks the cycle by
/// construction.) Log pages are strictly sequential — page ids 0,1,2,…
/// with no gaps — so a scan from page 0 plus per-record CRCs and an
/// LSN-monotonicity guard recovers exactly the durable prefix.
///
/// Durability contract:
///  - Append() only buffers (and eagerly writes filled pages to the
///    media's cache).
///  - EnsureDurable(lsn) writes the tail page and fsyncs: the
///    WAL-before-data barrier (BufferPool calls it before any data-page
///    write-back) and the checkpoint use this.
///  - WaitDurable(lsn) is the commit path: with group commit on, waiters
///    park on the flusher thread, which fsyncs once per batch.
class WalManager {
 public:
  WalManager(storage::DiskManager* disk, WalOptions options);
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  bool enabled() const { return options_.enabled; }
  bool group_commit() const { return options_.group_commit; }

  /// RAII registration of a logged page mutation whose frame has not yet
  /// been published dirty (PageHandle::MarkDirty(lsn)). While one is held,
  /// MinInflightLsn() reports its LSN, so a concurrent fuzzy checkpoint
  /// cannot record a redo start past a change that is in the log but not
  /// yet visible in the pool's dirty-frame table — the window in which a
  /// committed update would otherwise be silently lost after a crash.
  /// Registered by Append (under the same mutex that orders LSNs, which is
  /// what makes the coverage argument airtight) and released by the caller
  /// after the frame publish.
  class InflightLsn {
   public:
    InflightLsn() = default;
    ~InflightLsn() { Release(); }
    InflightLsn(const InflightLsn&) = delete;
    InflightLsn& operator=(const InflightLsn&) = delete;

    /// Unregisters now (idempotent). Call only after the mutation's frame
    /// has been published via MarkDirty(lsn), or when the mutation was
    /// abandoned before touching any page.
    void Release();

   private:
    friend class WalManager;
    WalManager* wal_ = nullptr;
    storage::Lsn lsn_ = storage::kNullLsn;
  };

  /// Appends a record, returning its LSN. Thread-safe. When `inflight` is
  /// non-null the LSN is registered as an in-flight page mutation (see
  /// InflightLsn); `inflight` must be empty.
  Result<storage::Lsn> Append(WalRecordType type, uint64_t txn_id,
                              std::string payload, uint8_t flags = 0,
                              InflightLsn* inflight = nullptr);

  /// Smallest LSN appended with an InflightLsn still unreleased; kNullLsn
  /// when none. The checkpoint governor folds this into the end record's
  /// min recLSN (read it *before* BufferPool::MinDirtyLsn(): a mutator
  /// publishes its frame before releasing, so that order can only
  /// over-cover, never miss).
  storage::Lsn MinInflightLsn() const;

  /// Makes everything up to `lsn` durable: writes the tail page and fsyncs
  /// the media. No-op when disabled or when there is no durable media.
  Status EnsureDurable(storage::Lsn lsn);

  /// Commit-path durability. With group commit on, blocks on the flusher
  /// thread's next batched fsync; otherwise EnsureDurable directly.
  Status WaitDurable(storage::Lsn lsn);

  /// Starts the group-commit flusher thread (idempotent; engine calls it
  /// once the database is open).
  void StartFlusher();

  /// Stops the flusher and best-effort flushes the tail (clean shutdown;
  /// errors from a crashed media are swallowed).
  void Shutdown();

  storage::Lsn appended_lsn() const {
    return appended_lsn_.load(std::memory_order_acquire);
  }
  storage::Lsn durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  uint64_t log_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  // --- recovery-side interface ------------------------------------------

  struct ScanResult {
    std::vector<WalRecord> records;  // the durable-consistent prefix
    storage::PageId tail_page = storage::kInvalidPageId;
    uint32_t tail_offset = 0;
    storage::Lsn max_lsn = storage::kNullLsn;
    uint64_t max_txn_id = 0;
  };

  /// Scans the log from page 0, torn-tolerant: stops at the first zero
  /// terminator, CRC mismatch, or LSN regression, and reports that point
  /// as the tail to resume writing at.
  Result<ScanResult> ScanLog();

  /// Positions the writer at the recovered tail (before recovery's undo
  /// phase appends CLRs). `next_lsn` must exceed every recovered LSN.
  Status ResumeAt(storage::PageId tail_page, uint32_t tail_offset,
                  storage::Lsn next_lsn);

  // --- checkpoint bookkeeping -------------------------------------------

  uint64_t bytes_since_checkpoint() const {
    return bytes_since_checkpoint_.load(std::memory_order_relaxed);
  }
  storage::Lsn last_checkpoint_begin() const {
    return last_checkpoint_begin_.load(std::memory_order_relaxed);
  }
  /// Called by the checkpoint governor after logging a kCheckpointBegin.
  void NoteCheckpointBegin(storage::Lsn begin_lsn);

  WalStats stats() const;
  void AttachTelemetry(obs::MetricsRegistry* registry);

  // --- per-thread transaction attribution -------------------------------
  // TableHeap runs below the txn layer; the engine brackets DML (and undo
  // application) in a TxnScope so heap ops log under the right txn id.

  struct TxnContext {
    uint64_t txn_id = 0;
    bool clr = false;
  };

  class TxnScope {
   public:
    TxnScope(uint64_t txn_id, bool clr = false);
    ~TxnScope();
    TxnScope(const TxnScope&) = delete;
    TxnScope& operator=(const TxnScope&) = delete;

   private:
    TxnContext prev_;
  };

  static TxnContext CurrentTxn();

 private:
  Status WriteTailPageLocked() REQUIRES(mu_);
  Status AdvancePageLocked() REQUIRES(mu_);
  void FlusherLoop();

  storage::DiskManager* disk_;
  const WalOptions options_;

  // Writer state.
  mutable RankedMutex<LockRank::kWalBuffer> mu_;
  std::vector<char> page_buf_ GUARDED_BY(mu_);
  storage::PageId cur_page_ GUARDED_BY(mu_) = storage::kInvalidPageId;
  uint32_t cur_offset_ GUARDED_BY(mu_) = 0;
  // Bytes appended since last WritePage.
  bool tail_dirty_ GUARDED_BY(mu_) = false;
  storage::Lsn next_lsn_ GUARDED_BY(mu_) = 1;
  // See wal_record.h: bumped per recovery.
  uint32_t epoch_ GUARDED_BY(mu_) = 1;
  // Set by ScanLog, consumed by ResumeAt.
  uint32_t max_epoch_seen_ GUARDED_BY(mu_) = 0;
  // See InflightLsn.
  std::multiset<storage::Lsn> inflight_lsns_ GUARDED_BY(mu_);

  std::atomic<storage::Lsn> appended_lsn_{storage::kNullLsn};
  std::atomic<storage::Lsn> durable_lsn_{storage::kNullLsn};

  // Flush serialization (never held while holding mu_ is fine; the flush
  // path takes flush_mu_ then mu_).
  RankedMutex<LockRank::kWalFlush> flush_mu_;

  // Group commit.
  RankedMutex<LockRank::kWalGroupCommit> gc_mu_;
  std::condition_variable_any gc_work_cv_;   // wakes the flusher
  std::condition_variable_any gc_done_cv_;   // wakes committers
  storage::Lsn gc_target_ GUARDED_BY(gc_mu_) = storage::kNullLsn;
  // Sticky media failure, delivered to all waiters.
  Status gc_error_ GUARDED_BY(gc_mu_);
  bool stop_flusher_ GUARDED_BY(gc_mu_) = false;
  bool flusher_running_ GUARDED_BY(gc_mu_) = false;
  // Joined outside gc_mu_ (Shutdown); started/cleared under it.
  std::thread flusher_;

  // Checkpoint bookkeeping.
  std::atomic<uint64_t> bytes_since_checkpoint_{0};
  std::atomic<storage::Lsn> last_checkpoint_begin_{storage::kNullLsn};

  // Stats.
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> group_batches_{0};
  std::atomic<uint64_t> clr_records_{0};

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_syncs_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
};

}  // namespace hdb::wal

#endif  // HDB_WAL_WAL_MANAGER_H_
