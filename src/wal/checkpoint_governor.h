#ifndef HDB_WAL_CHECKPOINT_GOVERNOR_H_
#define HDB_WAL_CHECKPOINT_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "os/virtual_clock.h"
#include "storage/buffer_pool.h"
#include "wal/wal_manager.h"

#include "common/lock_rank.h"

namespace hdb::wal {

struct CheckpointStats {
  uint64_t checkpoints = 0;
  uint64_t pages_flushed = 0;
  uint64_t micros = 0;               // cumulative measured checkpoint time
  uint64_t target_log_bytes = 0;     // current self-derived trigger
  storage::Lsn last_begin_lsn = storage::kNullLsn;
  storage::Lsn last_end_lsn = storage::kNullLsn;
};

/// Self-tuning fuzzy-checkpoint governor (DESIGN.md §7).
///
/// There is no checkpoint-interval knob, matching the paper's design
/// philosophy: the trigger is derived from two measured quantities.
///
///  - cost balance: a checkpoint is taken when the redo work a crash would
///    incur (bytes_since_checkpoint × measured redo micros/byte) exceeds
///    the cost of checkpointing now (estimated from the pool's dirty-frame
///    count × the measured per-page flush cost + the measured sync cost).
///    Both estimates are EMAs over the governor's own checkpoints, so fast
///    media and light write loads both push checkpoints further apart on
///    their own.
///  - eviction-latency guard: when more than half the pool is dirty, a
///    checkpoint runs regardless, keeping page-replacement latency (and
///    the flush barrier's fsync burst) bounded.
///
/// Every decision — taken or skipped — can be traced through the
/// obs::DecisionLog; sys.governors surfaces the same records.
///
/// Thread safety: MaybeCheckpoint/ForceCheckpoint may be called from any
/// session thread; one checkpoint runs at a time (internal mutex), and
/// concurrent callers skip rather than queue.
class CheckpointGovernor {
 public:
  CheckpointGovernor(WalManager* wal, storage::BufferPool* pool,
                     os::VirtualClock* clock);

  /// Evaluates the trigger and checkpoints if it fires. Returns true when
  /// a checkpoint ran. Cheap when it does not fire (a few atomic loads).
  bool MaybeCheckpoint();

  /// Unconditional checkpoint (recovery end, clean shutdown, tests).
  Status ForceCheckpoint(const char* reason);

  CheckpointStats stats() const;
  void AttachTelemetry(obs::MetricsRegistry* registry,
                       obs::DecisionLog* decisions);

 private:
  Status RunCheckpointLocked(const char* reason) REQUIRES(mu_);
  uint64_t EstimatedCheckpointMicrosLocked() const REQUIRES(mu_);

  WalManager* wal_;
  storage::BufferPool* pool_;
  os::VirtualClock* clock_;

  mutable RankedMutex<LockRank::kCheckpointGovernor> mu_;
  // Measured-cost EMAs (micros). Seeds only matter for the first trigger;
  // the first real checkpoint replaces them with measurements.
  double flush_micros_per_page_ GUARDED_BY(mu_) = 100.0;
  double sync_micros_ GUARDED_BY(mu_) = 500.0;
  double redo_micros_per_byte_ GUARDED_BY(mu_) = 0.05;
  std::atomic<uint64_t> target_log_bytes_{64 * 1024};

  CheckpointStats stats_ GUARDED_BY(mu_);

  // Telemetry sinks: set once by AttachTelemetry before concurrent
  // checkpointing starts, read under mu_ afterwards.
  obs::Counter* m_count_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* m_pages_ GUARDED_BY(mu_) = nullptr;
  obs::Counter* m_micros_ GUARDED_BY(mu_) = nullptr;
  obs::DecisionLog* decisions_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace hdb::wal

#endif  // HDB_WAL_CHECKPOINT_GOVERNOR_H_
