#ifndef HDB_WAL_RECOVERY_H_
#define HDB_WAL_RECOVERY_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "wal/wal_manager.h"
#include "wal/wal_record.h"

namespace hdb::wal {

struct RecoveryStats {
  bool log_found = false;          // any durable record existed
  uint64_t scanned_records = 0;
  uint64_t committed_txns = 0;
  uint64_t loser_txns = 0;
  uint64_t redo_records = 0;       // re-applied
  uint64_t redo_skipped = 0;       // page LSN already covered the record
  uint64_t redo_bytes = 0;         // log bytes walked by the redo pass
  uint64_t undo_records = 0;       // CLRs appended
  uint64_t torn_pages = 0;         // data pages zeroed and rebuilt
  bool full_replay = false;        // torn data page forced redo from LSN 1
  uint64_t max_txn_id = 0;         // watermark for TransactionManager
  storage::Lsn max_lsn = storage::kNullLsn;
  storage::Lsn redo_start_lsn = storage::kNullLsn;
};

/// ARIES-lite restart recovery (DESIGN.md §7).
///
/// One pass of ScanLog yields the durable-consistent record prefix; from
/// it:
///  - analysis: committed vs loser transactions, and the redo start point
///    — min(begin, min recLSN) of the last *completed* checkpoint pair;
///  - catalog replay: DDL records (and heap-chain records, which wire
///    first/last page into the replayed TableDefs) are applied over the
///    whole log, since the catalog is in-memory and rebuilt from scratch;
///  - redo: heap records from the redo point are re-applied directly to
///    page images read through the DiskManager (the buffer pool is not
///    involved), gated by each page's LSN stamp so the pass is idempotent.
///    A torn data page (in-flight write at crash) is zeroed and the pass
///    restarts from LSN 1 — the log is never truncated, so full history
///    is always available;
///  - undo: losers' records (originals and prior CLRs alike) are inverted
///    in reverse LSN order, each appending a CLR, then closed with a
///    kAbort record. Repeated crashes during recovery converge because
///    the inverses are exact at page level and undo always replays
///    everything of a still-open transaction.
///
/// On return the WAL writer is positioned at the recovered tail with all
/// CLRs durable, and the repaired data pages are synced. The caller (the
/// engine) rebuilds indexes from the heaps, re-derives row counts, seeds
/// the transaction-id watermark from `max_txn_id`, and forces a
/// checkpoint.
///
/// Thread safety: none — recovery runs single-threaded before the
/// database accepts connections.
class Recovery {
 public:
  Recovery(storage::DiskManager* disk, WalManager* wal,
           catalog::Catalog* catalog);

  Result<RecoveryStats> Run();

 private:
  // Page image cache for the redo/undo passes; flushed to the media once
  // at the end, after the CLRs are durable.
  Result<char*> PageFor(storage::PageId page);

  Status ReplayCatalog(const std::vector<WalRecord>& records);
  Status RedoPass(const std::vector<WalRecord>& records, size_t from_index);
  Status UndoPass(const std::vector<WalRecord>& records);

  storage::DiskManager* disk_;
  WalManager* wal_;
  catalog::Catalog* catalog_;

  std::unordered_map<storage::PageId, std::vector<char>> pages_;
  std::unordered_set<uint64_t> losers_;
  RecoveryStats stats_;
};

}  // namespace hdb::wal

#endif  // HDB_WAL_RECOVERY_H_
