#ifndef HDB_INDEX_BTREE_H_
#define HDB_INDEX_BTREE_H_

#include <functional>
#include <optional>
#include <shared_mutex>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "catalog/schema.h"
#include "storage/buffer_pool.h"

#include "common/lock_rank.h"

namespace hdb::index {

/// Live per-index statistics, maintained in real time during server
/// operation (paper §3.2: "index statistics, such as the number of
/// distinct values, number of leaf pages, and clustering statistics, are
/// maintained in real time").
/// Counters are relaxed atomics: writers hold the tree's latch, but the
/// optimizer's cost model reads through an IndexStatsProvider pointer with
/// no latch while other connections insert.
struct IndexStats {
  catalog::RelaxedCounter<uint64_t> num_entries = 0;
  catalog::RelaxedCounter<uint64_t> leaf_pages = 0;
  /// Distinct key estimate maintained by neighbor comparison at
  /// insert/delete time (exact within a leaf, approximate at boundaries).
  catalog::RelaxedCounter<uint64_t> distinct_keys = 0;
  /// Of all inserts, how many landed on the same or an adjacent heap page
  /// as their *key-order predecessor* in the leaf — a clustering measure
  /// in [0,1] the cost model turns into an I/O band size. (Key-order
  /// adjacency is what matters: an index range scan fetches rows in key
  /// order.)
  catalog::RelaxedCounter<uint64_t> clustered_inserts = 0;
  catalog::RelaxedCounter<uint64_t> total_inserts = 0;

  double clustering_fraction() const {
    const uint64_t total = total_inserts;
    return total == 0 ? 1.0
                      : static_cast<double>(clustered_inserts.get()) / total;
  }
};

/// B+-tree mapping (order-preserving-hash key, rid) pairs to rows.
///
/// Keys are the `double` codes of common/ophash.h, which is what lets one
/// index implementation cover every data type (paper §2.1: "these
/// techniques allow SQL Anywhere to eliminate restrictions on what data
/// types can be indexed"): executors re-verify predicates against base
/// rows, so hash collisions on long strings cost only extra row fetches.
/// Deletion is lazy (no rebalancing); duplicate keys are ordered by rid.
class BTree {
 public:
  BTree(storage::BufferPool* pool, catalog::IndexDef* def);

  /// Creates the root leaf if the index is empty. Must be called once.
  Status Init();

  Status Insert(double key, Rid rid);

  /// Removes the exact (key, rid) entry.
  Status Remove(double key, Rid rid);

  /// True if some entry with exactly `key` exists — used for index
  /// probing during selectivity estimation (paper §3).
  Result<bool> Contains(double key) const;

  /// Calls `fn(key, rid)` over [lo, hi] (inclusive bounds selected by the
  /// flags); stops early when fn returns false.
  Status ScanRange(double lo, bool lo_inclusive, double hi,
                   bool hi_inclusive,
                   const std::function<bool(double, Rid)>& fn) const;

  /// Number of entries in [lo, hi], by leaf walk (used by index probing).
  Result<uint64_t> CountRange(double lo, double hi) const;

  /// Batched equality probe (index-nested-loop joins): for each `keys[i]`
  /// calls `fn(i, rid)` for every entry equal to it, under ONE
  /// shared-latch acquisition instead of one per key.
  Status ScanEqualBatch(const double* keys, size_t n,
                        const std::function<bool(size_t, Rid)>& fn) const;

  const IndexStats& stats() const { return stats_; }
  catalog::IndexDef* def() { return def_; }

 private:
  struct SplitResult {
    double up_key;
    Rid up_rid;
    storage::PageId right_page;
  };

  Status InitLocked() REQUIRES(latch_);
  Status ScanRangeLocked(double lo, bool lo_inclusive, double hi,
                         bool hi_inclusive,
                         const std::function<bool(double, Rid)>& fn) const
      REQUIRES_SHARED(latch_);
  Result<storage::PageId> NewNode(bool is_leaf) REQUIRES(latch_);
  Result<std::optional<SplitResult>> InsertRec(storage::PageId node,
                                               double key, Rid rid)
      REQUIRES(latch_);
  /// Page id of the first leaf whose range may contain `key` (shared
  /// suffices: the walk only reads node pages).
  Result<storage::PageId> FindLeaf(double key) const REQUIRES_SHARED(latch_);

  storage::BufferPool* pool_;
  catalog::IndexDef* def_;
  IndexStats stats_;  // relaxed atomics: read latch-free by the optimizer
  // Heap page of the key-order predecessor of the entry just inserted
  // (set by InsertRec; kInvalidPageId when the entry became the minimum).
  storage::PageId last_pred_heap_page_ GUARDED_BY(latch_) =
      storage::kInvalidPageId;
  /// Tree-level reader/writer latch: page bytes are mutated through
  /// pinned handles outside the buffer pool's latch, so structural
  /// modifications (Insert/Remove, root growth) are exclusive while
  /// lookups and range scans share.
  mutable RankedSharedMutex<LockRank::kIndex> latch_;
};

}  // namespace hdb::index

#endif  // HDB_INDEX_BTREE_H_
