#include "index/btree.h"

#include <cstring>
#include <vector>

namespace hdb::index {

namespace {

using storage::kInvalidPageId;
using storage::PageHandle;
using storage::PageId;
using storage::PageType;
using storage::SpaceId;
using storage::SpacePageId;

struct NodeHeader {
  uint16_t count;
  uint8_t is_leaf;
  uint8_t pad;
  PageId extra;  // leaf: next-leaf page; internal: rightmost child
};

struct LeafEntry {
  double key;
  uint32_t heap_page;
  uint16_t heap_slot;
  uint16_t pad;
};

struct InternalEntry {
  double key;       // separator: child holds entries < (key, rid)
  uint32_t sep_page;
  uint16_t sep_slot;
  uint16_t pad;
  PageId child;
};

constexpr size_t kHeaderBytes = sizeof(NodeHeader);

NodeHeader ReadHeader(const char* p) {
  NodeHeader h;
  std::memcpy(&h, p, sizeof(h));
  return h;
}
void WriteHeader(char* p, const NodeHeader& h) {
  std::memcpy(p, &h, sizeof(h));
}
LeafEntry ReadLeaf(const char* p, uint16_t i) {
  LeafEntry e;
  std::memcpy(&e, p + kHeaderBytes + i * sizeof(LeafEntry), sizeof(e));
  return e;
}
void WriteLeaf(char* p, uint16_t i, const LeafEntry& e) {
  std::memcpy(p + kHeaderBytes + i * sizeof(LeafEntry), &e, sizeof(e));
}
InternalEntry ReadInternal(const char* p, uint16_t i) {
  InternalEntry e;
  std::memcpy(&e, p + kHeaderBytes + i * sizeof(InternalEntry), sizeof(e));
  return e;
}
void WriteInternal(char* p, uint16_t i, const InternalEntry& e) {
  std::memcpy(p + kHeaderBytes + i * sizeof(InternalEntry), &e, sizeof(e));
}

// (key, rid) composite ordering.
int CompareEntry(double k1, Rid r1, double k2, Rid r2) {
  if (k1 < k2) return -1;
  if (k1 > k2) return 1;
  if (r1 < r2) return -1;
  if (r2 < r1) return 1;
  return 0;
}

Rid LeafRid(const LeafEntry& e) {
  return Rid{e.heap_page, e.heap_slot};
}

}  // namespace

BTree::BTree(storage::BufferPool* pool, catalog::IndexDef* def)
    : pool_(pool), def_(def) {}

Result<PageId> BTree::NewNode(bool is_leaf) {
  PageId id = kInvalidPageId;
  HDB_ASSIGN_OR_RETURN(
      PageHandle h,
      pool_->NewPage(SpaceId::kMain, PageType::kIndex, def_->oid, &id));
  NodeHeader header{0, static_cast<uint8_t>(is_leaf ? 1 : 0), 0,
                    kInvalidPageId};
  WriteHeader(h.data(), header);
  h.MarkDirty();
  return id;
}

Status BTree::Init() {
  UniqueLock latch(latch_);
  return InitLocked();
}

Status BTree::InitLocked() {
  if (def_->root_page != kInvalidPageId) return Status::OK();
  HDB_ASSIGN_OR_RETURN(def_->root_page, NewNode(/*is_leaf=*/true));
  stats_.leaf_pages = 1;
  return Status::OK();
}

uint32_t LeafCapacity(uint32_t page_bytes) {
  return (page_bytes - kHeaderBytes) / sizeof(LeafEntry);
}
uint32_t InternalCapacity(uint32_t page_bytes) {
  return (page_bytes - kHeaderBytes) / sizeof(InternalEntry);
}

Result<std::optional<BTree::SplitResult>> BTree::InsertRec(PageId node,
                                                           double key,
                                                           Rid rid) {
  HDB_ASSIGN_OR_RETURN(PageHandle h,
                       pool_->FetchPage(SpacePageId{SpaceId::kMain, node},
                                        PageType::kIndex, def_->oid));
  NodeHeader header = ReadHeader(h.data());

  if (header.is_leaf) {
    // Find insert position (first entry > (key, rid)).
    uint16_t pos = 0;
    while (pos < header.count) {
      const LeafEntry e = ReadLeaf(h.data(), pos);
      const int c = CompareEntry(e.key, LeafRid(e), key, rid);
      if (c >= 0) break;
      ++pos;
    }
    // Maintain the distinct-keys statistic by neighbor comparison, and
    // remember the key-order predecessor's heap page for the clustering
    // statistic.
    last_pred_heap_page_ =
        pos > 0 ? ReadLeaf(h.data(), pos - 1).heap_page
                : storage::kInvalidPageId;
    bool has_equal_neighbor = false;
    if (pos > 0 && ReadLeaf(h.data(), pos - 1).key == key) {
      has_equal_neighbor = true;
    }
    if (pos < header.count && ReadLeaf(h.data(), pos).key == key) {
      has_equal_neighbor = true;
    }

    const uint32_t capacity = LeafCapacity(pool_->page_bytes());
    if (header.count < capacity) {
      for (uint16_t i = header.count; i > pos; --i) {
        WriteLeaf(h.data(), i, ReadLeaf(h.data(), i - 1));
      }
      WriteLeaf(h.data(), pos, LeafEntry{key, rid.page_id, rid.slot, 0});
      header.count++;
      WriteHeader(h.data(), header);
      h.MarkDirty();
      if (!has_equal_neighbor) stats_.distinct_keys++;
      return std::optional<SplitResult>{};
    }

    // Split the leaf: left keeps the lower half, right gets the rest.
    HDB_ASSIGN_OR_RETURN(const PageId right_id, NewNode(/*is_leaf=*/true));
    HDB_ASSIGN_OR_RETURN(
        PageHandle rh, pool_->FetchPage(SpacePageId{SpaceId::kMain, right_id},
                                        PageType::kIndex, def_->oid));
    const uint16_t mid = header.count / 2;
    NodeHeader rheader = ReadHeader(rh.data());
    rheader.count = header.count - mid;
    rheader.extra = header.extra;  // old next-leaf
    for (uint16_t i = mid; i < header.count; ++i) {
      WriteLeaf(rh.data(), i - mid, ReadLeaf(h.data(), i));
    }
    WriteHeader(rh.data(), rheader);
    rh.MarkDirty();
    header.count = mid;
    header.extra = right_id;
    WriteHeader(h.data(), header);
    h.MarkDirty();
    stats_.leaf_pages++;
    if (!has_equal_neighbor) stats_.distinct_keys++;

    // Insert into the proper half (recursion depth 1: it has space now).
    const LeafEntry sep = ReadLeaf(rh.data(), 0);
    rh.Release();
    h.Release();
    const bool go_right = CompareEntry(key, rid, sep.key, LeafRid(sep)) >= 0;
    // Temporarily decrement so the recursive insert's distinct-neighbor
    // logic does not double count (we already accounted for it).
    if (!has_equal_neighbor) stats_.distinct_keys--;
    HDB_ASSIGN_OR_RETURN(auto sub,
                         InsertRec(go_right ? right_id : node, key, rid));
    (void)sub;  // cannot split again immediately after a split
    return std::optional<SplitResult>(
        SplitResult{sep.key, LeafRid(sep), right_id});
  }

  // Internal node: find child to descend into.
  uint16_t pos = 0;
  PageId child = header.extra;
  while (pos < header.count) {
    const InternalEntry e = ReadInternal(h.data(), pos);
    if (CompareEntry(key, rid, e.key, Rid{e.sep_page, e.sep_slot}) < 0) {
      child = e.child;
      break;
    }
    ++pos;
  }
  const bool descended_rightmost = (pos == header.count);
  h.Release();

  HDB_ASSIGN_OR_RETURN(auto split, InsertRec(child, key, rid));
  if (!split.has_value()) return std::optional<SplitResult>{};

  // Child split: insert (split->up_key, left=old child, right=new page).
  HDB_ASSIGN_OR_RETURN(PageHandle h2,
                       pool_->FetchPage(SpacePageId{SpaceId::kMain, node},
                                        PageType::kIndex, def_->oid));
  NodeHeader header2 = ReadHeader(h2.data());
  const uint32_t capacity = InternalCapacity(pool_->page_bytes());
  // New separator goes at position `pos`; its child pointer is the left
  // half (old child), and the entry that used to point at the child (or
  // the rightmost pointer) now points at the right half.
  if (header2.count < capacity) {
    for (uint16_t i = header2.count; i > pos; --i) {
      WriteInternal(h2.data(), i, ReadInternal(h2.data(), i - 1));
    }
    WriteInternal(h2.data(), pos,
                  InternalEntry{split->up_key, split->up_rid.page_id,
                                split->up_rid.slot, 0, child});
    if (descended_rightmost) {
      header2.extra = split->right_page;
    } else {
      InternalEntry next = ReadInternal(h2.data(), pos + 1);
      next.child = split->right_page;
      WriteInternal(h2.data(), pos + 1, next);
    }
    header2.count++;
    WriteHeader(h2.data(), header2);
    h2.MarkDirty();
    return std::optional<SplitResult>{};
  }

  // Split this internal node. Materialize entries, insert, split in memory.
  std::vector<InternalEntry> entries;
  entries.reserve(header2.count + 1);
  for (uint16_t i = 0; i < header2.count; ++i) {
    entries.push_back(ReadInternal(h2.data(), i));
  }
  InternalEntry fresh{split->up_key, split->up_rid.page_id, split->up_rid.slot,
                      0, child};
  entries.insert(entries.begin() + pos, fresh);
  PageId rightmost = header2.extra;
  if (descended_rightmost) {
    rightmost = split->right_page;
  } else {
    entries[pos + 1].child = split->right_page;
  }

  const size_t mid = entries.size() / 2;
  const InternalEntry promote = entries[mid];

  HDB_ASSIGN_OR_RETURN(const PageId right_id, NewNode(/*is_leaf=*/false));
  HDB_ASSIGN_OR_RETURN(
      PageHandle rh, pool_->FetchPage(SpacePageId{SpaceId::kMain, right_id},
                                      PageType::kIndex, def_->oid));
  NodeHeader rheader = ReadHeader(rh.data());
  uint16_t rc = 0;
  for (size_t i = mid + 1; i < entries.size(); ++i) {
    WriteInternal(rh.data(), rc++, entries[i]);
  }
  rheader.count = rc;
  rheader.extra = rightmost;
  WriteHeader(rh.data(), rheader);
  rh.MarkDirty();

  header2.count = static_cast<uint16_t>(mid);
  header2.extra = promote.child;  // left node's rightmost = promoted's child
  for (size_t i = 0; i < mid; ++i) {
    WriteInternal(h2.data(), static_cast<uint16_t>(i), entries[i]);
  }
  WriteHeader(h2.data(), header2);
  h2.MarkDirty();

  return std::optional<SplitResult>(SplitResult{
      promote.key, Rid{promote.sep_page, promote.sep_slot}, right_id});
}

Status BTree::Insert(double key, Rid rid) {
  UniqueLock latch(latch_);
  HDB_RETURN_IF_ERROR(InitLocked());
  HDB_ASSIGN_OR_RETURN(auto split, InsertRec(def_->root_page, key, rid));
  if (split.has_value()) {
    // Grow a new root.
    HDB_ASSIGN_OR_RETURN(const PageId new_root, NewNode(/*is_leaf=*/false));
    HDB_ASSIGN_OR_RETURN(
        PageHandle h, pool_->FetchPage(SpacePageId{SpaceId::kMain, new_root},
                                       PageType::kIndex, def_->oid));
    NodeHeader header = ReadHeader(h.data());
    header.count = 1;
    header.extra = split->right_page;
    WriteHeader(h.data(), header);
    WriteInternal(h.data(), 0,
                  InternalEntry{split->up_key, split->up_rid.page_id,
                                split->up_rid.slot, 0, def_->root_page});
    h.MarkDirty();
    def_->root_page = new_root;
  }
  stats_.num_entries++;
  stats_.total_inserts++;
  const storage::PageId pred = last_pred_heap_page_;
  if (pred == kInvalidPageId || rid.page_id == pred ||
      rid.page_id == pred + 1) {
    stats_.clustered_inserts++;
  }
  return Status::OK();
}

Result<PageId> BTree::FindLeaf(double key) const {
  PageId node = def_->root_page;
  if (node == kInvalidPageId) return Status::NotFound("empty index");
  for (;;) {
    HDB_ASSIGN_OR_RETURN(PageHandle h,
                         pool_->FetchPage(SpacePageId{SpaceId::kMain, node},
                                          PageType::kIndex, def_->oid));
    const NodeHeader header = ReadHeader(h.data());
    if (header.is_leaf) return node;
    PageId child = header.extra;
    for (uint16_t i = 0; i < header.count; ++i) {
      const InternalEntry e = ReadInternal(h.data(), i);
      // Descend left of the first separator whose (key, minimal rid) is
      // above our search key: use Rid{0,0} so equal keys go left, ensuring
      // the scan starts at the first duplicate.
      if (CompareEntry(key, Rid{0, 0}, e.key,
                       Rid{e.sep_page, e.sep_slot}) < 0) {
        child = e.child;
        break;
      }
    }
    node = child;
  }
}

Status BTree::ScanRange(double lo, bool lo_inclusive, double hi,
                        bool hi_inclusive,
                        const std::function<bool(double, Rid)>& fn) const {
  SharedLock latch(latch_);
  return ScanRangeLocked(lo, lo_inclusive, hi, hi_inclusive, fn);
}

Status BTree::ScanRangeLocked(
    double lo, bool lo_inclusive, double hi, bool hi_inclusive,
    const std::function<bool(double, Rid)>& fn) const {
  if (def_->root_page == kInvalidPageId) return Status::OK();
  HDB_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo));
  while (leaf != kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(PageHandle h,
                         pool_->FetchPage(SpacePageId{SpaceId::kMain, leaf},
                                          PageType::kIndex, def_->oid));
    const NodeHeader header = ReadHeader(h.data());
    for (uint16_t i = 0; i < header.count; ++i) {
      const LeafEntry e = ReadLeaf(h.data(), i);
      if (e.key < lo || (!lo_inclusive && e.key == lo)) continue;
      if (e.key > hi || (!hi_inclusive && e.key == hi)) return Status::OK();
      if (!fn(e.key, LeafRid(e))) return Status::OK();
    }
    leaf = header.extra;
  }
  return Status::OK();
}

Status BTree::ScanEqualBatch(const double* keys, size_t n,
                             const std::function<bool(size_t, Rid)>& fn) const {
  SharedLock latch(latch_);
  for (size_t i = 0; i < n; ++i) {
    HDB_RETURN_IF_ERROR(
        ScanRangeLocked(keys[i], true, keys[i], true,
                        [&fn, i](double, Rid rid) { return fn(i, rid); }));
  }
  return Status::OK();
}

Result<bool> BTree::Contains(double key) const {
  SharedLock latch(latch_);
  bool found = false;
  HDB_RETURN_IF_ERROR(ScanRangeLocked(key, true, key, true,
                                      [&found](double, Rid) {
                                        found = true;
                                        return false;
                                      }));
  return found;
}

Result<uint64_t> BTree::CountRange(double lo, double hi) const {
  SharedLock latch(latch_);
  uint64_t n = 0;
  HDB_RETURN_IF_ERROR(ScanRangeLocked(lo, true, hi, true, [&n](double, Rid) {
    ++n;
    return true;
  }));
  return n;
}

Status BTree::Remove(double key, Rid rid) {
  UniqueLock latch(latch_);
  if (def_->root_page == kInvalidPageId) return Status::NotFound("empty");
  HDB_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  while (leaf != kInvalidPageId) {
    HDB_ASSIGN_OR_RETURN(PageHandle h,
                         pool_->FetchPage(SpacePageId{SpaceId::kMain, leaf},
                                          PageType::kIndex, def_->oid));
    NodeHeader header = ReadHeader(h.data());
    bool past = false;
    for (uint16_t i = 0; i < header.count; ++i) {
      const LeafEntry e = ReadLeaf(h.data(), i);
      if (e.key > key) {
        past = true;
        break;
      }
      if (e.key == key && LeafRid(e) == rid) {
        const bool equal_left = i > 0 && ReadLeaf(h.data(), i - 1).key == key;
        const bool equal_right =
            i + 1 < header.count && ReadLeaf(h.data(), i + 1).key == key;
        for (uint16_t j = i; j + 1 < header.count; ++j) {
          WriteLeaf(h.data(), j, ReadLeaf(h.data(), j + 1));
        }
        header.count--;
        WriteHeader(h.data(), header);
        h.MarkDirty();
        if (stats_.num_entries > 0) stats_.num_entries--;
        if (!equal_left && !equal_right && stats_.distinct_keys > 0) {
          stats_.distinct_keys--;
        }
        return Status::OK();
      }
    }
    if (past) break;
    leaf = header.extra;
  }
  return Status::NotFound("index entry");
}

}  // namespace hdb::index
