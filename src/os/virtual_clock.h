#ifndef HDB_OS_VIRTUAL_CLOCK_H_
#define HDB_OS_VIRTUAL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace hdb::os {

/// Deterministic virtual time source, in microseconds.
///
/// Every time-dependent self-management mechanism in HolisticDB (buffer-pool
/// governor polling, plan-cache verification schedule, I/O cost accounting)
/// reads this clock rather than the wall clock, so adaptive trajectories are
/// exactly reproducible in tests and benches. Simulated I/O and workload
/// steps advance it explicitly.
class VirtualClock {
 public:
  explicit VirtualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const { return now_.load(std::memory_order_relaxed); }

  /// Advances time by `micros` and returns the new now.
  int64_t Advance(int64_t micros) {
    return now_.fetch_add(micros, std::memory_order_relaxed) + micros;
  }

  void SetMicros(int64_t micros) {
    now_.store(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace hdb::os

#endif  // HDB_OS_VIRTUAL_CLOCK_H_
