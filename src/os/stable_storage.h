#ifndef HDB_OS_STABLE_STORAGE_H_
#define HDB_OS_STABLE_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

#include "common/lock_rank.h"

namespace hdb::os {

/// Fault-injection plan for a StableStorage. Everything is deterministic
/// given `seed`, so any failing crash schedule reproduces from the seed
/// alone (scripts/crash_matrix.sh sweeps seeds).
struct FaultOptions {
  uint64_t seed = 1;

  /// After this many mutating media calls (Write/Sync), the device loses
  /// power: the triggering op and every later one fail with kIOError until
  /// PowerCycle(). -1 = never.
  int64_t crash_after_ops = -1;

  /// On power loss, corrupt the freshest un-synced page with a mix of old
  /// and new 512-byte sectors (a torn write) instead of dropping it clean.
  bool torn_write = false;

  /// On power loss, persist a random subset of the un-synced writes (the
  /// OS cache flushed some pages out of order) instead of dropping all.
  bool short_write = false;

  /// Every nth Read fails with kIOError (0 = never) — transient media
  /// errors, independent of crashes.
  uint32_t read_error_every = 0;
};

/// The durable medium under DiskManager: page images keyed by device page,
/// with power-failure semantics.
///
/// Writes land in a volatile `pending` set; only Sync() moves them to the
/// `durable` set (the caller pays the device's fsync cost separately, via
/// VirtualDisk::SyncMicros). A StableStorage outlives the Database that
/// uses it — destroying the Database and reopening against the same
/// StableStorage after PowerCycle() is exactly a kill -9 + restart.
///
/// Each durable image carries a CRC taken at sync time, stored beside (not
/// inside) the image; a torn write leaves bytes that disagree with the CRC,
/// which Read reports. Log pages are read with `torn` tolerance so the WAL
/// scan can still salvage the valid record prefix of a torn tail page.
class StableStorage {
 public:
  explicit StableStorage(uint32_t page_bytes, FaultOptions faults = {});

  uint32_t page_bytes() const { return page_bytes_; }

  /// Buffers the page image; durable only after the next successful Sync.
  Status Write(uint64_t device_page, const char* in);

  /// Reads the freshest visible image (pending over durable — the device
  /// cache gives read-your-writes before any sync). kNotFound if the page
  /// was never written. If `torn` is null, a CRC mismatch is an IOError;
  /// otherwise the corrupt bytes are returned with *torn = true.
  Status Read(uint64_t device_page, char* out, bool* torn = nullptr);

  bool Contains(uint64_t device_page) const;

  /// Makes all pending writes durable. A crash scheduled to strike during
  /// the sync persists only a random subset of them.
  Status Sync();

  /// Simulated power-off + power-on: un-synced writes are dropped (or
  /// partially/torn-persisted per FaultOptions), and the crashed flag is
  /// cleared so the device accepts I/O again.
  void PowerCycle();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// (Re-)arms the crash countdown; -1 disarms.
  void ScheduleCrash(int64_t after_ops);

  /// Highest durable device page in [begin, end), or -1 if none.
  int64_t MaxDurablePage(uint64_t begin, uint64_t end) const;

  /// Forgets all pages in [begin, end) — used to reset the temp space on
  /// reopen; temp contents have no meaning across a restart.
  void DropRange(uint64_t begin, uint64_t end);

  uint64_t write_count() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t sync_count() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t torn_page_count() const;
  uint64_t durable_page_count() const;
  uint64_t pending_page_count() const;

 private:
  struct Image {
    std::vector<char> bytes;
    uint32_t crc = 0;
    uint64_t order = 0;  // insertion order among pending writes
  };

  bool ConsumeOpLocked() REQUIRES(mu_);  // false => this op crashed the device
  void ApplyPendingLocked(bool partial) REQUIRES(mu_);
  void TearFreshestPendingLocked() REQUIRES(mu_);

  const uint32_t page_bytes_;

  mutable RankedMutex<LockRank::kStableStorage> mu_;
  FaultOptions faults_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Image> durable_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Image> pending_ GUARDED_BY(mu_);
  uint64_t next_order_ GUARDED_BY(mu_) = 0;
  int64_t ops_until_crash_ GUARDED_BY(mu_) = -1;
  std::atomic<bool> crashed_{false};

  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  uint64_t reads_ GUARDED_BY(mu_) = 0;  // drives read_error_every
};

}  // namespace hdb::os

#endif  // HDB_OS_STABLE_STORAGE_H_
