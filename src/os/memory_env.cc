#include "os/memory_env.h"

#include <algorithm>

namespace hdb::os {

void MemoryEnv::SetAllocation(const std::string& name, uint64_t bytes) {
  LockGuard lock(mu_);
  allocations_[name] = bytes;
}

void MemoryEnv::RemoveProcess(const std::string& name) {
  LockGuard lock(mu_);
  allocations_.erase(name);
}

uint64_t MemoryEnv::Allocation(const std::string& name) const {
  LockGuard lock(mu_);
  const auto it = allocations_.find(name);
  return it == allocations_.end() ? 0 : it->second;
}

uint64_t MemoryEnv::TotalDemandLocked() const {
  uint64_t total = 0;
  for (const auto& [name, bytes] : allocations_) total += bytes;
  return total;
}

uint64_t MemoryEnv::WorkingSetSize(const std::string& name) const {
  LockGuard lock(mu_);
  const auto it = allocations_.find(name);
  if (it == allocations_.end()) return 0;
  const uint64_t demand = TotalDemandLocked();
  if (demand <= physical_) return it->second;
  // Overcommitted: proportional working-set trim.
  const double scale = static_cast<double>(physical_) / demand;
  return static_cast<uint64_t>(static_cast<double>(it->second) * scale);
}

uint64_t MemoryEnv::FreePhysical() const {
  LockGuard lock(mu_);
  const uint64_t demand = TotalDemandLocked();
  return demand >= physical_ ? 0 : physical_ - demand;
}

}  // namespace hdb::os
