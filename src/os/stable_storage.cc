#include "os/stable_storage.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace hdb::os {

namespace {
constexpr size_t kSectorBytes = 512;
}  // namespace

StableStorage::StableStorage(uint32_t page_bytes, FaultOptions faults)
    : page_bytes_(page_bytes),
      faults_(faults),
      rng_(faults.seed),
      ops_until_crash_(faults.crash_after_ops) {}

bool StableStorage::ConsumeOpLocked() {
  if (crashed_.load(std::memory_order_relaxed)) return false;
  if (ops_until_crash_ < 0) return true;
  if (ops_until_crash_ == 0) {
    crashed_.store(true, std::memory_order_release);
    return false;
  }
  --ops_until_crash_;
  return true;
}

Status StableStorage::Write(uint64_t device_page, const char* in) {
  LockGuard lock(mu_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (!ConsumeOpLocked()) {
    return Status::IOError("injected crash: write dropped");
  }
  Image& img = pending_[device_page];
  img.bytes.assign(in, in + page_bytes_);
  img.crc = Crc32(in, page_bytes_);
  img.order = next_order_++;
  return Status::OK();
}

Status StableStorage::Read(uint64_t device_page, char* out, bool* torn) {
  LockGuard lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("injected crash: device offline");
  }
  ++reads_;
  if (faults_.read_error_every != 0 && reads_ % faults_.read_error_every == 0) {
    return Status::IOError("injected transient read error");
  }
  const Image* img = nullptr;
  if (auto it = pending_.find(device_page); it != pending_.end()) {
    img = &it->second;
  } else if (auto dit = durable_.find(device_page); dit != durable_.end()) {
    img = &dit->second;
  }
  if (img == nullptr) return Status::NotFound("page never written");
  std::memcpy(out, img->bytes.data(), page_bytes_);
  const bool bad = Crc32(img->bytes.data(), page_bytes_) != img->crc;
  if (torn != nullptr) {
    *torn = bad;
    return Status::OK();
  }
  if (bad) return Status::IOError("torn page");
  return Status::OK();
}

bool StableStorage::Contains(uint64_t device_page) const {
  LockGuard lock(mu_);
  return pending_.count(device_page) > 0 || durable_.count(device_page) > 0;
}

void StableStorage::ApplyPendingLocked(bool partial) {
  for (auto& [page, img] : pending_) {
    if (partial && !rng_.Bernoulli(0.5)) continue;
    durable_[page] = std::move(img);
  }
  pending_.clear();
}

Status StableStorage::Sync() {
  LockGuard lock(mu_);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  if (!ConsumeOpLocked()) {
    // Power failed while the batch was in flight: a random subset of the
    // pending pages reached the platter before the light went out.
    ApplyPendingLocked(/*partial=*/true);
    pending_.clear();
    return Status::IOError("injected crash: sync interrupted");
  }
  ApplyPendingLocked(/*partial=*/false);
  return Status::OK();
}

void StableStorage::TearFreshestPendingLocked() {
  if (pending_.empty()) return;
  auto victim = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->second.order > victim->second.order) victim = it;
  }
  // Mix old and new content at sector granularity. The stored CRC stays
  // the CRC of the *intended* image, so any sector of stale data makes the
  // page read back as torn — unless old and new agree byte-for-byte (the
  // appended-log-tail case, where the mix is still a valid image).
  Image torn = std::move(victim->second);
  const auto old_it = durable_.find(victim->first);
  for (size_t off = 0; off < page_bytes_; off += kSectorBytes) {
    const size_t n = std::min(kSectorBytes, static_cast<size_t>(page_bytes_) - off);
    if (rng_.Bernoulli(0.5)) continue;  // keep the new sector
    if (old_it != durable_.end()) {
      std::memcpy(torn.bytes.data() + off, old_it->second.bytes.data() + off, n);
    } else {
      std::memset(torn.bytes.data() + off, 0, n);
    }
  }
  durable_[victim->first] = std::move(torn);
  pending_.erase(victim);
}

void StableStorage::PowerCycle() {
  LockGuard lock(mu_);
  if (faults_.torn_write) TearFreshestPendingLocked();
  if (faults_.short_write) {
    ApplyPendingLocked(/*partial=*/true);
  }
  pending_.clear();
  crashed_.store(false, std::memory_order_release);
  ops_until_crash_ = -1;  // disarmed until re-scheduled
}

void StableStorage::ScheduleCrash(int64_t after_ops) {
  LockGuard lock(mu_);
  ops_until_crash_ = after_ops;
  if (after_ops >= 0) crashed_.store(false, std::memory_order_release);
}

int64_t StableStorage::MaxDurablePage(uint64_t begin, uint64_t end) const {
  LockGuard lock(mu_);
  int64_t best = -1;
  for (const auto& [page, img] : durable_) {
    if (page >= begin && page < end) {
      best = std::max(best, static_cast<int64_t>(page));
    }
  }
  return best;
}

void StableStorage::DropRange(uint64_t begin, uint64_t end) {
  LockGuard lock(mu_);
  std::erase_if(durable_, [begin, end](const auto& kv) {
    return kv.first >= begin && kv.first < end;
  });
  std::erase_if(pending_, [begin, end](const auto& kv) {
    return kv.first >= begin && kv.first < end;
  });
}

uint64_t StableStorage::torn_page_count() const {
  LockGuard lock(mu_);
  uint64_t n = 0;
  for (const auto& [page, img] : durable_) {
    if (Crc32(img.bytes.data(), page_bytes_) != img.crc) ++n;
  }
  return n;
}

uint64_t StableStorage::durable_page_count() const {
  LockGuard lock(mu_);
  return durable_.size();
}

uint64_t StableStorage::pending_page_count() const {
  LockGuard lock(mu_);
  return pending_.size();
}

}  // namespace hdb::os
