#ifndef HDB_OS_MEMORY_ENV_H_
#define HDB_OS_MEMORY_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

#include "common/lock_rank.h"

namespace hdb::os {

/// Simulated machine memory, the sensor for the buffer-pool feedback
/// control loop of paper §2 / Figure 1.
///
/// The real SQL Anywhere polls the operating system for two reference
/// inputs: the server process's *working-set size* (real memory in use by
/// the process) and the machine's *free physical memory*. HolisticDB runs
/// in environments where we cannot depend on those OS facilities for a
/// reproducible experiment, so MemoryEnv models them:
///
///  * Each named process (the DB server plus any number of competing
///    applications) has an *allocation* — its virtual memory demand.
///  * When total demand fits in physical memory, every process's working
///    set equals its allocation.
///  * When demand exceeds physical memory, the OS pages: working sets are
///    scaled down proportionally so they sum to physical memory (a simple
///    global-LRU approximation). This is exactly the pressure signal the
///    paper's governor reacts to by shrinking the pool.
///
/// This is substitution #1 in DESIGN.md: the control law above the sensor
/// is the paper's, unchanged.
class MemoryEnv {
 public:
  explicit MemoryEnv(uint64_t physical_bytes) : physical_(physical_bytes) {}

  uint64_t physical_bytes() const { return physical_; }

  /// Sets process `name`'s memory demand (creates the process if needed).
  void SetAllocation(const std::string& name, uint64_t bytes);

  /// Removes a process entirely.
  void RemoveProcess(const std::string& name);

  /// Current allocation of `name` (0 if absent).
  uint64_t Allocation(const std::string& name) const;

  /// Working-set size of `name` under the paging model described above.
  uint64_t WorkingSetSize(const std::string& name) const;

  /// Unused physical memory: physical - min(physical, total demand).
  uint64_t FreePhysical() const;

 private:
  uint64_t TotalDemandLocked() const REQUIRES(mu_);

  const uint64_t physical_;
  mutable RankedMutex<LockRank::kMemoryEnv> mu_;
  std::map<std::string, uint64_t> allocations_ GUARDED_BY(mu_);
};

}  // namespace hdb::os

#endif  // HDB_OS_MEMORY_ENV_H_
