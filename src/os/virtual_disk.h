#ifndef HDB_OS_VIRTUAL_DISK_H_
#define HDB_OS_VIRTUAL_DISK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "os/dtt_model.h"

namespace hdb::os {

/// A storage device with a simulated per-request service time.
///
/// This is substitution #2 in DESIGN.md: the paper calibrated against a
/// Seagate Barracuda 7200 RPM disk (Figure 2(b)) and a SanDisk 512 MB SD
/// card (Figure 3). VirtualDisk implements the same observable interface —
/// service time as a function of access position history — so CALIBRATE
/// DATABASE exercises the identical code path and the cost model can be
/// validated against "actual" (simulated) run times, Eq. (3).
///
/// Service times are returned, not slept; the caller accrues them on the
/// virtual clock.
class VirtualDisk {
 public:
  virtual ~VirtualDisk() = default;

  /// Service time in microseconds for reading the page at `page_id`,
  /// updating internal positioning state.
  virtual double ReadMicros(uint64_t page_id) = 0;

  /// Service time in microseconds for writing the page at `page_id`.
  virtual double WriteMicros(uint64_t page_id) = 0;

  /// Service time in microseconds for a cache flush (fsync) covering
  /// `pending_pages` buffered writes. This is the cost group commit
  /// amortizes: one flush per *batch* of commits instead of one per commit.
  virtual double SyncMicros(uint64_t pending_pages) {
    (void)pending_pages;
    return 0.0;
  }

  virtual uint64_t total_pages() const = 0;
  virtual uint32_t page_bytes() const = 0;
  virtual const char* name() const = 0;
};

/// Rotational disk: seek time grows with arm travel distance, half-rotation
/// latency on each discontiguous access, fixed transfer rate. A write-back
/// cache plus elevator scheduling discounts write positioning cost.
struct RotationalDiskOptions {
  uint64_t total_pages = 1 << 22;  // 16 GiB of 4K pages
  uint32_t page_bytes = 4096;
  double min_seek_us = 800.0;
  double full_seek_us = 8500.0;
  double rpm = 7200.0;
  double transfer_mbps = 70.0;
  /// Fraction of positioning cost paid by asynchronous writes.
  double write_discount = 0.6;
  uint64_t seed = 7;
};

class RotationalDisk : public VirtualDisk {
 public:
  explicit RotationalDisk(RotationalDiskOptions opts);

  double ReadMicros(uint64_t page_id) override;
  double WriteMicros(uint64_t page_id) override;
  double SyncMicros(uint64_t pending_pages) override;
  uint64_t total_pages() const override { return opts_.total_pages; }
  uint32_t page_bytes() const override { return opts_.page_bytes; }
  const char* name() const override { return "rotational-7200"; }

 private:
  double AccessMicros(uint64_t page_id, bool is_write);

  RotationalDiskOptions opts_;
  Rng rng_;
  uint64_t head_page_ = 0;
};

/// Flash/SD storage: position-independent access times (the paper's
/// Figure 3 shows uniform random-read latency on the SD card), with writes
/// several times costlier than reads due to program/erase cycles.
struct FlashDiskOptions {
  uint64_t total_pages = 131072;  // 512 MiB of 4K pages
  uint32_t page_bytes = 4096;
  double read_base_us = 180.0;
  double read_per_kb_us = 12.0;
  double write_base_us = 900.0;
  double write_per_kb_us = 110.0;
  /// Jitter fraction applied uniformly to each access.
  double jitter = 0.08;
  uint64_t seed = 11;
};

class FlashDisk : public VirtualDisk {
 public:
  explicit FlashDisk(FlashDiskOptions opts) : opts_(opts), rng_(opts.seed) {}

  double ReadMicros(uint64_t page_id) override;
  double WriteMicros(uint64_t page_id) override;
  double SyncMicros(uint64_t pending_pages) override;
  uint64_t total_pages() const override { return opts_.total_pages; }
  uint32_t page_bytes() const override { return opts_.page_bytes; }
  const char* name() const override { return "sd-card-512mb"; }

 private:
  double Jitter(double us);

  FlashDiskOptions opts_;
  Rng rng_;
};

/// Options controlling CALIBRATE DATABASE's probe sequence.
struct CalibrationOptions {
  std::vector<double> bands = {1,    4,     16,    64,     256,    1024,
                               4096, 16384, 65536, 262144, 1048576};
  int samples_per_band = 200;
  /// Number of write probes (at the smallest and largest band) used to fit
  /// the write-scale factor; the write curve is the read curve times that
  /// factor (paper §4.2: "the write DTT curve is approximated using the
  /// read curve as a baseline").
  int write_probe_samples = 64;
  uint64_t seed = 1234;
};

/// Runs the calibration probe sequence against `disk` and returns a
/// calibrated DttModel containing a measured read curve and the
/// read-derived write curve for the disk's page size.
DttModel CalibrateDisk(VirtualDisk& disk, const CalibrationOptions& opts);

}  // namespace hdb::os

#endif  // HDB_OS_VIRTUAL_DISK_H_
