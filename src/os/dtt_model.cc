#include "os/dtt_model.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace hdb::os {

namespace {

// Default-model constants, chosen to reproduce the shape and magnitudes of
// the paper's Figure 2(a): sequential cost is bare transfer time; random
// cost saturates near a full seek + rotational latency (~12-16 ms at band
// sizes in the low thousands on a 2007-era 7200 RPM disk).
constexpr double kTransferMbps = 60.0;           // sustained transfer rate
constexpr double kRotationalLatencyUs = 4170.0;  // half-rotation at 7200 RPM
constexpr double kMinSeekUs = 1500.0;
constexpr double kMaxSeekUs = 9000.0;
// Band size (pages) at which arm travel reaches ~63% of full stroke.
constexpr double kSeekBandScale = 1200.0;
// Asynchronous writes see this fraction of the read positioning cost
// (elevator scheduling + write-behind).
constexpr double kWriteDiscount = 0.55;

double TransferMicros(uint32_t page_bytes) {
  return static_cast<double>(page_bytes) / (kTransferMbps * 1e6) * 1e6;
}

}  // namespace

DttModel DttModel::Default() { return DttModel(); }

DttModel DttModel::Calibrated(std::string device_name) {
  DttModel m;
  m.is_default_ = false;
  m.device_name_ = std::move(device_name);
  return m;
}

double DttModel::DefaultMicros(DttOp op, uint32_t page_bytes,
                               double band_pages) const {
  const double band = std::max(1.0, band_pages);
  const double transfer = TransferMicros(page_bytes);
  // Probability that an access within the band requires repositioning.
  const double p_seek = (band - 1.0) / band;
  // Arm travel grows with band size, saturating at the full stroke.
  const double seek =
      kMinSeekUs +
      (kMaxSeekUs - kMinSeekUs) * (1.0 - std::exp(-band / kSeekBandScale));
  const double positioning = p_seek * (seek + kRotationalLatencyUs);
  const double discount = (op == DttOp::kWrite) ? kWriteDiscount : 1.0;
  return transfer + positioning * discount;
}

double DttModel::Interpolate(const Curve& c, double band) {
  if (c.bands.empty()) return 0.0;
  const double b = std::max(1.0, band);
  if (b <= c.bands.front()) return c.micros.front();
  if (b >= c.bands.back()) return c.micros.back();
  const auto it = std::lower_bound(c.bands.begin(), c.bands.end(), b);
  const size_t hi = static_cast<size_t>(it - c.bands.begin());
  const size_t lo = hi - 1;
  const double x0 = std::log(c.bands[lo]);
  const double x1 = std::log(c.bands[hi]);
  const double x = std::log(b);
  const double t = (x1 == x0) ? 0.0 : (x - x0) / (x1 - x0);
  return c.micros[lo] + t * (c.micros[hi] - c.micros[lo]);
}

double DttModel::MicrosPerPage(DttOp op, uint32_t page_bytes,
                               double band_pages) const {
  if (is_default_) return DefaultMicros(op, page_bytes, band_pages);
  auto it = curves_.find({static_cast<int>(op), page_bytes});
  if (it == curves_.end()) {
    // Fall back to any curve for this op with the nearest page size,
    // scaling the transfer component is overkill for statistics purposes;
    // use the curve as-is, else the default model.
    for (const auto& [key, curve] : curves_) {
      if (key.first == static_cast<int>(op)) return Interpolate(curve, band_pages);
    }
    return DefaultMicros(op, page_bytes, band_pages);
  }
  return Interpolate(it->second, band_pages);
}

void DttModel::SetCurve(DttOp op, uint32_t page_bytes, Curve curve) {
  is_default_ = false;
  curves_[{static_cast<int>(op), page_bytes}] = std::move(curve);
}

std::string DttModel::Serialize() const {
  std::ostringstream out;
  out << std::setprecision(12);
  out << "dtt v1 " << (is_default_ ? "default" : "calibrated") << " "
      << device_name_ << "\n";
  for (const auto& [key, curve] : curves_) {
    out << (key.first == 0 ? "read" : "write") << " " << key.second << " "
        << curve.bands.size();
    for (size_t i = 0; i < curve.bands.size(); ++i) {
      out << " " << curve.bands[i] << " " << curve.micros[i];
    }
    out << "\n";
  }
  return out.str();
}

Result<DttModel> DttModel::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version, kind, device;
  in >> magic >> version >> kind >> device;
  if (magic != "dtt" || version != "v1") {
    return Status::InvalidArgument("not a DTT model blob");
  }
  if (kind == "default") return DttModel::Default();
  DttModel m = DttModel::Calibrated(device);
  std::string op_name;
  while (in >> op_name) {
    uint32_t page_bytes = 0;
    size_t n = 0;
    if (!(in >> page_bytes >> n)) {
      return Status::InvalidArgument("truncated DTT curve header");
    }
    Curve c;
    for (size_t i = 0; i < n; ++i) {
      double band = 0, us = 0;
      if (!(in >> band >> us)) {
        return Status::InvalidArgument("truncated DTT curve points");
      }
      c.bands.push_back(band);
      c.micros.push_back(us);
    }
    const DttOp op = (op_name == "write") ? DttOp::kWrite : DttOp::kRead;
    m.SetCurve(op, page_bytes, std::move(c));
  }
  return m;
}

}  // namespace hdb::os
