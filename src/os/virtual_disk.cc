#include "os/virtual_disk.h"

#include <algorithm>
#include <cmath>

namespace hdb::os {

RotationalDisk::RotationalDisk(RotationalDiskOptions opts)
    : opts_(opts), rng_(opts.seed) {}

double RotationalDisk::AccessMicros(uint64_t page_id, bool is_write) {
  const uint64_t clamped = std::min(page_id, opts_.total_pages - 1);
  const double transfer =
      static_cast<double>(opts_.page_bytes) / (opts_.transfer_mbps * 1e6) * 1e6;

  double positioning = 0.0;
  const bool sequential = (clamped == head_page_ + 1 || clamped == head_page_);
  if (!sequential) {
    const double dist = static_cast<double>(
        clamped > head_page_ ? clamped - head_page_ : head_page_ - clamped);
    const double frac =
        std::sqrt(dist / static_cast<double>(opts_.total_pages));
    const double seek =
        opts_.min_seek_us + (opts_.full_seek_us - opts_.min_seek_us) * frac;
    // Rotational latency uniform in [0, full rotation).
    const double rot = rng_.NextDouble() * (60.0e6 / opts_.rpm);
    positioning = seek + rot;
    if (is_write) positioning *= opts_.write_discount;
  }
  head_page_ = clamped;
  return transfer + positioning;
}

double RotationalDisk::ReadMicros(uint64_t page_id) {
  return AccessMicros(page_id, /*is_write=*/false);
}

double RotationalDisk::WriteMicros(uint64_t page_id) {
  return AccessMicros(page_id, /*is_write=*/true);
}

double RotationalDisk::SyncMicros(uint64_t pending_pages) {
  // Draining the write-back cache pays the positioning costs the async
  // writes were discounted: roughly half a rotation to settle, plus the
  // elevator pass over the pending pages.
  const double settle = 0.5 * (60.0e6 / opts_.rpm);
  const double per_page = (1.0 - opts_.write_discount) * opts_.min_seek_us;
  return settle + per_page * static_cast<double>(pending_pages);
}

double FlashDisk::Jitter(double us) {
  const double j = 1.0 + (rng_.NextDouble() * 2.0 - 1.0) * opts_.jitter;
  return us * j;
}

double FlashDisk::ReadMicros(uint64_t page_id) {
  (void)page_id;  // Flash latency is position-independent.
  const double kb = static_cast<double>(opts_.page_bytes) / 1024.0;
  return Jitter(opts_.read_base_us + opts_.read_per_kb_us * kb);
}

double FlashDisk::WriteMicros(uint64_t page_id) {
  (void)page_id;
  const double kb = static_cast<double>(opts_.page_bytes) / 1024.0;
  return Jitter(opts_.write_base_us + opts_.write_per_kb_us * kb);
}

double FlashDisk::SyncMicros(uint64_t pending_pages) {
  // Flash flush: fixed controller barrier plus program cost for whatever
  // is still buffered.
  return Jitter(opts_.write_base_us +
                0.25 * opts_.write_base_us * static_cast<double>(pending_pages));
}

DttModel CalibrateDisk(VirtualDisk& disk, const CalibrationOptions& opts) {
  Rng rng(opts.seed);
  const uint64_t total = disk.total_pages();

  DttModel::Curve read_curve;
  for (const double band : opts.bands) {
    const auto band_pages =
        static_cast<uint64_t>(std::min<double>(band, static_cast<double>(total)));
    if (band_pages == 0) continue;
    // Place the band in the middle of the device so full-stroke seeks do
    // not dominate small bands.
    const uint64_t start =
        band_pages >= total ? 0 : (total - band_pages) / 2;
    double sum = 0.0;
    if (band_pages == 1) {
      // Sequential probe: consecutive pages.
      for (int i = 0; i < opts.samples_per_band; ++i) {
        sum += disk.ReadMicros(start + static_cast<uint64_t>(i));
      }
    } else {
      for (int i = 0; i < opts.samples_per_band; ++i) {
        sum += disk.ReadMicros(start + rng.Uniform(band_pages));
      }
    }
    read_curve.bands.push_back(static_cast<double>(band_pages));
    read_curve.micros.push_back(sum / opts.samples_per_band);
  }

  // Fit the write factor from a few probes at the largest band; the write
  // curve is then the read curve scaled by that factor.
  double write_factor = 1.0;
  if (!read_curve.bands.empty() && opts.write_probe_samples > 0) {
    const auto band_pages = static_cast<uint64_t>(read_curve.bands.back());
    const uint64_t start = band_pages >= total ? 0 : (total - band_pages) / 2;
    double wsum = 0.0, rsum = 0.0;
    for (int i = 0; i < opts.write_probe_samples; ++i) {
      wsum += disk.WriteMicros(start + rng.Uniform(std::max<uint64_t>(1, band_pages)));
      rsum += disk.ReadMicros(start + rng.Uniform(std::max<uint64_t>(1, band_pages)));
    }
    if (rsum > 0) write_factor = wsum / rsum;
  }
  DttModel::Curve write_curve = read_curve;
  for (auto& us : write_curve.micros) us *= write_factor;

  DttModel model = DttModel::Calibrated(disk.name());
  model.SetCurve(DttOp::kRead, disk.page_bytes(), std::move(read_curve));
  model.SetCurve(DttOp::kWrite, disk.page_bytes(), std::move(write_curve));
  return model;
}

}  // namespace hdb::os
