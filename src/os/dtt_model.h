#ifndef HDB_OS_DTT_MODEL_H_
#define HDB_OS_DTT_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hdb::os {

enum class DttOp { kRead = 0, kWrite = 1 };

/// Disk-Transfer-Time model (paper §4.2, Figures 2–3).
///
/// DTT(band) is the amortized cost, in microseconds, of transferring one
/// page chosen randomly within a contiguous *band* of `band` pages. A band
/// of 1 is sequential I/O; larger bands raise the probability that each
/// access needs a seek and lengthen the arm travel. Write curves lie below
/// read curves at large bands because database writes are asynchronous and
/// benefit from scheduling (paper §4.2's "counterintuitive" observation).
///
/// A DttModel is either the built-in generic analytic model (Figure 2(a)),
/// or a calibrated table of (band, microseconds) sample points per
/// (operation, page size) produced by CALIBRATE DATABASE (Figure 2(b), 3).
/// Models serialize to a small text blob stored in the catalog, so a model
/// calibrated on one representative device can be deployed to thousands of
/// databases (paper §4.2).
class DttModel {
 public:
  /// One calibrated curve: sample points sorted by band, interpolated
  /// piecewise-linearly in log(band), clamped at the extremes.
  struct Curve {
    std::vector<double> bands;
    std::vector<double> micros;
  };

  /// The generic default model validated "over a variety of machine
  /// architectures and disk subsystems".
  static DttModel Default();

  /// An empty calibrated model; add curves with SetCurve.
  static DttModel Calibrated(std::string device_name);

  /// Amortized microseconds to transfer one page of `page_bytes` randomly
  /// placed within a band of `band_pages` pages.
  double MicrosPerPage(DttOp op, uint32_t page_bytes,
                       double band_pages) const;

  /// Installs/replaces the curve for (op, page_bytes).
  void SetCurve(DttOp op, uint32_t page_bytes, Curve curve);

  bool is_default() const { return is_default_; }
  const std::string& device_name() const { return device_name_; }

  /// Catalog text encoding; round-trips through Parse.
  std::string Serialize() const;
  static Result<DttModel> Parse(const std::string& text);

 private:
  DttModel() = default;

  double DefaultMicros(DttOp op, uint32_t page_bytes,
                       double band_pages) const;
  static double Interpolate(const Curve& c, double band);

  bool is_default_ = true;
  std::string device_name_ = "generic";
  // Key: (op, page_bytes).
  std::map<std::pair<int, uint32_t>, Curve> curves_;
};

}  // namespace hdb::os

#endif  // HDB_OS_DTT_MODEL_H_
