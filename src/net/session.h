#ifndef HDB_NET_SESSION_H_
#define HDB_NET_SESSION_H_

// Per-connection protocol state machine (DESIGN.md §12). A Session owns
// one engine::Connection plus everything that must survive between
// readiness events — handshake state, prepared statements, transaction
// state — which is what decouples a client connection from any OS thread:
// N sessions multiplex onto a small worker pool, and a worker only
// touches a session for the duration of one inbound frame (the paper's
// §2.1 cooperative-task model, with epoll readiness instead of fiber
// yields).
//
// Sessions contain no sockets and no locks: the server serializes frame
// handling per connection (one worker at a time), and the codec tests
// drive a Session directly against an in-memory FrameSink.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/wire.h"

namespace hdb::engine {
class Connection;
class Database;
}  // namespace hdb::engine

namespace hdb::obs {
class Counter;
}  // namespace hdb::obs

namespace hdb::net {

/// Where a session's response frames go. The server's sink appends to the
/// connection's write buffer and may block on backpressure (recording a
/// wait.net_write on the current statement trace); tests use a string.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// Returns false when the connection is gone — the caller must abort
  /// serialization (the session stays consistent; the server reaps it).
  virtual bool Write(std::string_view bytes) = 0;
};

/// What the server should do with the connection after a frame.
enum class SessionAction {
  kContinue,         // keep reading
  kCloseAfterFlush,  // flush the write buffer, then close (graceful)
  kCloseNow,         // framing is lost or the peer is gone: close
};

/// Counters shared by all sessions (registered once by the server; null
/// in codec-only tests — mutation helpers below are null-safe).
struct SessionCounters {
  obs::Counter* statements = nullptr;
  obs::Counter* overloads = nullptr;
  obs::Counter* protocol_errors = nullptr;
};

struct SessionOptions {
  /// Prepared statements one connection may hold open.
  size_t max_prepared = 256;
  /// Retry hint stamped into overload frames.
  uint32_t overload_retry_ms = 250;
  /// Fast-path shedding: when this many statements are already queued on
  /// the admission gate, answer kOverloaded immediately instead of
  /// joining the queue (a worker blocked in the queue serves nobody).
  /// 0 disables the fast path (only gate timeouts shed then).
  size_t overload_waiting_limit = 32;
  /// Serialization staging: row frames accumulate to about this many
  /// bytes before each sink Write, so per-row sink overhead (a lock +
  /// an eventfd wake in the server) amortizes across rows.
  size_t flush_stage_bytes = 32 * 1024;
  WireLimits wire;
};

class Session {
 public:
  /// `db` must outlive the session. The engine connection is created
  /// eagerly; a Connect failure is returned so the server can refuse the
  /// socket with an error frame.
  static Result<std::unique_ptr<Session>> Create(engine::Database* db,
                                                 std::string peer,
                                                 SessionOptions options,
                                                 SessionCounters counters);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Handles one inbound frame, appending response frames to `sink`.
  /// Called by exactly one worker at a time (server-serialized).
  SessionAction HandleFrame(const Frame& frame, FrameSink* sink);

  // --- sys.connections row source (any thread) ---------------------------
  uint64_t conn_id() const;  // the engine connection id
  const std::string& peer() const { return peer_; }
  bool handshake_done() const {
    return hello_done_.load(std::memory_order_relaxed);
  }
  bool in_explicit_txn() const {
    return in_txn_.load(std::memory_order_relaxed);
  }
  uint64_t prepared_count() const {
    return prepared_live_.load(std::memory_order_relaxed);
  }
  uint64_t statements_executed() const {
    return statements_.load(std::memory_order_relaxed);
  }

 private:
  Session(engine::Database* db, std::unique_ptr<engine::Connection> conn,
          std::string peer, SessionOptions options, SessionCounters counters);

  SessionAction HandleHello(PayloadReader* in, FrameSink* sink);
  SessionAction HandleQuery(PayloadReader* in, FrameSink* sink);
  SessionAction HandlePrepare(PayloadReader* in, FrameSink* sink);
  SessionAction HandleBind(PayloadReader* in, FrameSink* sink);
  SessionAction HandleExecute(PayloadReader* in, FrameSink* sink);
  SessionAction HandleClosePrepared(PayloadReader* in, FrameSink* sink);

  /// Runs `sql` through the engine under a statement trace that spans
  /// execution AND result serialization (so write-backpressure stalls
  /// attribute to the statement), streaming result frames to `sink`.
  SessionAction RunStatement(const std::string& sql, FrameSink* sink);

  /// Appends an error frame for `s`; kOverloaded gets the dedicated
  /// overload frame with a retry hint.
  void WriteStatusFrame(const Status& s, std::string* out);

  struct Prepared {
    std::vector<std::string> parts;  // N+1 parts around N placeholders
    std::vector<Value> bound;
  };

  engine::Database* db_;
  std::unique_ptr<engine::Connection> conn_;
  const std::string peer_;
  const SessionOptions options_;
  SessionCounters counters_;

  std::map<uint32_t, Prepared> prepared_;
  uint32_t next_prepared_id_ = 1;

  // Worker-written, any-thread-read (sys.connections).
  std::atomic<bool> hello_done_{false};
  std::atomic<bool> in_txn_{false};
  std::atomic<uint64_t> prepared_live_{0};
  std::atomic<uint64_t> statements_{0};
};

}  // namespace hdb::net

#endif  // HDB_NET_SESSION_H_
