#include "net/wire.h"

#include <cstdio>
#include <cstring>

namespace hdb::net {

bool IsClientOpcode(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kHello:
    case Opcode::kQuery:
    case Opcode::kPrepare:
    case Opcode::kBind:
    case Opcode::kExecute:
    case Opcode::kClosePrepared:
    case Opcode::kClose:
    case Opcode::kPing:
      return true;
    default:
      return false;
  }
}

// --- Encoding --------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  PutU8(out, v.is_null() ? 1 : 0);
  if (v.is_null()) return;
  switch (v.type()) {
    case TypeId::kBoolean:
      PutU8(out, v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt:
    case TypeId::kBigint:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      PutI64(out, v.AsInt());
      break;
    case TypeId::kDouble:
      PutDouble(out, v.AsDouble());
      break;
    case TypeId::kVarchar:
      PutString(out, v.AsString());
      break;
  }
}

// --- PayloadReader ---------------------------------------------------------

Status PayloadReader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::InvalidArgument("truncated payload: need " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> PayloadReader::U8() {
  HDB_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> PayloadReader::U16() {
  HDB_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> PayloadReader::U32() {
  HDB_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::U64() {
  HDB_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> PayloadReader::I64() {
  HDB_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> PayloadReader::Double() {
  HDB_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> PayloadReader::String() {
  HDB_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (len > limits_.max_string_bytes) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds wire limit");
  }
  HDB_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> PayloadReader::GetValue() {
  HDB_ASSIGN_OR_RETURN(uint8_t tag, U8());
  if (tag > static_cast<uint8_t>(TypeId::kTimestamp)) {
    return Status::InvalidArgument("bad value type tag " +
                                   std::to_string(tag));
  }
  const TypeId type = static_cast<TypeId>(tag);
  HDB_ASSIGN_OR_RETURN(uint8_t flags, U8());
  if ((flags & ~1u) != 0) {
    return Status::InvalidArgument("bad value flags " + std::to_string(flags));
  }
  if (flags & 1u) return Value::Null(type);
  switch (type) {
    case TypeId::kBoolean: {
      HDB_ASSIGN_OR_RETURN(uint8_t b, U8());
      if (b > 1) {
        return Status::InvalidArgument("bad boolean byte " +
                                       std::to_string(b));
      }
      return Value::Boolean(b != 0);
    }
    case TypeId::kInt: {
      HDB_ASSIGN_OR_RETURN(int64_t i, I64());
      if (i < INT32_MIN || i > INT32_MAX) {
        return Status::InvalidArgument("INT value out of 32-bit range");
      }
      return Value::Int(static_cast<int32_t>(i));
    }
    case TypeId::kBigint: {
      HDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Bigint(i);
    }
    case TypeId::kDate: {
      HDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Date(i);
    }
    case TypeId::kTimestamp: {
      HDB_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Timestamp(i);
    }
    case TypeId::kDouble: {
      HDB_ASSIGN_OR_RETURN(double d, Double());
      return Value::Double(d);
    }
    case TypeId::kVarchar: {
      HDB_ASSIGN_OR_RETURN(std::string s, String());
      return Value::String(std::move(s));
    }
  }
  return Status::Internal("unreachable value tag");
}

Status PayloadReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument(std::to_string(remaining()) +
                                   " trailing bytes after payload");
  }
  return Status::OK();
}

// --- Frames ----------------------------------------------------------------

void AppendFrame(std::string* out, Opcode op, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size() + 1));
  PutU8(out, static_cast<uint8_t>(op));
  out->append(payload.data(), payload.size());
}

void AppendErrorFrame(std::string* out, StatusCode code,
                      std::string_view message) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(code));
  PutString(&payload, message);
  AppendFrame(out, Opcode::kError, payload);
}

void AppendOverloadedFrame(std::string* out, uint32_t retry_after_ms,
                           std::string_view message) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(StatusCode::kOverloaded));
  PutU32(&payload, retry_after_ms);
  PutString(&payload, message);
  AppendFrame(out, Opcode::kOverloaded, payload);
}

void AppendGoodbyeFrame(std::string* out, std::string_view reason) {
  std::string payload;
  PutString(&payload, reason);
  AppendFrame(out, Opcode::kGoodbye, payload);
}

void AppendDoneFrame(std::string* out, uint64_t rows_affected,
                     uint64_t row_count) {
  std::string payload;
  PutU64(&payload, rows_affected);
  PutU64(&payload, row_count);
  AppendFrame(out, Opcode::kDone, payload);
}

void FrameAssembler::Feed(const char* data, size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer stays proportional to its unparsed tail.
  if (consumed_ > 4096 && consumed_ > buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(data, size);
}

Result<std::optional<Frame>> FrameAssembler::Next() {
  if (poisoned_) {
    return Status::InvalidArgument("frame stream poisoned by earlier error");
  }
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::optional<Frame>();
  const uint8_t* p =
      reinterpret_cast<const uint8_t*>(buf_.data()) + consumed_;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(p[i]) << (8 * i);
  if (len == 0 || len > limits_.max_frame_bytes) {
    poisoned_ = true;
    return Status::InvalidArgument("bad frame length " + std::to_string(len));
  }
  if (avail < 4 + static_cast<size_t>(len)) return std::optional<Frame>();
  Frame f;
  f.opcode = p[4];
  f.payload = std::string_view(buf_.data() + consumed_ + 5, len - 1);
  consumed_ += 4 + len;
  return std::optional<Frame>(f);
}

// --- SQL literal rendering -------------------------------------------------

std::string SqlLiteral(const Value& v) {
  if (v.is_null()) return "NULL";
  switch (v.type()) {
    case TypeId::kBoolean:
      return v.AsBool() ? "TRUE" : "FALSE";
    case TypeId::kInt:
    case TypeId::kBigint:
    case TypeId::kDate:
    case TypeId::kTimestamp: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(v.AsInt()));
      return buf;
    }
    case TypeId::kDouble: {
      char buf[64];
      // %.17g round-trips every IEEE double through the lexer.
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    case TypeId::kVarchar: {
      std::string out;
      out.reserve(v.AsString().size() + 2);
      out.push_back('\'');
      for (char c : v.AsString()) {
        if (c == '\'') out.push_back('\'');  // '' doubling, lexer-compatible
        out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
  }
  return "NULL";
}

std::vector<std::string> SplitOnPlaceholders(const std::string& sql) {
  std::vector<std::string> parts;
  std::string cur;
  bool in_string = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_string) {
      cur.push_back(c);
      if (c == '\'') {
        // '' inside a string is an escaped quote, not a terminator.
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          cur.push_back(sql[++i]);
        } else {
          in_string = false;
        }
      }
    } else if (c == '\'') {
      in_string = true;
      cur.push_back(c);
    } else if (c == '?') {
      parts.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(std::move(cur));
  return parts;
}

}  // namespace hdb::net
