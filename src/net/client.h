#ifndef HDB_NET_CLIENT_H_
#define HDB_NET_CLIENT_H_

// Blocking client for the wire protocol (DESIGN.md §12): one socket, one
// outstanding request. This is what the bench's closed-loop sessions, the
// smoke test, and examples/hdb_client.cc use; it is deliberately simple —
// the interesting concurrency lives on the server.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "net/wire.h"

namespace hdb::net {

/// One statement's outcome over the wire.
struct NetResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  uint64_t rows_affected = 0;
  uint64_t row_count = 0;  // server-reported; == rows.size()
};

struct ClientOptions {
  std::string client_name = "hdb-client";
  /// SO_RCVTIMEO per response read; 0 = block forever.
  uint64_t recv_timeout_ms = 0;
  WireLimits wire;
};

/// Thread-compatible, not thread-safe: one owner at a time, like an
/// engine::Connection.
class Client {
 public:
  /// TCP connect + protocol handshake. A server at max_connections
  /// answers the connect with an overload frame — surfaced here as
  /// StatusCode::kOverloaded (retry_after_ms() carries the hint).
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Simple query. A kOverloaded frame becomes StatusCode::kOverloaded;
  /// other error frames carry the server's status code through verbatim.
  Result<NetResult> Query(const std::string& sql);

  /// Prepared statements: Prepare returns the server-assigned id;
  /// param_count() of the returned handle is the '?' count.
  struct PreparedInfo {
    uint32_t stmt_id = 0;
    uint16_t param_count = 0;
  };
  Result<PreparedInfo> Prepare(const std::string& sql);
  Status Bind(uint32_t stmt_id, const std::vector<Value>& params);
  Result<NetResult> ExecutePrepared(uint32_t stmt_id);
  Status ClosePrepared(uint32_t stmt_id);

  Status Ping();
  /// Graceful close: kClose, wait for kCloseOk, shut the socket down.
  Status Close();

  /// Server-assigned connection id from the handshake (sys.connections /
  /// sys.active_statements key).
  uint64_t conn_id() const { return conn_id_; }
  /// Retry hint from the most recent kOverloaded frame (0 if none).
  uint32_t retry_after_ms() const { return retry_after_ms_; }
  /// True once the server sent kGoodbye (drain or idle shed).
  bool server_said_goodbye() const { return goodbye_; }
  const std::string& goodbye_reason() const { return goodbye_reason_; }

 private:
  Client(int fd, ClientOptions options);

  Status SendFrame(Opcode op, std::string_view payload);
  /// Blocks until one complete frame arrives (feeding the assembler).
  Result<Frame> ReadFrame(std::string* storage);
  /// Reads the response stream of a statement: header/rows/done/error.
  Result<NetResult> ReadResult();
  Status StatusFromError(const Frame& frame);

  int fd_ = -1;
  ClientOptions options_;
  FrameAssembler assembler_;
  uint64_t conn_id_ = 0;
  uint32_t retry_after_ms_ = 0;
  bool goodbye_ = false;
  std::string goodbye_reason_;
};

}  // namespace hdb::net

#endif  // HDB_NET_CLIENT_H_
