#ifndef HDB_NET_WIRE_H_
#define HDB_NET_WIRE_H_

// Length-prefixed binary wire protocol for the network front end
// (DESIGN.md §12). The codec is standalone: no sockets, no engine types
// beyond Value/Status — the server, the client library, the fuzz tests
// and the bench all speak through these functions.
//
// Frame layout (all integers little-endian):
//
//   u32 length   — byte count of everything after this field (>= 1)
//   u8  opcode   — Opcode below
//   ...payload   — length-1 bytes, opcode-specific
//
// A frame whose length field exceeds WireLimits::max_frame_bytes, or whose
// length is zero, is a protocol violation: the connection is poisoned (the
// peer's framing is lost, resynchronization is impossible) and must be
// closed after an error frame. Payload-level malformations (truncated
// string, bad type tag, unknown opcode) are recoverable: framing is still
// intact, so the server answers with an error frame and keeps the
// connection (tests/net_wire_test.cc drives both classes with a seeded
// mutation corpus).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace hdb::net {

/// Protocol version exchanged in the handshake. Bump on any frame-layout
/// change; the server rejects mismatched clients with kError.
inline constexpr uint32_t kProtocolVersion = 1;

enum class Opcode : uint8_t {
  // client → server
  kHello = 0x01,          // u32 version, str client_name
  kQuery = 0x02,          // str sql
  kPrepare = 0x03,        // str sql ('?' placeholders) → kPrepareOk
  kBind = 0x04,           // u32 stmt_id, u16 n, n × value → kBindOk
  kExecute = 0x05,        // u32 stmt_id → result stream
  kClosePrepared = 0x06,  // u32 stmt_id → kDone{0,0}
  kClose = 0x07,          // graceful close → kCloseOk, then FIN
  kPing = 0x08,           // liveness → kPong

  // server → client
  kHelloOk = 0x81,     // u32 version, u64 conn_id, str server_name
  kPrepareOk = 0x82,   // u32 stmt_id, u16 param_count
  kBindOk = 0x83,      // (empty)
  kRowHeader = 0x84,   // u16 ncols, ncols × str
  kRow = 0x85,         // u16 nvals, nvals × value
  kDone = 0x86,        // u64 rows_affected, u64 row_count
  kError = 0x87,       // u8 status_code, str message
  kOverloaded = 0x88,  // u8 status_code, u32 retry_after_ms, str message
  kCloseOk = 0x89,     // (empty)
  kGoodbye = 0x8a,     // str reason — server-initiated close (shed/drain)
  kPong = 0x8b,        // (empty)
};

/// True for opcodes a client may legally send (server-side validation).
bool IsClientOpcode(uint8_t op);

struct WireLimits {
  /// Hard cap on one frame (length field). Larger is a framing violation.
  uint32_t max_frame_bytes = 16u << 20;
  /// Cap on one encoded string within a payload (sql text, error message).
  uint32_t max_string_bytes = 4u << 20;
};

// --- Payload primitives ----------------------------------------------------

/// Appends fixed-width primitives / length-prefixed strings to `out`.
/// Encoding never fails; the frame writer enforces limits at frame end.
void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
void PutString(std::string* out, std::string_view s);
/// Value: u8 TypeId, u8 flags (bit0 = SQL NULL), then the typed payload.
void PutValue(std::string* out, const Value& v);

/// Bounds-checked payload reader. Every getter fails with
/// kInvalidArgument once the payload is exhausted or a nested length is
/// inconsistent — never reads past `size`.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size, WireLimits limits = {})
      : data_(data), size_(size), limits_(limits) {}
  explicit PayloadReader(std::string_view payload, WireLimits limits = {})
      : PayloadReader(reinterpret_cast<const uint8_t*>(payload.data()),
                      payload.size(), limits) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> Double();
  Result<std::string> String();
  Result<Value> GetValue();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// Fails unless the payload was consumed exactly — trailing garbage in
  /// a payload is as malformed as a truncated one.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  WireLimits limits_;
};

// --- Frames ----------------------------------------------------------------

/// One decoded frame. `payload` views into the assembler's buffer and is
/// only valid until the next Next()/Feed() call.
struct Frame {
  uint8_t opcode = 0;
  std::string_view payload;
};

/// Appends a complete frame (length + opcode + payload) to `out`.
void AppendFrame(std::string* out, Opcode op, std::string_view payload);

// Convenience encoders for the fixed server frames.
void AppendErrorFrame(std::string* out, StatusCode code,
                      std::string_view message);
void AppendOverloadedFrame(std::string* out, uint32_t retry_after_ms,
                           std::string_view message);
void AppendGoodbyeFrame(std::string* out, std::string_view reason);
void AppendDoneFrame(std::string* out, uint64_t rows_affected,
                     uint64_t row_count);

/// Incremental frame extractor over a byte stream. Feed() appends raw
/// bytes; Next() yields complete frames until the buffer holds only a
/// partial frame. A framing violation (zero or oversized length) makes
/// Next() return an error, after which the assembler is poisoned: the
/// stream cannot be re-synchronized and the connection must be closed.
class FrameAssembler {
 public:
  explicit FrameAssembler(WireLimits limits = {}) : limits_(limits) {}

  void Feed(const char* data, size_t size);
  void Feed(std::string_view data) { Feed(data.data(), data.size()); }

  /// nullopt = no complete frame buffered (or poisoned after error).
  Result<std::optional<Frame>> Next();

  bool poisoned() const { return poisoned_; }
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  WireLimits limits_;
  std::string buf_;
  size_t consumed_ = 0;  // bytes of buf_ already returned as frames
  bool poisoned_ = false;
};

/// Renders `v` as a SQL literal the engine's lexer round-trips: NULL /
/// TRUE / FALSE bare, integers and %.17g doubles bare, strings quoted
/// with '' doubling. Used to splice bound parameters into a prepared
/// statement's text (DESIGN.md §12).
std::string SqlLiteral(const Value& v);

/// Splits `sql` on '?' placeholders outside single-quoted strings.
/// Returns the N+1 text parts around N placeholders.
std::vector<std::string> SplitOnPlaceholders(const std::string& sql);

}  // namespace hdb::net

#endif  // HDB_NET_WIRE_H_
