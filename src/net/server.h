#ifndef HDB_NET_SERVER_H_
#define HDB_NET_SERVER_H_

// Epoll front end (DESIGN.md §12): one event-loop thread owns every
// socket (edge-triggered, nonblocking) and a small worker pool executes
// statements, so thousands of idle connections cost the server nothing
// but a Session each — the MPL gate, not the connection count, bounds
// concurrent execution (paper §2.1, Eq. (5)).
//
// Threading:
//   event loop   accepts, reads into each connection's FrameAssembler,
//                writes out each connection's write buffer, closes fds.
//                It is the only thread that touches a socket.
//   workers      pop a ready connection, drain its complete frames
//                through Session::HandleFrame (which runs SQL under the
//                admission gate), and append response bytes to the
//                connection's write buffer. A worker never holds the
//                connection mutex across engine execution — engine locks
//                rank below kNetSession.
//   backpressure a worker whose connection's write buffer is over the
//                high-water mark sleeps on the connection's cv until the
//                event loop drains it (recorded as wait.net_write on the
//                statement's trace); a stall past the timeout kills the
//                connection instead of hanging the worker forever.
//
// Overload: admission-gate timeouts surface as kOverloaded frames; a deep
// admission queue is shed *before* queueing (Session fast path); sockets
// past max_connections are refused with an overload frame at accept.
// Idle connections past idle_timeout_ms get a Goodbye and a close.
// RequestShutdown() (async-signal-safe — SIGTERM handlers call it) stops
// accepting, sends every connection a Goodbye, flushes, and exits the
// loop once drained or at drain_timeout_ms.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/result.h"
#include "engine/database.h"
#include "net/session.h"

namespace hdb::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  /// Statement-executing workers. Sized to CPUs, not connections: the MPL
  /// gate inside the engine is the real concurrency bound.
  int workers = 2;
  /// Accept cap; sockets past it are refused with an overload frame.
  size_t max_connections = 4096;
  /// 0 disables idle shedding.
  uint64_t idle_timeout_ms = 0;
  /// How long a SIGTERM drain waits for connections to flush and go.
  uint64_t drain_timeout_ms = 2000;
  /// Write-buffer high-water mark: workers stall (wait.net_write) above it.
  size_t write_high_water = 4u << 20;
  /// A backpressure stall longer than this kills the connection — a
  /// client that stopped reading must not pin a worker forever.
  uint64_t write_stall_timeout_ms = 30'000;
  SessionOptions session;
};

/// Point-in-time server counters (tests and the bench read these; the
/// same values export as net.* metrics).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  size_t active = 0;
};

class Server {
 public:
  /// Binds, registers net.* metrics and the sys.connections provider on
  /// `db`, and starts the event loop + workers. `db` must outlive the
  /// server; stop the server before closing the database (the provider
  /// and metric callbacks reach into it, like a profiler trace hook).
  static Result<std::unique_ptr<Server>> Start(engine::Database* db,
                                               ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }

  /// Begins a graceful drain. Async-signal-safe (one eventfd write) —
  /// this is the SIGTERM handler's call. Returns immediately; the event
  /// loop drains connections in the background.
  void RequestShutdown();

  /// RequestShutdown + join everything. Idempotent; ~Server calls it.
  void Stop();

  /// True once the event loop has fully drained and exited.
  bool finished() const { return loop_done_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  /// Per-connection state. The fd and epoll registration belong to the
  /// event-loop thread; everything under `mu` (rank kNetSession) is shared
  /// between the event loop and whichever worker currently owns the
  /// connection's frames. The atomics at the bottom are read lock-free by
  /// stats()/sys.connections. Defined here (not in the .cc) so the
  /// annotations below can name `mu` from Server's method declarations.
  struct Conn {
    int fd = -1;  // event-loop thread only; -1 once closed
    std::string peer;
    std::unique_ptr<Session> session;

    RankedMutex<LockRank::kNetSession> mu;
    std::condition_variable_any write_cv;  // backpressure waiters
    FrameAssembler assembler GUARDED_BY(mu);
    std::string write_buf GUARDED_BY(mu);
    size_t write_pos GUARDED_BY(mu) = 0;
    // A worker is draining this conn's frames.
    bool busy GUARDED_BY(mu) = false;
    bool queued GUARDED_BY(mu) = false;   // sitting in work_queue_
    bool closing GUARDED_BY(mu) = false;  // close once the write buf drains
    bool goodbye_sent GUARDED_BY(mu) = false;
    // Stalled past the write timeout: hard close.
    bool aborted GUARDED_BY(mu) = false;
    bool closed GUARDED_BY(mu) = false;  // fd is gone; sinks must fail
    bool want_write = false;  // EPOLLOUT armed (event-loop thread only)

    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> last_activity_ms{0};
    std::atomic<bool> executing{false};

    size_t buffered() const REQUIRES(mu) {
      return write_buf.size() - write_pos;
    }
  };
  class ConnSink;

  Server(engine::Database* db, ServerOptions options);

  Status Bind();
  void RegisterTelemetry();
  std::vector<engine::Database::NetConnectionInfo> ConnectionInfos();

  void EventLoop();
  void WorkerLoop();

  // --- Event-loop internals (event thread only unless noted) ------------
  void AcceptPending();
  void ReadConn(const std::shared_ptr<Conn>& c);
  void FlushConn(const std::shared_ptr<Conn>& c);
  void CloseConn(const std::shared_ptr<Conn>& c);
  void BeginDrain();
  void ShedIdle(uint64_t now_ms);
  void ArmWrite(const std::shared_ptr<Conn>& c, bool want);

  // --- Worker-side helpers ----------------------------------------------
  /// Drains the connection's buffered frames through its Session.
  void ProcessConn(const std::shared_ptr<Conn>& c);
  /// Queues `c` for the event loop to write out (any thread).
  void RequestFlush(const std::shared_ptr<Conn>& c);
  /// Appends encoded frames to the write buffer; caller holds c->mu.
  void AppendOutboundLocked(Conn* c, std::string_view bytes)
      REQUIRES(c->mu);

  engine::Database* db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;      // worker → event loop (flush requests)
  int shutdown_fd_ = -1;  // RequestShutdown → event loop (signal-safe)
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  mutable RankedMutex<LockRank::kNetServer> mu_;
  std::condition_variable_any work_cv_;
  std::map<int, std::shared_ptr<Conn>> conns_ GUARDED_BY(mu_);  // by fd
  std::deque<std::shared_ptr<Conn>> work_queue_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Conn>> flush_queue_ GUARDED_BY(mu_);
  bool workers_stop_ GUARDED_BY(mu_) = false;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> loop_done_{false};

  // Mirrored into net.* metrics; kept as atomics so stats() and the
  // sys.connections provider read without extra locking.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> rejected_{0};
  /// Shared with the net.connections_active metric callback so the
  /// callback outliving the server (registries have no unregister) reads
  /// a zeroed count, not freed memory.
  std::shared_ptr<std::atomic<int64_t>> active_conns_;

  struct Counters {
    obs::Counter* accepted = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* write_stalls = nullptr;
  } counters_;
  SessionCounters session_counters_;
};

}  // namespace hdb::net

#endif  // HDB_NET_SERVER_H_
