#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdb::net {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void Bump(obs::Counter* c, uint64_t n = 1) {
  if (c != nullptr && n != 0) c->Add(n);
}

constexpr uint32_t kBaseEvents = EPOLLIN | EPOLLET | EPOLLRDHUP;

}  // namespace

/// Routes a session's response frames into the connection's write buffer,
/// stalling on backpressure. Every Write() payload is a sequence of whole
/// frames (sessions encode complete frames before flushing).
class Server::ConnSink : public FrameSink {
 public:
  ConnSink(Server* server, std::shared_ptr<Conn> conn)
      : server_(server), conn_(std::move(conn)) {}

  bool Write(std::string_view bytes) override {
    {
      UniqueLock<RankedMutex<LockRank::kNetSession>> lock(conn_->mu);
      if (conn_->closed || conn_->aborted) return false;
      if (conn_->buffered() > server_->options_.write_high_water) {
        // The client is not reading fast enough. Park this worker until
        // the event loop drains the buffer — attributed to the statement
        // as wait.net_write — but never forever: a peer that stopped
        // reading entirely gets its connection killed, not a worker.
        Bump(server_->counters_.write_stalls);
        obs::ScopedWait wait(obs::WaitCause::kNetWrite, bytes.size());
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(
                server_->options_.write_stall_timeout_ms);
        // Explicit wait loop rather than a wait_for predicate: the
        // predicate reads mu-guarded connection state, and the analysis
        // checks a lambda as a separate (lock-free) function — the loop
        // keeps the guarded reads here, where `lock` visibly holds
        // conn_->mu. Semantics match wait_for(pred): one final check
        // after a timeout.
        bool drained;
        while (!(drained =
                     conn_->closed || conn_->aborted ||
                     conn_->buffered() <= server_->options_.write_high_water)) {
          if (conn_->write_cv.wait_until(lock, deadline) ==
              std::cv_status::timeout) {
            drained = conn_->closed || conn_->aborted ||
                      conn_->buffered() <= server_->options_.write_high_water;
            break;
          }
        }
        if (conn_->closed || conn_->aborted) return false;
        if (!drained) {
          conn_->aborted = true;
          lock.unlock();
          server_->RequestFlush(conn_);  // event loop sees aborted → close
          return false;
        }
      }
      server_->AppendOutboundLocked(conn_.get(), bytes);
    }
    server_->RequestFlush(conn_);
    return true;
  }

 private:
  Server* server_;
  std::shared_ptr<Conn> conn_;
};

Server::Server(engine::Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      active_conns_(std::make_shared<std::atomic<int64_t>>(0)) {}

Result<std::unique_ptr<Server>> Server::Start(engine::Database* db,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(db, std::move(options)));
  HDB_RETURN_IF_ERROR(server->Bind());
  server->RegisterTelemetry();
  Server* raw = server.get();
  db->set_net_connection_provider([raw] { return raw->ConnectionInfos(); });
  server->loop_thread_ = std::thread([raw] { raw->EventLoop(); });
  const int workers = std::max(1, raw->options_.workers);
  server->workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    server->workers_.emplace_back([raw] { raw->WorkerLoop(); });
  }
  return server;
}

Server::~Server() { Stop(); }

Status Server::Bind() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  if (listen(listen_fd_, 1024) < 0) return Errno("listen");
  HDB_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  shutdown_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0 || shutdown_fd_ < 0) {
    return Errno("epoll_create1/eventfd");
  }
  for (int fd : {listen_fd_, wake_fd_, shutdown_fd_}) {
    epoll_event ev{};
    ev.events = EPOLLIN | (fd == listen_fd_ ? EPOLLET : 0u);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Errno("epoll_ctl(ADD)");
    }
  }
  return Status::OK();
}

void Server::RegisterTelemetry() {
  obs::MetricsRegistry& m = db_->metrics();
  counters_.accepted = m.RegisterCounter(obs::kNetConnectionsAccepted);
  counters_.closed = m.RegisterCounter(obs::kNetConnectionsClosed);
  counters_.shed = m.RegisterCounter(obs::kNetConnectionsShed);
  counters_.rejected = m.RegisterCounter(obs::kNetConnectionsRejected);
  counters_.frames_in = m.RegisterCounter(obs::kNetFramesIn);
  counters_.frames_out = m.RegisterCounter(obs::kNetFramesOut);
  counters_.bytes_in = m.RegisterCounter(obs::kNetBytesIn);
  counters_.bytes_out = m.RegisterCounter(obs::kNetBytesOut);
  counters_.write_stalls = m.RegisterCounter(obs::kNetWriteStalls);
  session_counters_.statements = m.RegisterCounter(obs::kNetStatements);
  session_counters_.overloads = m.RegisterCounter(obs::kNetOverloadsSent);
  session_counters_.protocol_errors =
      m.RegisterCounter(obs::kNetProtocolErrors);
  // The callback shares only the counter cell, not `this`: a metrics
  // registry has no unregister, so it may outlive the server.
  std::shared_ptr<std::atomic<int64_t>> active = active_conns_;
  m.RegisterCallback(obs::kNetConnectionsActive, [active] {
    return static_cast<double>(active->load(std::memory_order_relaxed));
  });
}

std::vector<engine::Database::NetConnectionInfo> Server::ConnectionInfos() {
  std::vector<engine::Database::NetConnectionInfo> out;
  LockGuard lock(mu_);
  out.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) {
    engine::Database::NetConnectionInfo info;
    info.conn_id = c->session->conn_id();
    info.peer = c->peer;
    if (draining_.load(std::memory_order_relaxed)) {
      info.state = "draining";
    } else if (c->executing.load(std::memory_order_relaxed)) {
      info.state = "executing";
    } else if (!c->session->handshake_done()) {
      info.state = "handshake";
    } else {
      info.state = "ready";
    }
    info.in_txn = c->session->in_explicit_txn();
    info.prepared = c->session->prepared_count();
    info.statements = c->session->statements_executed();
    info.bytes_in = c->bytes_in.load(std::memory_order_relaxed);
    info.bytes_out = c->bytes_out.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.active = static_cast<size_t>(
      std::max<int64_t>(0, active_conns_->load(std::memory_order_relaxed)));
  return s;
}

void Server::RequestShutdown() {
  // Async-signal-safe: one write on an eventfd, nothing else. The event
  // loop owns the actual drain.
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(shutdown_fd_, &one, sizeof(one));
}

void Server::Stop() {
  if (stopped_.exchange(true)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  RequestShutdown();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    LockGuard lock(mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // The provider reaches into this server; detach it before the conn map
  // (and the sessions' engine connections) go away.
  db_->set_net_connection_provider(nullptr);
  {
    // All threads are joined; the lock is uncontended and keeps the
    // guarded-access discipline uniform for the analysis.
    LockGuard lock(mu_);
    conns_.clear();
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_, &shutdown_fd_}) {
    if (*fd >= 0) close(*fd);
    *fd = -1;
  }
}

// --- Event loop ------------------------------------------------------------

void Server::EventLoop() {
  uint64_t drain_deadline_ms = 0;
  std::vector<epoll_event> events(256);
  for (;;) {
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens on teardown
    }
    const uint64_t now = NowMs();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == shutdown_fd_) {
        uint64_t tok;
        while (read(shutdown_fd_, &tok, sizeof(tok)) > 0) {
        }
        if (!draining_.load(std::memory_order_relaxed)) {
          drain_deadline_ms = now + options_.drain_timeout_ms;
          BeginDrain();
        }
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t tok;
        while (read(wake_fd_, &tok, sizeof(tok)) > 0) {
        }
        std::vector<std::shared_ptr<Conn>> pending;
        {
          LockGuard lock(mu_);
          pending.swap(flush_queue_);
        }
        for (const std::shared_ptr<Conn>& c : pending) FlushConn(c);
        continue;
      }
      std::shared_ptr<Conn> c;
      {
        LockGuard lock(mu_);
        const auto it = conns_.find(fd);
        if (it != conns_.end()) c = it->second;
      }
      if (!c) continue;  // closed earlier in this batch
      if (ev & (EPOLLHUP | EPOLLERR)) {
        CloseConn(c);
        continue;
      }
      if (ev & EPOLLOUT) FlushConn(c);
      if (ev & (EPOLLIN | EPOLLRDHUP)) ReadConn(c);
    }

    if (options_.idle_timeout_ms > 0 &&
        !draining_.load(std::memory_order_relaxed)) {
      ShedIdle(now);
    }
    if (draining_.load(std::memory_order_relaxed)) {
      bool empty;
      {
        LockGuard lock(mu_);
        empty = conns_.empty();
      }
      if (empty) break;
      if (NowMs() >= drain_deadline_ms) {
        // Drain deadline passed: force-close stragglers.
        std::vector<std::shared_ptr<Conn>> all;
        {
          LockGuard lock(mu_);
          for (const auto& [cfd, conn] : conns_) all.push_back(conn);
        }
        for (const std::shared_ptr<Conn>& c : all) CloseConn(c);
        break;
      }
    }
  }
  // Unblock any backpressure waiters for good: no more draining happens.
  std::vector<std::shared_ptr<Conn>> all;
  {
    LockGuard lock(mu_);
    for (const auto& [fd, c] : conns_) all.push_back(c);
  }
  for (const std::shared_ptr<Conn>& c : all) CloseConn(c);
  loop_done_.store(true, std::memory_order_release);
}

void Server::AcceptPending() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd = accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or listen fd already closed for drain
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    char ip[INET_ADDRSTRLEN] = "?";
    inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    const std::string peer =
        std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));

    size_t active;
    {
      LockGuard lock(mu_);
      active = conns_.size();
    }
    if (active >= options_.max_connections ||
        draining_.load(std::memory_order_relaxed)) {
      // Refuse with a structured overload frame rather than a silent
      // close — the client sees *why* and backs off (acceptance: no hung
      // sockets under overload). Best-effort write; the frame is tiny.
      std::string out;
      AppendOverloadedFrame(&out, options_.session.overload_retry_ms,
                            "server at max_connections");
      [[maybe_unused]] ssize_t w = write(fd, out.data(), out.size());
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Bump(counters_.rejected);
      continue;
    }

    Result<std::unique_ptr<Session>> session =
        Session::Create(db_, peer, options_.session, session_counters_);
    if (!session.ok()) {
      std::string out;
      AppendErrorFrame(&out, session.status().code(),
                       session.status().message());
      [[maybe_unused]] ssize_t w = write(fd, out.data(), out.size());
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Bump(counters_.rejected);
      continue;
    }

    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->peer = peer;
    c->session = std::move(*session);
    c->assembler = FrameAssembler(options_.session.wire);
    c->last_activity_ms.store(NowMs(), std::memory_order_relaxed);

    epoll_event ev{};
    ev.events = kBaseEvents;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    {
      LockGuard lock(mu_);
      conns_.emplace(fd, std::move(c));
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    Bump(counters_.accepted);
    active_conns_->fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ReadConn(const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  char buf[64 * 1024];
  bool peer_gone = false;
  uint64_t total = 0;
  for (;;) {
    const ssize_t n = read(c->fd, buf, sizeof(buf));
    if (n > 0) {
      total += static_cast<uint64_t>(n);
      LockGuard lock(c->mu);
      c->assembler.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      peer_gone = true;
    } else if (errno == EINTR) {
      continue;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      peer_gone = true;
    }
    break;
  }
  if (total > 0) {
    c->bytes_in.fetch_add(total, std::memory_order_relaxed);
    Bump(counters_.bytes_in, total);
    c->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    bool enqueue = false;
    {
      LockGuard lock(c->mu);
      if (!c->busy && !c->queued && !c->closing && !c->closed) {
        c->queued = true;
        enqueue = true;
      }
    }
    if (enqueue) {
      {
        LockGuard lock(mu_);
        work_queue_.push_back(c);
      }
      work_cv_.notify_one();
    }
  }
  if (peer_gone) CloseConn(c);
}

void Server::ArmWrite(const std::shared_ptr<Conn>& c, bool want) {
  if (c->fd < 0 || c->want_write == want) return;
  epoll_event ev{};
  ev.events = kBaseEvents | (want ? EPOLLOUT : 0u);
  ev.data.fd = c->fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) == 0) {
    c->want_write = want;
  }
}

void Server::FlushConn(const std::shared_ptr<Conn>& c) {
  bool close_now = false;
  uint64_t written_total = 0;
  {
    UniqueLock<RankedMutex<LockRank::kNetSession>> lock(c->mu);
    if (c->closed) return;
    if (c->aborted) {
      close_now = true;
    } else {
      while (c->write_pos < c->write_buf.size()) {
        const ssize_t n =
            write(c->fd, c->write_buf.data() + c->write_pos, c->buffered());
        if (n > 0) {
          c->write_pos += static_cast<size_t>(n);
          written_total += static_cast<uint64_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_now = true;  // EPIPE / ECONNRESET / ...
        break;
      }
      if (c->write_pos == c->write_buf.size()) {
        c->write_buf.clear();
        c->write_pos = 0;
        if (c->closing) close_now = true;
      }
    }
    if (written_total > 0) {
      c->bytes_out.fetch_add(written_total, std::memory_order_relaxed);
    }
    if (!close_now) {
      ArmWrite(c, c->buffered() > 0);
      if (c->buffered() <= options_.write_high_water) {
        c->write_cv.notify_all();  // backpressure waiters
      }
    }
  }
  if (written_total > 0) Bump(counters_.bytes_out, written_total);
  if (close_now) CloseConn(c);
}

void Server::CloseConn(const std::shared_ptr<Conn>& c) {
  {
    LockGuard lock(c->mu);
    if (c->closed) return;
    c->closed = true;
    if (c->fd >= 0) {
      epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
      close(c->fd);
    }
    c->write_cv.notify_all();  // abort any backpressure waiter
  }
  {
    LockGuard lock(mu_);
    conns_.erase(c->fd);
  }
  c->fd = -1;
  closed_.fetch_add(1, std::memory_order_relaxed);
  Bump(counters_.closed);
  active_conns_->fetch_sub(1, std::memory_order_relaxed);
}

void Server::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  // Stop accepting: deregister + close the listen socket. Connections in
  // the backlog get RST; established ones get a Goodbye below.
  if (listen_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Conn>> all;
  {
    LockGuard lock(mu_);
    for (const auto& [fd, c] : conns_) all.push_back(c);
  }
  for (const std::shared_ptr<Conn>& c : all) {
    {
      LockGuard lock(c->mu);
      if (c->closed || c->goodbye_sent) continue;
      if (c->busy) continue;  // its worker appends the Goodbye when done
      std::string out;
      AppendGoodbyeFrame(&out, "server draining");
      AppendOutboundLocked(c.get(), out);
      c->goodbye_sent = true;
      c->closing = true;
    }
    FlushConn(c);
  }
}

void Server::ShedIdle(uint64_t now_ms) {
  std::vector<std::shared_ptr<Conn>> victims;
  {
    LockGuard lock(mu_);
    for (const auto& [fd, c] : conns_) {
      const uint64_t last = c->last_activity_ms.load(std::memory_order_relaxed);
      if (now_ms >= last && now_ms - last >= options_.idle_timeout_ms) {
        victims.push_back(c);
      }
    }
  }
  for (const std::shared_ptr<Conn>& c : victims) {
    {
      LockGuard lock(c->mu);
      if (c->closed || c->closing || c->busy || c->queued ||
          c->buffered() > 0) {
        continue;
      }
      std::string out;
      AppendGoodbyeFrame(&out, "idle timeout");
      AppendOutboundLocked(c.get(), out);
      c->goodbye_sent = true;
      c->closing = true;
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    Bump(counters_.shed);
    FlushConn(c);
  }
}

// --- Workers ---------------------------------------------------------------

void Server::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Conn> c;
    {
      UniqueLock<RankedMutex<LockRank::kNetServer>> lock(mu_);
      // Explicit wait loop: the predicate reads mu_-guarded state (see
      // ConnSink::Write for the lambda-analysis rationale).
      while (!(workers_stop_ || !work_queue_.empty())) {
        work_cv_.wait(lock);
      }
      if (workers_stop_ && work_queue_.empty()) return;
      c = std::move(work_queue_.front());
      work_queue_.pop_front();
      // Claim the connection before dropping mu_ so a concurrent enqueue
      // can't hand it to a second worker (nested 16 → 17 acquisition).
      LockGuard conn_lock(c->mu);
      c->queued = false;
      if (c->busy || c->closed || c->closing) continue;
      c->busy = true;
    }
    ProcessConn(c);
  }
}

void Server::ProcessConn(const std::shared_ptr<Conn>& c) {
  ConnSink sink(this, c);
  bool request_flush = false;
  for (;;) {
    std::string payload;
    uint8_t opcode = 0;
    bool have_frame = false;
    {
      LockGuard lock(c->mu);
      if (c->closed || c->closing) {
        c->busy = false;
        break;
      }
      Result<std::optional<Frame>> next = c->assembler.Next();
      if (!next.ok()) {
        // Framing violation — resynchronization is impossible. Answer,
        // say goodbye, close.
        Bump(session_counters_.protocol_errors);
        std::string out;
        AppendErrorFrame(&out, StatusCode::kInvalidArgument,
                         next.status().message());
        AppendGoodbyeFrame(&out, "protocol violation");
        AppendOutboundLocked(c.get(), out);
        c->goodbye_sent = true;
        c->closing = true;
        c->busy = false;
        request_flush = true;
        break;
      }
      if (!next->has_value()) {
        // Drained. If a drain started while we were executing, this
        // worker owes the connection its Goodbye.
        if (draining_.load(std::memory_order_relaxed) && !c->goodbye_sent) {
          std::string out;
          AppendGoodbyeFrame(&out, "server draining");
          AppendOutboundLocked(c.get(), out);
          c->goodbye_sent = true;
          c->closing = true;
          request_flush = true;
        }
        c->busy = false;
        break;
      }
      have_frame = true;
      opcode = (*next)->opcode;
      payload.assign((*next)->payload);
      c->executing.store(true, std::memory_order_relaxed);
    }
    if (!have_frame) break;
    Bump(counters_.frames_in);
    // SQL runs here with no net locks held: the engine's latches (DDL,
    // admission gate, ...) rank below kNetSession, and a blocked
    // statement must not stall the event loop's Feed() on this conn.
    Frame frame{opcode, payload};
    const SessionAction action = c->session->HandleFrame(frame, &sink);
    c->executing.store(false, std::memory_order_relaxed);
    c->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    if (action != SessionAction::kContinue) {
      LockGuard lock(c->mu);
      c->closing = true;
      c->busy = false;
      request_flush = true;
      break;
    }
  }
  if (request_flush) RequestFlush(c);
}

void Server::RequestFlush(const std::shared_ptr<Conn>& c) {
  bool wake;
  {
    LockGuard lock(mu_);
    flush_queue_.push_back(c);
    wake = flush_queue_.size() == 1;
  }
  if (wake) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

void Server::AppendOutboundLocked(Conn* c, std::string_view bytes) {
  // `bytes` is always a sequence of complete frames; walk the length
  // prefixes to keep net.frames_out honest without a second code path.
  uint64_t frames = 0;
  size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(
                 static_cast<uint8_t>(bytes[pos + static_cast<size_t>(i)]))
             << (8 * i);
    }
    pos += 4 + static_cast<size_t>(len);
    ++frames;
  }
  Bump(counters_.frames_out, frames);
  c->write_buf.append(bytes.data(), bytes.size());
}

}  // namespace hdb::net
