#include "net/session.h"

#include <utility>

#include "engine/database.h"
#include "engine/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdb::net {

namespace {

void Bump(obs::Counter* c) {
  if (c != nullptr) c->Add();
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Create(engine::Database* db,
                                                 std::string peer,
                                                 SessionOptions options,
                                                 SessionCounters counters) {
  HDB_ASSIGN_OR_RETURN(std::unique_ptr<engine::Connection> conn,
                       db->Connect());
  // The worker owns the statement trace (Begin + ScopedCurrentTrace in
  // RunStatement) so it also covers result serialization; Execute must
  // not open its own.
  conn->set_external_statement_trace(true);
  return std::unique_ptr<Session>(new Session(db, std::move(conn),
                                              std::move(peer),
                                              std::move(options), counters));
}

Session::Session(engine::Database* db, std::unique_ptr<engine::Connection> conn,
                 std::string peer, SessionOptions options,
                 SessionCounters counters)
    : db_(db),
      conn_(std::move(conn)),
      peer_(std::move(peer)),
      options_(std::move(options)),
      counters_(counters) {}

Session::~Session() = default;

uint64_t Session::conn_id() const { return conn_->conn_id(); }

SessionAction Session::HandleFrame(const Frame& frame, FrameSink* sink) {
  std::string out;
  if (!IsClientOpcode(frame.opcode)) {
    // Framing is intact (the length field parsed), so an unknown opcode is
    // recoverable: answer with an error frame, keep the connection.
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument,
                     "unknown client opcode " + std::to_string(frame.opcode));
    sink->Write(out);
    return SessionAction::kContinue;
  }
  const Opcode op = static_cast<Opcode>(frame.opcode);
  PayloadReader in(frame.payload, options_.wire);

  // Pre-handshake, only kHello / kPing / kClose are legal.
  if (!hello_done_.load(std::memory_order_relaxed) && op != Opcode::kHello &&
      op != Opcode::kPing && op != Opcode::kClose) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument,
                     "handshake required before opcode " +
                         std::to_string(frame.opcode));
    sink->Write(out);
    return SessionAction::kCloseAfterFlush;
  }

  switch (op) {
    case Opcode::kHello:
      return HandleHello(&in, sink);
    case Opcode::kQuery:
      return HandleQuery(&in, sink);
    case Opcode::kPrepare:
      return HandlePrepare(&in, sink);
    case Opcode::kBind:
      return HandleBind(&in, sink);
    case Opcode::kExecute:
      return HandleExecute(&in, sink);
    case Opcode::kClosePrepared:
      return HandleClosePrepared(&in, sink);
    case Opcode::kPing:
      AppendFrame(&out, Opcode::kPong, {});
      sink->Write(out);
      return SessionAction::kContinue;
    case Opcode::kClose:
      AppendFrame(&out, Opcode::kCloseOk, {});
      sink->Write(out);
      return SessionAction::kCloseAfterFlush;
    default:
      break;  // unreachable: IsClientOpcode filtered already
  }
  return SessionAction::kCloseNow;
}

/// Payload-parse failure: framing survived, so answer and continue.
#define HDB_NET_PARSE(lhs, expr)                                      \
  auto lhs##_or = (expr);                                             \
  if (!lhs##_or.ok()) {                                               \
    Bump(counters_.protocol_errors);                                  \
    std::string err;                                                  \
    AppendErrorFrame(&err, StatusCode::kInvalidArgument,              \
                     "malformed payload: " + lhs##_or.status().message()); \
    sink->Write(err);                                                 \
    return SessionAction::kContinue;                                  \
  }                                                                   \
  auto lhs = std::move(*lhs##_or)

SessionAction Session::HandleHello(PayloadReader* in, FrameSink* sink) {
  std::string out;
  HDB_NET_PARSE(version, in->U32());
  HDB_NET_PARSE(client_name, in->String());
  (void)client_name;
  if (Status end = in->ExpectEnd(); !end.ok()) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, end.message());
    sink->Write(out);
    return SessionAction::kContinue;
  }
  if (hello_done_.load(std::memory_order_relaxed)) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, "duplicate hello");
    sink->Write(out);
    return SessionAction::kContinue;
  }
  if (version != kProtocolVersion) {
    AppendErrorFrame(&out, StatusCode::kNotSupported,
                     "protocol version " + std::to_string(version) +
                         " unsupported; server speaks " +
                         std::to_string(kProtocolVersion));
    sink->Write(out);
    return SessionAction::kCloseAfterFlush;
  }
  hello_done_.store(true, std::memory_order_relaxed);
  std::string payload;
  PutU32(&payload, kProtocolVersion);
  PutU64(&payload, conn_->conn_id());
  PutString(&payload, "holisticdb");
  AppendFrame(&out, Opcode::kHelloOk, payload);
  sink->Write(out);
  return SessionAction::kContinue;
}

SessionAction Session::HandleQuery(PayloadReader* in, FrameSink* sink) {
  HDB_NET_PARSE(sql, in->String());
  if (Status end = in->ExpectEnd(); !end.ok()) {
    Bump(counters_.protocol_errors);
    std::string out;
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, end.message());
    sink->Write(out);
    return SessionAction::kContinue;
  }
  return RunStatement(sql, sink);
}

SessionAction Session::HandlePrepare(PayloadReader* in, FrameSink* sink) {
  std::string out;
  HDB_NET_PARSE(sql, in->String());
  if (Status end = in->ExpectEnd(); !end.ok()) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, end.message());
    sink->Write(out);
    return SessionAction::kContinue;
  }
  if (prepared_.size() >= options_.max_prepared) {
    AppendErrorFrame(&out, StatusCode::kResourceExhausted,
                     "connection holds " + std::to_string(prepared_.size()) +
                         " prepared statements (limit " +
                         std::to_string(options_.max_prepared) + ")");
    sink->Write(out);
    return SessionAction::kContinue;
  }
  Prepared p;
  p.parts = SplitOnPlaceholders(sql);
  const size_t param_count = p.parts.size() - 1;
  const uint32_t id = next_prepared_id_++;
  prepared_.emplace(id, std::move(p));
  prepared_live_.store(prepared_.size(), std::memory_order_relaxed);
  std::string payload;
  PutU32(&payload, id);
  PutU16(&payload, static_cast<uint16_t>(param_count));
  AppendFrame(&out, Opcode::kPrepareOk, payload);
  sink->Write(out);
  return SessionAction::kContinue;
}

SessionAction Session::HandleBind(PayloadReader* in, FrameSink* sink) {
  std::string out;
  HDB_NET_PARSE(stmt_id, in->U32());
  HDB_NET_PARSE(n, in->U16());
  std::vector<Value> values;
  values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    HDB_NET_PARSE(v, in->GetValue());
    values.push_back(std::move(v));
  }
  if (Status end = in->ExpectEnd(); !end.ok()) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, end.message());
    sink->Write(out);
    return SessionAction::kContinue;
  }
  const auto it = prepared_.find(stmt_id);
  if (it == prepared_.end()) {
    AppendErrorFrame(&out, StatusCode::kNotFound,
                     "unknown prepared statement " + std::to_string(stmt_id));
    sink->Write(out);
    return SessionAction::kContinue;
  }
  const size_t want = it->second.parts.size() - 1;
  if (values.size() != want) {
    AppendErrorFrame(&out, StatusCode::kInvalidArgument,
                     "bind of " + std::to_string(values.size()) +
                         " parameters; statement has " + std::to_string(want));
    sink->Write(out);
    return SessionAction::kContinue;
  }
  it->second.bound = std::move(values);
  AppendFrame(&out, Opcode::kBindOk, {});
  sink->Write(out);
  return SessionAction::kContinue;
}

SessionAction Session::HandleExecute(PayloadReader* in, FrameSink* sink) {
  std::string out;
  HDB_NET_PARSE(stmt_id, in->U32());
  if (Status end = in->ExpectEnd(); !end.ok()) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, end.message());
    sink->Write(out);
    return SessionAction::kContinue;
  }
  const auto it = prepared_.find(stmt_id);
  if (it == prepared_.end()) {
    AppendErrorFrame(&out, StatusCode::kNotFound,
                     "unknown prepared statement " + std::to_string(stmt_id));
    sink->Write(out);
    return SessionAction::kContinue;
  }
  const Prepared& p = it->second;
  const size_t want = p.parts.size() - 1;
  if (p.bound.size() != want) {
    AppendErrorFrame(&out, StatusCode::kInvalidArgument,
                     "execute with " + std::to_string(p.bound.size()) +
                         " of " + std::to_string(want) + " parameters bound");
    sink->Write(out);
    return SessionAction::kContinue;
  }
  // Splice literals into the statement text: the engine re-optimizes with
  // actual values, so selectivity estimation sees the real constants
  // (paper §3 — and the per-connection plan cache still hits on repeats
  // of the same values).
  std::string sql = p.parts[0];
  for (size_t i = 0; i < want; ++i) {
    sql += SqlLiteral(p.bound[i]);
    sql += p.parts[i + 1];
  }
  return RunStatement(sql, sink);
}

SessionAction Session::HandleClosePrepared(PayloadReader* in, FrameSink* sink) {
  std::string out;
  HDB_NET_PARSE(stmt_id, in->U32());
  if (Status end = in->ExpectEnd(); !end.ok()) {
    Bump(counters_.protocol_errors);
    AppendErrorFrame(&out, StatusCode::kInvalidArgument, end.message());
    sink->Write(out);
    return SessionAction::kContinue;
  }
  if (prepared_.erase(stmt_id) == 0) {
    AppendErrorFrame(&out, StatusCode::kNotFound,
                     "unknown prepared statement " + std::to_string(stmt_id));
    sink->Write(out);
    return SessionAction::kContinue;
  }
  prepared_live_.store(prepared_.size(), std::memory_order_relaxed);
  AppendDoneFrame(&out, 0, 0);
  sink->Write(out);
  return SessionAction::kContinue;
}

#undef HDB_NET_PARSE

SessionAction Session::RunStatement(const std::string& sql, FrameSink* sink) {
  statements_.fetch_add(1, std::memory_order_relaxed);
  Bump(counters_.statements);

  std::string out;
  // Fast-path shedding (DESIGN.md §12): when the admission queue is
  // already deep, joining it would park this worker for the full queue
  // timeout while it serves nobody — under a worker pool far smaller than
  // the connection count that converts overload into a stalled server.
  // Answer kOverloaded immediately instead; the gate's own timeout
  // remains the backstop for statements that did join the queue.
  if (options_.overload_waiting_limit > 0 &&
      db_->options().admission_gate.enabled) {
    const exec::AdmissionGateStats gs = db_->admission_gate().stats();
    if (gs.waiting >= options_.overload_waiting_limit) {
      Bump(counters_.overloads);
      AppendOverloadedFrame(&out, options_.overload_retry_ms,
                            "admission queue depth " +
                                std::to_string(gs.waiting) +
                                " at multiprogramming level");
      sink->Write(out);
      return SessionAction::kContinue;
    }
  }

  // The trace is worker-owned so it brackets Execute AND the result
  // serialization below — a client that stops reading shows up as
  // wait.net_write on this statement, not as unattributed server time.
  obs::StatementRegistry::Handle stmt = db_->statement_registry().Begin(
      conn_->conn_id(), engine::NormalizeStatement(sql));
  obs::ScopedCurrentTrace trace_scope(stmt.trace());

  Result<engine::QueryResult> result = conn_->Execute(sql);
  in_txn_.store(conn_->in_explicit_txn(), std::memory_order_relaxed);
  stmt.set_ok(result.ok());
  if (!result.ok()) {
    WriteStatusFrame(result.status(), &out);
    sink->Write(out);
    return SessionAction::kContinue;
  }

  const engine::QueryResult& q = *result;
  const bool aborted = [&] {
    if (!q.columns.empty()) {
      // Result set: header, rows (staged), done.
      std::string payload;
      PutU16(&payload, static_cast<uint16_t>(q.columns.size()));
      for (const std::string& c : q.columns) PutString(&payload, c);
      AppendFrame(&out, Opcode::kRowHeader, payload);
      for (const std::vector<Value>& row : q.rows) {
        payload.clear();
        PutU16(&payload, static_cast<uint16_t>(row.size()));
        for (const Value& v : row) PutValue(&payload, v);
        AppendFrame(&out, Opcode::kRow, payload);
        if (out.size() >= options_.flush_stage_bytes) {
          if (!sink->Write(out)) return true;
          out.clear();
        }
      }
      AppendDoneFrame(&out, q.rows_affected, q.rows.size());
    } else if (!q.explain.empty()) {
      // EXPLAIN renders as a one-column result set, one row per line.
      std::string payload;
      PutU16(&payload, 1);
      PutString(&payload, "explain");
      AppendFrame(&out, Opcode::kRowHeader, payload);
      uint64_t lines = 0;
      size_t pos = 0;
      while (pos <= q.explain.size()) {
        size_t nl = q.explain.find('\n', pos);
        if (nl == std::string::npos) nl = q.explain.size();
        payload.clear();
        PutU16(&payload, 1);
        PutValue(&payload, Value::String(q.explain.substr(pos, nl - pos)));
        AppendFrame(&out, Opcode::kRow, payload);
        ++lines;
        pos = nl + 1;
      }
      AppendDoneFrame(&out, 0, lines);
    } else {
      // DML / DDL / transaction control: no result set.
      AppendDoneFrame(&out, q.rows_affected, 0);
    }
    return !sink->Write(out);
  }();
  return aborted ? SessionAction::kCloseNow : SessionAction::kContinue;
}

void Session::WriteStatusFrame(const Status& s, std::string* out) {
  if (s.code() == StatusCode::kOverloaded) {
    Bump(counters_.overloads);
    AppendOverloadedFrame(out, options_.overload_retry_ms, s.message());
  } else {
    AppendErrorFrame(out, s.code(), s.message());
  }
}

}  // namespace hdb::net
