#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hdb::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

StatusCode CodeFromWire(uint8_t code) {
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(code);
}

}  // namespace

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)), assembler_(options_.wire) {}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options.recv_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((options.recv_timeout_ms % 1000) *
                                          1000);
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad address " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    close(fd);
    return s;
  }

  std::unique_ptr<Client> client(new Client(fd, std::move(options)));
  std::string payload;
  PutU32(&payload, kProtocolVersion);
  PutString(&payload, client->options_.client_name);
  HDB_RETURN_IF_ERROR(client->SendFrame(Opcode::kHello, payload));

  std::string storage;
  HDB_ASSIGN_OR_RETURN(Frame frame, client->ReadFrame(&storage));
  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kHelloOk: {
      PayloadReader in(frame.payload, client->options_.wire);
      HDB_ASSIGN_OR_RETURN(uint32_t version, in.U32());
      HDB_ASSIGN_OR_RETURN(client->conn_id_, in.U64());
      HDB_ASSIGN_OR_RETURN(std::string server_name, in.String());
      (void)server_name;
      if (version != kProtocolVersion) {
        return Status::NotSupported("server protocol version " +
                                    std::to_string(version));
      }
      return client;
    }
    case Opcode::kError:
    case Opcode::kOverloaded:
      return client->StatusFromError(frame);
    default:
      return Status::Internal("unexpected handshake opcode " +
                              std::to_string(frame.opcode));
  }
}

Status Client::SendFrame(Opcode op, std::string_view payload) {
  if (fd_ < 0) return Status::IOError("client closed");
  std::string out;
  AppendFrame(&out, op, payload);
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = send(fd_, out.data() + sent, out.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame(std::string* storage) {
  for (;;) {
    HDB_ASSIGN_OR_RETURN(std::optional<Frame> frame, assembler_.Next());
    if (frame.has_value()) {
      // Copy out: the view dies at the next Feed()/Next().
      storage->assign(frame->payload);
      return Frame{frame->opcode, *storage};
    }
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("response timeout");
    }
    return Errno("recv");
  }
}

Status Client::StatusFromError(const Frame& frame) {
  PayloadReader in(frame.payload, options_.wire);
  HDB_ASSIGN_OR_RETURN(uint8_t code, in.U8());
  if (static_cast<Opcode>(frame.opcode) == Opcode::kOverloaded) {
    HDB_ASSIGN_OR_RETURN(retry_after_ms_, in.U32());
    HDB_ASSIGN_OR_RETURN(std::string msg, in.String());
    return Status::Overloaded(std::move(msg));
  }
  HDB_ASSIGN_OR_RETURN(std::string msg, in.String());
  return Status(CodeFromWire(code), std::move(msg));
}

Result<NetResult> Client::ReadResult() {
  NetResult result;
  std::string storage;
  for (;;) {
    HDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(&storage));
    PayloadReader in(frame.payload, options_.wire);
    switch (static_cast<Opcode>(frame.opcode)) {
      case Opcode::kRowHeader: {
        HDB_ASSIGN_OR_RETURN(uint16_t ncols, in.U16());
        result.columns.clear();
        result.columns.reserve(ncols);
        for (uint16_t i = 0; i < ncols; ++i) {
          HDB_ASSIGN_OR_RETURN(std::string col, in.String());
          result.columns.push_back(std::move(col));
        }
        break;
      }
      case Opcode::kRow: {
        HDB_ASSIGN_OR_RETURN(uint16_t nvals, in.U16());
        std::vector<Value> row;
        row.reserve(nvals);
        for (uint16_t i = 0; i < nvals; ++i) {
          HDB_ASSIGN_OR_RETURN(Value v, in.GetValue());
          row.push_back(std::move(v));
        }
        result.rows.push_back(std::move(row));
        break;
      }
      case Opcode::kDone: {
        HDB_ASSIGN_OR_RETURN(result.rows_affected, in.U64());
        HDB_ASSIGN_OR_RETURN(result.row_count, in.U64());
        return result;
      }
      case Opcode::kError:
      case Opcode::kOverloaded:
        return StatusFromError(frame);
      case Opcode::kGoodbye: {
        goodbye_ = true;
        HDB_ASSIGN_OR_RETURN(goodbye_reason_, in.String());
        return Status::Aborted("server closing: " + goodbye_reason_);
      }
      default:
        return Status::Internal("unexpected opcode " +
                                std::to_string(frame.opcode) +
                                " in result stream");
    }
  }
}

Result<NetResult> Client::Query(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kQuery, payload));
  return ReadResult();
}

Result<Client::PreparedInfo> Client::Prepare(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kPrepare, payload));
  std::string storage;
  HDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(&storage));
  if (static_cast<Opcode>(frame.opcode) != Opcode::kPrepareOk) {
    return StatusFromError(frame);
  }
  PayloadReader in(frame.payload, options_.wire);
  PreparedInfo info;
  HDB_ASSIGN_OR_RETURN(info.stmt_id, in.U32());
  HDB_ASSIGN_OR_RETURN(info.param_count, in.U16());
  return info;
}

Status Client::Bind(uint32_t stmt_id, const std::vector<Value>& params) {
  std::string payload;
  PutU32(&payload, stmt_id);
  PutU16(&payload, static_cast<uint16_t>(params.size()));
  for (const Value& v : params) PutValue(&payload, v);
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kBind, payload));
  std::string storage;
  HDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(&storage));
  if (static_cast<Opcode>(frame.opcode) != Opcode::kBindOk) {
    return StatusFromError(frame);
  }
  return Status::OK();
}

Result<NetResult> Client::ExecutePrepared(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kExecute, payload));
  return ReadResult();
}

Status Client::ClosePrepared(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kClosePrepared, payload));
  std::string storage;
  HDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(&storage));
  if (static_cast<Opcode>(frame.opcode) != Opcode::kDone) {
    return StatusFromError(frame);
  }
  return Status::OK();
}

Status Client::Ping() {
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kPing, {}));
  std::string storage;
  HDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(&storage));
  if (static_cast<Opcode>(frame.opcode) != Opcode::kPong) {
    return StatusFromError(frame);
  }
  return Status::OK();
}

Status Client::Close() {
  if (fd_ < 0) return Status::OK();
  HDB_RETURN_IF_ERROR(SendFrame(Opcode::kClose, {}));
  std::string storage;
  Result<Frame> frame = ReadFrame(&storage);
  // The server may close before we read CloseOk; either way, we're done.
  close(fd_);
  fd_ = -1;
  if (frame.ok() &&
      static_cast<Opcode>(frame->opcode) != Opcode::kCloseOk) {
    return Status::Internal("unexpected close reply opcode " +
                            std::to_string(frame->opcode));
  }
  return Status::OK();
}

}  // namespace hdb::net
