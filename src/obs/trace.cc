#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace hdb::obs {

namespace trace_internal {
thread_local StatementTrace* tl_current_trace = nullptr;
}  // namespace trace_internal

const char* WaitCauseName(WaitCause cause) {
  switch (cause) {
    case WaitCause::kAdmission:
      return obs::kWaitAdmission;
    case WaitCause::kLock:
      return obs::kWaitLock;
    case WaitCause::kWalDurable:
      return obs::kWaitWalDurable;
    case WaitCause::kSpillWrite:
      return obs::kWaitSpillWrite;
    case WaitCause::kSpillRead:
      return obs::kWaitSpillRead;
    case WaitCause::kPoolMiss:
      return obs::kWaitPoolMiss;
    case WaitCause::kNetWrite:
      return obs::kWaitNetWrite;
  }
  return "wait.unknown";
}

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- StatementTrace --------------------------------------------------------

StatementTrace::StatementTrace(uint64_t stmt_id, uint64_t conn_id,
                               std::string shape)
    : stmt_id_(stmt_id),
      conn_id_(conn_id),
      shape_(std::move(shape)),
      start_micros_(TraceNowMicros()) {}

uint32_t StatementTrace::OpenSpan(const char* name, std::string detail) {
#ifndef HDB_NO_TELEMETRY
  const uint64_t now = TraceNowMicros();
  LockGuard lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanRecord s;
  s.id = static_cast<uint32_t>(spans_.size()) + 1;
  s.parent = open_stack_.empty() ? 0 : open_stack_.back();
  s.name = name;
  s.detail = std::move(detail);
  s.start_micros = now;
  spans_.push_back(std::move(s));
  open_stack_.push_back(spans_.back().id);
  return spans_.back().id;
#else
  (void)name;
  (void)detail;
  return 0;
#endif
}

uint32_t StatementTrace::OpenDetachedSpan(const char* name,
                                          std::string detail) {
#ifndef HDB_NO_TELEMETRY
  const uint64_t now = TraceNowMicros();
  LockGuard lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanRecord s;
  s.id = static_cast<uint32_t>(spans_.size()) + 1;
  s.parent = open_stack_.empty() ? 0 : open_stack_.back();
  s.name = name;
  s.detail = std::move(detail);
  s.start_micros = now;
  spans_.push_back(std::move(s));
  return spans_.back().id;
#else
  (void)name;
  (void)detail;
  return 0;
#endif
}

void StatementTrace::CloseSpan(uint32_t id) {
#ifndef HDB_NO_TELEMETRY
  if (id == 0) return;
  const uint64_t now = TraceNowMicros();
  LockGuard lock(mu_);
  if (id > spans_.size()) return;
  if (std::find(open_stack_.begin(), open_stack_.end(), id) ==
      open_stack_.end()) {
    // Not on the stack: already closed (e.g. as an orphan when an
    // enclosing span closed first). Never unwind — that would close
    // unrelated open spans below.
    if (spans_[id - 1].end_micros == 0) spans_[id - 1].end_micros = now;
    return;
  }
  spans_[id - 1].end_micros = now;
  // Unwind to (and including) this span: a child left open by an early
  // error exit closes with its parent rather than dangling forever.
  while (!open_stack_.empty()) {
    const uint32_t top = open_stack_.back();
    open_stack_.pop_back();
    if (spans_[top - 1].end_micros == 0) spans_[top - 1].end_micros = now;
    if (top == id) break;
  }
#else
  (void)id;
#endif
}

void StatementTrace::RecordWait(WaitCause cause, uint64_t resource,
                                uint64_t duration_micros) {
#ifndef HDB_NO_TELEMETRY
  AccumulateWait(cause, duration_micros);
  WaitEvent ev;
  ev.cause = cause;
  ev.resource = resource;
  ev.duration_micros = duration_micros;
  ev.start_micros = TraceNowMicros() - duration_micros;
  LockGuard lock(mu_);
  if (wait_ring_.size() < kMaxWaitEvents) {
    wait_ring_.push_back(ev);
  } else {
    wait_ring_[wait_seq_ % kMaxWaitEvents] = ev;
  }
  ++wait_seq_;
#else
  (void)cause;
  (void)resource;
  (void)duration_micros;
#endif
}

void StatementTrace::AccumulateWait(WaitCause cause,
                                    uint64_t duration_micros) {
#ifndef HDB_NO_TELEMETRY
  const auto i = static_cast<size_t>(cause);
  wait_micros_[i].fetch_add(duration_micros, std::memory_order_relaxed);
  wait_counts_[i].fetch_add(1, std::memory_order_relaxed);
#else
  (void)cause;
  (void)duration_micros;
#endif
}

void StatementTrace::AddSpilledBytes(uint64_t bytes) {
#ifndef HDB_NO_TELEMETRY
  spilled_bytes_.fetch_add(bytes, std::memory_order_relaxed);
#else
  (void)bytes;
#endif
}

void StatementTrace::SetQuotaPages(uint64_t pages) {
#ifndef HDB_NO_TELEMETRY
  quota_pages_.store(pages, std::memory_order_relaxed);
#else
  (void)pages;
#endif
}

void StatementTrace::SetRows(uint64_t scanned, uint64_t output) {
#ifndef HDB_NO_TELEMETRY
  rows_scanned_.store(scanned, std::memory_order_relaxed);
  rows_output_.store(output, std::memory_order_relaxed);
#else
  (void)scanned;
  (void)output;
#endif
}

void StatementTrace::SetPlan(std::string plan) {
#ifndef HDB_NO_TELEMETRY
  LockGuard lock(mu_);
  plan_ = std::move(plan);
#else
  (void)plan;
#endif
}

uint64_t StatementTrace::wait_micros(WaitCause cause) const {
  return wait_micros_[static_cast<size_t>(cause)].load(
      std::memory_order_relaxed);
}

uint64_t StatementTrace::wait_count(WaitCause cause) const {
  return wait_counts_[static_cast<size_t>(cause)].load(
      std::memory_order_relaxed);
}

uint64_t StatementTrace::total_wait_micros() const {
  uint64_t total = 0;
  for (int i = 0; i < kWaitCauseCount; ++i) {
    total += wait_micros_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t StatementTrace::spilled_bytes() const {
  return spilled_bytes_.load(std::memory_order_relaxed);
}

uint64_t StatementTrace::quota_pages() const {
  return quota_pages_.load(std::memory_order_relaxed);
}

uint64_t StatementTrace::rows_scanned() const {
  return rows_scanned_.load(std::memory_order_relaxed);
}

uint64_t StatementTrace::rows_output() const {
  return rows_output_.load(std::memory_order_relaxed);
}

uint64_t StatementTrace::dropped_spans() const {
  return dropped_spans_.load(std::memory_order_relaxed);
}

uint64_t StatementTrace::dropped_wait_events() const {
  LockGuard lock(mu_);
  return wait_seq_ > kMaxWaitEvents ? wait_seq_ - kMaxWaitEvents : 0;
}

std::string StatementTrace::current_span() const {
  LockGuard lock(mu_);
  if (open_stack_.empty()) return "";
  return spans_[open_stack_.back() - 1].name;
}

std::vector<SpanRecord> StatementTrace::Spans() const {
  LockGuard lock(mu_);
  return spans_;
}

std::vector<WaitEvent> StatementTrace::WaitEvents() const {
  LockGuard lock(mu_);
  if (wait_seq_ <= kMaxWaitEvents) return wait_ring_;
  // Ring has wrapped: return in recording order, oldest surviving first.
  std::vector<WaitEvent> out;
  out.reserve(kMaxWaitEvents);
  for (uint64_t seq = wait_seq_ - kMaxWaitEvents; seq < wait_seq_; ++seq) {
    out.push_back(wait_ring_[seq % kMaxWaitEvents]);
  }
  return out;
}

std::string StatementTrace::plan() const {
  LockGuard lock(mu_);
  return plan_;
}

std::string StatementTrace::RenderSpanTree() const {
  std::vector<SpanRecord> spans = Spans();
  // parent < id always (children open after their parent), so one forward
  // pass resolves every depth.
  std::vector<int> depth(spans.size() + 1, 0);
  std::string out;
  for (const SpanRecord& s : spans) {
    depth[s.id] = s.parent == 0 ? 0 : depth[s.parent] + 1;
    if (!out.empty()) out += '\n';
    out.append(static_cast<size_t>(depth[s.id]) * 2, ' ');
    out += s.name;
    if (!s.detail.empty()) {
      out += '(';
      out += s.detail;
      out += ')';
    }
    char buf[64];
    if (s.end_micros != 0) {
      std::snprintf(buf, sizeof(buf), " %lluus",
                    static_cast<unsigned long long>(s.end_micros -
                                                    s.start_micros));
    } else {
      std::snprintf(buf, sizeof(buf), " open");
    }
    out += buf;
  }
  return out;
}

// --- StatementRegistry -----------------------------------------------------

StatementRegistry::StatementRegistry(StatementRegistryOptions opts)
    : opts_(opts) {
  slow_ring_.reserve(opts_.slow_ring_capacity);
}

void StatementRegistry::AttachTelemetry(MetricsRegistry* registry,
                                        LatencyHistogram* statement_latency) {
  statement_latency_ = statement_latency;
  spans_counter_ = registry->RegisterCounter(obs::kTraceSpans);
  wait_events_counter_ = registry->RegisterCounter(obs::kTraceWaitEvents);
  dropped_spans_counter_ = registry->RegisterCounter(obs::kTraceDroppedSpans);
  slow_captured_counter_ = registry->RegisterCounter(obs::kStmtSlowCaptured);
  registry->RegisterCallback(obs::kStmtActive, [this] {
    return static_cast<double>(active_count());
  });
  registry->RegisterCallback(obs::kStmtSlowThresholdMicros, [this] {
    return static_cast<double>(SlowThresholdMicros());
  });
}

void StatementRegistry::Handle::Finish() {
  if (registry_ != nullptr && trace_ != nullptr) {
    registry_->End(trace_, ok_);
  }
  registry_ = nullptr;
  trace_.reset();
}

StatementRegistry::Handle StatementRegistry::Begin(uint64_t conn_id,
                                                   std::string shape) {
  const uint64_t id = next_stmt_id_.fetch_add(1, std::memory_order_relaxed);
  auto trace =
      std::make_shared<StatementTrace>(id, conn_id, std::move(shape));
  {
    LockGuard lock(mu_);
    active_.emplace(id, trace);
  }
  Handle h;
  h.registry_ = this;
  h.trace_ = std::move(trace);
  return h;
}

uint64_t StatementRegistry::SlowThresholdMicros() const {
  uint64_t threshold = opts_.slow_floor_micros;
  if (statement_latency_ != nullptr &&
      statement_latency_->count() >= opts_.min_samples_for_p99) {
    const auto p99 =
        static_cast<uint64_t>(statement_latency_->QuantileMicros(0.99));
    threshold = std::max(threshold, p99);
  }
  return threshold;
}

void StatementRegistry::End(const std::shared_ptr<StatementTrace>& trace,
                            bool ok) {
  const uint64_t elapsed = TraceNowMicros() - trace->start_micros();
  const uint64_t threshold = SlowThresholdMicros();

  if (spans_counter_ != nullptr) {
    spans_counter_->Add(trace->Spans().size());
    uint64_t events = 0;
    for (int i = 0; i < kWaitCauseCount; ++i) {
      events += trace->wait_count(static_cast<WaitCause>(i));
    }
    wait_events_counter_->Add(events);
    dropped_spans_counter_->Add(trace->dropped_spans());
  }

  SlowStatement capture;
  const bool slow = elapsed >= threshold;
  if (slow) {
    capture.stmt_id = trace->stmt_id();
    capture.conn_id = trace->conn_id();
    capture.shape = trace->shape();
    capture.ok = ok;
    capture.start_micros = trace->start_micros();
    capture.total_micros = elapsed;
    capture.threshold_micros = threshold;
    for (int i = 0; i < kWaitCauseCount; ++i) {
      const auto cause = static_cast<WaitCause>(i);
      capture.wait_micros[static_cast<size_t>(i)] = trace->wait_micros(cause);
      capture.wait_counts[static_cast<size_t>(i)] = trace->wait_count(cause);
    }
    capture.spilled_bytes = trace->spilled_bytes();
    capture.quota_pages = trace->quota_pages();
    capture.rows_scanned = trace->rows_scanned();
    capture.rows_output = trace->rows_output();
    capture.spans = trace->Spans();
    capture.waits = trace->WaitEvents();
    capture.span_tree = trace->RenderSpanTree();
    capture.plan = trace->plan();
    if (slow_captured_counter_ != nullptr) slow_captured_counter_->Add();
  }

  LockGuard lock(mu_);
  active_.erase(trace->stmt_id());
  if (slow) {
    if (slow_ring_.size() < opts_.slow_ring_capacity) {
      slow_ring_.push_back(std::move(capture));
    } else if (opts_.slow_ring_capacity > 0) {
      slow_ring_[slow_seq_ % opts_.slow_ring_capacity] = std::move(capture);
    }
    ++slow_seq_;
  }
}

std::vector<std::shared_ptr<const StatementTrace>>
StatementRegistry::ActiveSnapshot() const {
  LockGuard lock(mu_);
  std::vector<std::shared_ptr<const StatementTrace>> out;
  out.reserve(active_.size());
  for (const auto& [id, trace] : active_) out.push_back(trace);
  return out;
}

std::vector<SlowStatement> StatementRegistry::SlowSnapshot() const {
  LockGuard lock(mu_);
  if (slow_seq_ <= slow_ring_.size()) return slow_ring_;
  std::vector<SlowStatement> out;
  out.reserve(slow_ring_.size());
  const uint64_t cap = opts_.slow_ring_capacity;
  for (uint64_t seq = slow_seq_ - cap; seq < slow_seq_; ++seq) {
    out.push_back(slow_ring_[seq % cap]);
  }
  return out;
}

uint64_t StatementRegistry::active_count() const {
  LockGuard lock(mu_);
  return active_.size();
}

namespace {

void JsonEscapeTo(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// One complete ("ph":"X") trace event. tid = statement id, so each
// statement renders as its own track in the Perfetto UI.
void AppendEvent(std::string& out, bool& first, const char* cat,
                 const std::string& name, uint64_t stmt_id, uint64_t ts,
                 uint64_t dur, const std::string& args_detail,
                 uint64_t resource, bool has_resource) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"";
  JsonEscapeTo(out, name);
  out += "\",\"cat\":\"";
  out += cat;
  out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%llu,\"ts\":%llu,\"dur\":%llu",
                static_cast<unsigned long long>(stmt_id),
                static_cast<unsigned long long>(ts),
                static_cast<unsigned long long>(dur));
  out += buf;
  if (!args_detail.empty() || has_resource) {
    out += ",\"args\":{";
    bool first_arg = true;
    if (!args_detail.empty()) {
      out += "\"detail\":\"";
      JsonEscapeTo(out, args_detail);
      out += '"';
      first_arg = false;
    }
    if (has_resource) {
      if (!first_arg) out += ',';
      std::snprintf(buf, sizeof(buf), "\"resource\":%llu",
                    static_cast<unsigned long long>(resource));
      out += buf;
    }
    out += '}';
  }
  out += '}';
}

void AppendStatement(std::string& out, bool& first, uint64_t stmt_id,
                     const std::string& shape, uint64_t start, uint64_t total,
                     const std::vector<SpanRecord>& spans,
                     const std::vector<WaitEvent>& waits, uint64_t now) {
  AppendEvent(out, first, "stmt", shape, stmt_id, start, total, "", 0, false);
  for (const SpanRecord& s : spans) {
    const uint64_t end = s.end_micros != 0 ? s.end_micros : now;
    AppendEvent(out, first, "span", s.name, stmt_id, s.start_micros,
                end > s.start_micros ? end - s.start_micros : 0, s.detail, 0,
                false);
  }
  for (const WaitEvent& w : waits) {
    AppendEvent(out, first, "wait", WaitCauseName(w.cause), stmt_id,
                w.start_micros, w.duration_micros, "", w.resource, true);
  }
}

}  // namespace

std::string StatementRegistry::ExportChromeTraceJson() const {
  const uint64_t now = TraceNowMicros();
  const std::vector<SlowStatement> slow = SlowSnapshot();
  const auto active = ActiveSnapshot();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SlowStatement& s : slow) {
    AppendStatement(out, first, s.stmt_id, s.shape, s.start_micros,
                    s.total_micros, s.spans, s.waits, now);
  }
  for (const auto& trace : active) {
    AppendStatement(out, first, trace->stmt_id(), trace->shape(),
                    trace->start_micros(), now - trace->start_micros(),
                    trace->Spans(), trace->WaitEvents(), now);
  }
  out += "]}";
  return out;
}

WaitBreakdown CurrentWaitBreakdown() {
  WaitBreakdown b;
#ifndef HDB_NO_TELEMETRY
  const StatementTrace* trace = CurrentStatementTrace();
  if (trace != nullptr) {
    b.lock_micros = trace->wait_micros(WaitCause::kLock);
    b.wal_micros = trace->wait_micros(WaitCause::kWalDurable);
    b.spill_micros = trace->wait_micros(WaitCause::kSpillWrite) +
                     trace->wait_micros(WaitCause::kSpillRead);
    b.pool_micros = trace->wait_micros(WaitCause::kPoolMiss);
  }
#endif
  return b;
}

}  // namespace hdb::obs
