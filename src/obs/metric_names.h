#ifndef HDB_OBS_METRIC_NAMES_H_
#define HDB_OBS_METRIC_NAMES_H_

// Central list of every metric name registered anywhere in the tree.
// Names are dotted snake_case: `<subsystem>.<signal>[_<unit>]`, matching
// ^[a-z0-9_]+(\.[a-z0-9_]+)+$ — scripts/check_metrics.sh parses this file
// and fails the build-tree tests on duplicates or malformed names, so new
// metrics MUST be added here, never as inline string literals.

namespace hdb::obs {

// storage/ — buffer pool (pull callbacks over BufferPool::stats()) and
// pool-governor resize activity.
inline constexpr char kPoolHits[] = "pool.hits";
inline constexpr char kPoolMisses[] = "pool.misses";
inline constexpr char kPoolEvictions[] = "pool.evictions";
inline constexpr char kPoolHeapSteals[] = "pool.heap_steals";
inline constexpr char kPoolLookasideReuses[] = "pool.lookaside_reuses";
inline constexpr char kPoolCurrentFrames[] = "pool.current_frames";
inline constexpr char kPoolPinnedFrames[] = "pool.pinned_frames";
inline constexpr char kPoolFreeFrames[] = "pool.free_frames";
inline constexpr char kPoolCurrentBytes[] = "pool.current_bytes";
inline constexpr char kPoolGovernorPolls[] = "pool.governor_polls";
inline constexpr char kPoolResizesGrow[] = "pool.resizes_grow";
inline constexpr char kPoolResizesShrink[] = "pool.resizes_shrink";

// exec/ — admission gate, MPL controller, memory governor.
// admission.timeouts is the machine-readable overload signal: statements
// rejected with StatusCode::kOverloaded after the queue wait expired (the
// network front end turns each into an overload frame, DESIGN.md §12).
inline constexpr char kAdmissionTimeouts[] = "admission.timeouts";
inline constexpr char kGateAdmittedImmediately[] = "gate.admitted_immediately";
inline constexpr char kGateAdmittedAfterWait[] = "gate.admitted_after_wait";
inline constexpr char kGateTimedOut[] = "gate.timed_out";
inline constexpr char kGateActive[] = "gate.active";
inline constexpr char kGateWaiting[] = "gate.waiting";
inline constexpr char kGateWaitMicros[] = "gate.wait_micros";
inline constexpr char kMplCurrent[] = "mpl.current";
inline constexpr char kMplChanges[] = "mpl.changes";
inline constexpr char kMplAdaptations[] = "mpl.adaptations";
inline constexpr char kMemReclamations[] = "mem.reclamations";
inline constexpr char kMemReclaimedPages[] = "mem.reclaimed_pages";
inline constexpr char kMemHardLimitKills[] = "mem.hard_limit_kills";
inline constexpr char kMemActiveTasks[] = "mem.active_tasks";
inline constexpr char kMemSoftLimitPages[] = "mem.soft_limit_pages";
inline constexpr char kMemHardLimitPages[] = "mem.hard_limit_pages";

// txn/ — the lock table is no-wait (§2.1), so a "lock wait" surfaces as a
// conflict that aborts the statement; deadlock timeouts cannot occur.
inline constexpr char kLockConflicts[] = "lock.conflicts";
inline constexpr char kLockHeld[] = "lock.held";
inline constexpr char kLockTablePages[] = "lock.table_pages";

// engine/ — statements by kind, outcome, and phase latencies.
inline constexpr char kStmtSelect[] = "stmt.select";
inline constexpr char kStmtInsert[] = "stmt.insert";
inline constexpr char kStmtUpdate[] = "stmt.update";
inline constexpr char kStmtDelete[] = "stmt.delete";
inline constexpr char kStmtCall[] = "stmt.call";
inline constexpr char kStmtDdl[] = "stmt.ddl";
inline constexpr char kStmtTxn[] = "stmt.txn";
inline constexpr char kStmtExplain[] = "stmt.explain";
inline constexpr char kStmtOther[] = "stmt.other";
inline constexpr char kStmtErrors[] = "stmt.errors";
inline constexpr char kLatencyParseMicros[] = "latency.parse_micros";
inline constexpr char kLatencyOptimizeMicros[] = "latency.optimize_micros";
inline constexpr char kLatencyExecuteMicros[] = "latency.execute_micros";

// exec/ operator-level totals, accumulated per statement from RuntimeStats.
inline constexpr char kExecRowsScanned[] = "exec.rows_scanned";
inline constexpr char kExecRowsOutput[] = "exec.rows_output";
inline constexpr char kExecSpilledTuples[] = "exec.spilled_tuples";
inline constexpr char kExecPartitionsEvicted[] = "exec.partitions_evicted";
inline constexpr char kExecSortRunsSpilled[] = "exec.sort_runs_spilled";
inline constexpr char kExecGroupBySpilledGroups[] =
    "exec.group_by_spilled_groups";

// exec/ — statement-scoped spill scheduler (DESIGN.md §10).
inline constexpr char kExecSpillBytesWritten[] = "exec.spill.bytes_written";
inline constexpr char kExecSpillBytesRead[] = "exec.spill.bytes_read";
inline constexpr char kExecSpillRepartitions[] = "exec.spill.repartitions";
inline constexpr char kExecSpillDecisions[] = "exec.spill.decisions";

// exec/ — vectorized batch execution (DESIGN.md §9).
inline constexpr char kExecBatches[] = "exec.batch.batches";
inline constexpr char kExecBatchRows[] = "exec.batch.rows";
inline constexpr char kExecBatchArenaBytes[] = "exec.batch.arena_bytes";
inline constexpr char kExecBatchCapShrinks[] = "exec.batch.cap_shrinks";

// exec/ — intra-query parallelism (paper §4.4, DESIGN.md §13).
inline constexpr char kExecParallelPipelines[] = "exec.parallel.pipelines";
inline constexpr char kExecParallelWorkersStarted[] =
    "exec.parallel.workers_started";
inline constexpr char kExecParallelWorkersRevoked[] =
    "exec.parallel.workers_revoked";
inline constexpr char kExecParallelMorsels[] = "exec.parallel.morsels";

// profile/ — request tracer sink backpressure.
inline constexpr char kTraceEvents[] = "trace.events";
inline constexpr char kTraceDroppedSinkWrites[] = "trace.dropped_sink_writes";
inline constexpr char kTraceDroppedRing[] = "trace.dropped_ring";

// obs/ — statement lifecycle tracing (DESIGN.md §11).
inline constexpr char kTraceSpans[] = "trace.spans";
inline constexpr char kTraceWaitEvents[] = "trace.wait_events";
inline constexpr char kTraceDroppedSpans[] = "trace.dropped_spans";
inline constexpr char kStmtActive[] = "stmt.active";
inline constexpr char kStmtSlowCaptured[] = "stmt.slow_captured";
inline constexpr char kStmtSlowThresholdMicros[] =
    "stmt.slow_threshold_micros";

// net/ — the network front end (DESIGN.md §12): connection lifecycle,
// wire-level traffic, and overload/shedding activity.
inline constexpr char kNetConnectionsAccepted[] = "net.connections_accepted";
inline constexpr char kNetConnectionsClosed[] = "net.connections_closed";
inline constexpr char kNetConnectionsActive[] = "net.connections_active";
inline constexpr char kNetConnectionsShed[] = "net.connections_shed";
inline constexpr char kNetConnectionsRejected[] = "net.connections_rejected";
inline constexpr char kNetFramesIn[] = "net.frames_in";
inline constexpr char kNetFramesOut[] = "net.frames_out";
inline constexpr char kNetBytesIn[] = "net.bytes_in";
inline constexpr char kNetBytesOut[] = "net.bytes_out";
inline constexpr char kNetStatements[] = "net.statements";
inline constexpr char kNetOverloadsSent[] = "net.overloads_sent";
inline constexpr char kNetProtocolErrors[] = "net.protocol_errors";
inline constexpr char kNetWriteStalls[] = "net.write_stalls";

// obs/ — the decision log itself.
inline constexpr char kGovDecisions[] = "gov.decisions";

// wal/ — write-ahead log activity and durability horizon.
inline constexpr char kWalAppends[] = "wal.appends";
inline constexpr char kWalBytes[] = "wal.bytes";
inline constexpr char kWalFsyncs[] = "wal.fsyncs";
inline constexpr char kWalGroupCommitBatches[] = "wal.group_commit_batches";
inline constexpr char kWalAppendedLsn[] = "wal.appended_lsn";
inline constexpr char kWalDurableLsn[] = "wal.durable_lsn";
inline constexpr char kWalBytesSinceCheckpoint[] =
    "wal.bytes_since_checkpoint";

// wal/ — checkpoint governor activity and its self-derived target.
inline constexpr char kCheckpointCount[] = "checkpoint.count";
inline constexpr char kCheckpointPagesFlushed[] = "checkpoint.pages_flushed";
inline constexpr char kCheckpointMicros[] = "checkpoint.micros";
inline constexpr char kCheckpointTargetLogBytes[] =
    "checkpoint.target_log_bytes";

// wal/ — last crash recovery (set once at open).
inline constexpr char kRecoveryRuns[] = "recovery.runs";
inline constexpr char kRecoveryRedoRecords[] = "recovery.redo_records";
inline constexpr char kRecoveryRedoSkipped[] = "recovery.redo_skipped";
inline constexpr char kRecoveryRedoBytes[] = "recovery.redo_bytes";
inline constexpr char kRecoveryUndoRecords[] = "recovery.undo_records";
inline constexpr char kRecoveryLoserTxns[] = "recovery.loser_txns";
inline constexpr char kRecoveryTornPages[] = "recovery.torn_pages";

}  // namespace hdb::obs

#endif  // HDB_OBS_METRIC_NAMES_H_
