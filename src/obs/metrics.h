#ifndef HDB_OBS_METRICS_H_
#define HDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lock_rank.h"

namespace hdb::obs {

/// Telemetry primitives (DESIGN.md §6). Mutation paths are relaxed atomics
/// so instrumented hot paths never serialize; registration and snapshots
/// take a registry mutex. When the tree is configured with
/// `-DHDB_TELEMETRY=OFF` (which defines HDB_NO_TELEMETRY), every mutation
/// call compiles to a no-op while the call sites and the registry API stay
/// intact — that build is the baseline for the instrumentation-overhead
/// budget in EXPERIMENTS.md.

/// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
#ifndef HDB_NO_TELEMETRY
    v_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written level (may go up or down).
class Gauge {
 public:
  void Set(int64_t v) {
#ifndef HDB_NO_TELEMETRY
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t delta) {
#ifndef HDB_NO_TELEMETRY
    v_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed log2-bucketed latency histogram over microseconds. Bucket i
/// holds samples in [2^(i-1), 2^i) µs (bucket 0 holds 0 µs). Lock-free
/// recording; quantiles are approximated by each bucket's upper bound.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(uint64_t micros) {
#ifndef HDB_NO_TELEMETRY
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
    buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
#else
    (void)micros;
#endif
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }
  double mean_micros() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum_micros()) / n;
  }
  /// Upper bound of the bucket containing quantile q (0 < q <= 1).
  double QuantileMicros(double q) const;

  static int BucketFor(uint64_t micros);
  /// Upper bound (µs) of bucket i.
  static uint64_t BucketUpperMicros(int i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

enum class MetricKind { kCounter, kGauge, kCallback, kHistogram };

/// One row of a registry snapshot — also the row shape of `sys.counters`
/// (name, value) with histogram rollups flattened in.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter/gauge/callback value; histogram mean µs
  // Histogram-only rollups.
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
};

/// Thread-safe registry of named metrics, owned by `engine::Database`.
/// Registration is idempotent: re-registering a name of the same kind
/// returns the existing object (stable pointer for the process lifetime).
/// Callback gauges are the pull model for values another subsystem
/// already maintains (buffer-pool stats, admission-gate stats): the
/// source stays authoritative and nothing is double-counted.
class MetricsRegistry {
 public:
  Counter* RegisterCounter(const std::string& name);
  Gauge* RegisterGauge(const std::string& name);
  LatencyHistogram* RegisterHistogram(const std::string& name);
  void RegisterCallback(const std::string& name, std::function<double()> fn);

  /// All metrics, sorted by name; callbacks are invoked at snapshot time.
  std::vector<MetricSample> Snapshot() const;
  /// Registered names, sorted (tests: uniqueness/snake_case).
  std::vector<std::string> Names() const;

 private:
  mutable RankedMutex<LockRank::kMetricsRegistry> mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, std::function<double()>> callbacks_ GUARDED_BY(mu_);
};

}  // namespace hdb::obs

#endif  // HDB_OBS_METRICS_H_
