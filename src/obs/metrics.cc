#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace hdb::obs {

int LatencyHistogram::BucketFor(uint64_t micros) {
  if (micros == 0) return 0;
  const int b = 64 - std::countl_zero(micros);  // position of highest bit
  return b >= kBuckets ? kBuckets - 1 : b;
}

uint64_t LatencyHistogram::BucketUpperMicros(int i) {
  if (i <= 0) return 0;
  return 1ull << i;
}

double LatencyHistogram::QuantileMicros(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(n) + 0.5);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return static_cast<double>(BucketUpperMicros(i));
  }
  return static_cast<double>(BucketUpperMicros(kBuckets - 1));
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::RegisterHistogram(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<double()> fn) {
  LockGuard lock(mu_);
  callbacks_[name] = std::move(fn);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  LockGuard lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              callbacks_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = static_cast<double>(g->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, fn] : callbacks_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCallback;
    s.value = fn ? fn() : 0;
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum_micros = h->sum_micros();
    s.value = h->mean_micros();
    s.p50_micros = h->QuantileMicros(0.50);
    s.p95_micros = h->QuantileMicros(0.95);
    s.p99_micros = h->QuantileMicros(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<std::string> MetricsRegistry::Names() const {
  LockGuard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, h] : histograms_) out.push_back(name);
  for (const auto& [name, f] : callbacks_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hdb::obs
