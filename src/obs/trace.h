#ifndef HDB_OBS_TRACE_H_
#define HDB_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "obs/span_names.h"

namespace hdb::obs {

class Counter;
class LatencyHistogram;
class MetricsRegistry;

/// Statement lifecycle tracing (DESIGN.md §11).
///
/// Every top-level statement owns a StatementTrace: a span tree
/// (admission wait → parse → optimize → execute with per-blocking-operator
/// children → commit) plus a per-cause wait breakdown. Subsystems reach
/// the trace of the statement running on the current thread through a
/// thread-local pointer (CurrentStatementTrace), so a lock conflict deep
/// inside txn/ or a group-commit wait inside wal/ attributes itself to the
/// right statement without plumbing a context argument through every
/// layer. Exchange worker threads (DESIGN.md §13) install the owning
/// statement's trace with ScopedCurrentTrace for the duration of their
/// fragment, so waits incurred inside morsels (pool misses, lock
/// conflicts, WAL) land in the same per-statement tallies; each worker
/// brackets itself with a detached span (OpenDetachedSpan) rather than a
/// stack span, because sibling workers overlap in time.
///
/// Thread-safety: the owning connection thread mutates the span stack;
/// the cumulative wait/byte tallies are relaxed atomics (safe to bump
/// from any thread while holding any subsystem latch), and the span tree
/// + wait-event ring are guarded by a kStatementTrace mutex — the highest
/// rank in the hierarchy, so recording under e.g. the lock-manager or
/// task-memory latch is always hierarchy-legal, from workers too. Readers
/// (sys.active_statements, TraceExportJson) snapshot under the same
/// mutex.
///
/// Under -DHDB_TELEMETRY=OFF every mutation below compiles to a no-op,
/// matching the Counter/Gauge contract in obs/metrics.h.

/// Why a statement was off-CPU (or burning time it didn't choose to).
/// Keep in sync with the wait.* constants in span_names.h and
/// WaitCauseName(); scripts/check_metrics.sh cross-checks the count.
enum class WaitCause : uint8_t {
  kAdmission = 0,   // queued on the admission gate's MPL
  kLock = 1,        // lock-manager conflict (no-wait: the failed acquire)
  kWalDurable = 2,  // WaitDurable/EnsureDurable on the WAL
  kSpillWrite = 3,  // writing spill pages (memory-governor eviction)
  kSpillRead = 4,   // reading spilled tuples back
  kPoolMiss = 5,    // buffer-pool miss -> disk read
  kNetWrite = 6,    // net/ result-flush backpressure: the connection's
                    // write buffer is over its high-water mark and the
                    // worker stalls until the event loop drains it
};
inline constexpr int kWaitCauseCount = 7;

/// The wait.* name for a cause (bijection onto span_names.h).
const char* WaitCauseName(WaitCause cause);

/// Steady-clock microseconds since process start; the time base for every
/// span/wait timestamp (mirrors engine WallMicros, but obs/ cannot depend
/// on engine/).
uint64_t TraceNowMicros();

/// One node of a statement's span tree. `name` points at a span_names.h
/// constant (static storage duration) — never a transient string.
struct SpanRecord {
  uint32_t id = 0;      // 1-based; index into the trace's span vector + 1
  uint32_t parent = 0;  // 0 = statement root
  const char* name = "";
  std::string detail;          // operator label, victim name, ...
  uint64_t start_micros = 0;   // TraceNowMicros at open
  uint64_t end_micros = 0;     // 0 while still open
};

/// One discrete blocking event (admission wait, lock conflict, durable
/// wait, forced spill). High-frequency causes (per-tuple spill I/O, pool
/// misses) are accumulated into the cumulative tallies only.
struct WaitEvent {
  WaitCause cause = WaitCause::kAdmission;
  uint64_t resource = 0;  // lock key / LSN / page id / bytes — cause-typed
  uint64_t start_micros = 0;
  uint64_t duration_micros = 0;
};

class StatementTrace {
 public:
  // Bounds keep a runaway statement's trace O(1): spans/wait events past
  // the cap are counted as dropped, never allocated.
  static constexpr size_t kMaxSpans = 256;
  static constexpr size_t kMaxWaitEvents = 64;

  StatementTrace(uint64_t stmt_id, uint64_t conn_id, std::string shape);

  // --- Mutation (owning thread; no-ops under HDB_NO_TELEMETRY) ----------
  /// Opens a child of the innermost open span; returns the span id (0 if
  /// dropped — CloseSpan(0) is a no-op).
  uint32_t OpenSpan(const char* name, std::string detail = {});
  void CloseSpan(uint32_t id);
  /// Opens a child of the innermost open span WITHOUT pushing it on the
  /// open-span stack — for exchange worker threads, whose spans are
  /// overlapping siblings closed from their own threads. CloseSpan on a
  /// detached id just stamps its end time (the not-on-stack path), so
  /// the coordinating thread's stack discipline is never perturbed.
  /// Safe to call from any thread.
  uint32_t OpenDetachedSpan(const char* name, std::string detail = {});
  /// Records a discrete wait event AND adds it to the cumulative tally.
  void RecordWait(WaitCause cause, uint64_t resource,
                  uint64_t duration_micros);
  /// Cumulative tally only — for per-tuple hot paths where a ring entry
  /// per occurrence would be noise (spill I/O, pool misses).
  void AccumulateWait(WaitCause cause, uint64_t duration_micros);
  void AddSpilledBytes(uint64_t bytes);
  void SetQuotaPages(uint64_t pages);
  void SetRows(uint64_t scanned, uint64_t output);
  void SetPlan(std::string plan);

  // --- Read side (any thread) -------------------------------------------
  uint64_t stmt_id() const { return stmt_id_; }
  uint64_t conn_id() const { return conn_id_; }
  const std::string& shape() const { return shape_; }  // immutable
  uint64_t start_micros() const { return start_micros_; }
  uint64_t wait_micros(WaitCause cause) const;
  uint64_t wait_count(WaitCause cause) const;
  uint64_t total_wait_micros() const;
  uint64_t spilled_bytes() const;
  uint64_t quota_pages() const;
  uint64_t rows_scanned() const;
  uint64_t rows_output() const;
  uint64_t dropped_spans() const;
  uint64_t dropped_wait_events() const;
  /// Name of the innermost open span ("" when idle/complete).
  std::string current_span() const;
  std::vector<SpanRecord> Spans() const;
  std::vector<WaitEvent> WaitEvents() const;
  std::string plan() const;
  /// Indented one-line-per-span rendering for sys.slow_statements.
  std::string RenderSpanTree() const;

 private:
  const uint64_t stmt_id_;
  const uint64_t conn_id_;
  const std::string shape_;
  const uint64_t start_micros_;

  // Lock-free tallies: safe to bump while holding any subsystem latch.
  std::array<std::atomic<uint64_t>, kWaitCauseCount> wait_micros_{};
  std::array<std::atomic<uint64_t>, kWaitCauseCount> wait_counts_{};
  std::atomic<uint64_t> spilled_bytes_{0};
  std::atomic<uint64_t> quota_pages_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_output_{0};
  std::atomic<uint64_t> dropped_spans_{0};

  mutable RankedMutex<LockRank::kStatementTrace> mu_;
  // id = index + 1; append-only.
  std::vector<SpanRecord> spans_ GUARDED_BY(mu_);
  // ids of open spans, root→leaf.
  std::vector<uint32_t> open_stack_ GUARDED_BY(mu_);
  // kMaxWaitEvents cap, overwrite.
  std::vector<WaitEvent> wait_ring_ GUARDED_BY(mu_);
  // Total wait events ever recorded.
  uint64_t wait_seq_ GUARDED_BY(mu_) = 0;
  std::string plan_ GUARDED_BY(mu_);
};

// --- Thread-local current statement ---------------------------------------

namespace trace_internal {
extern thread_local StatementTrace* tl_current_trace;
}  // namespace trace_internal

/// Trace of the statement executing on this thread (null on worker/flusher
/// threads and outside statement execution).
inline StatementTrace* CurrentStatementTrace() {
  return trace_internal::tl_current_trace;
}

/// Installs `trace` as the thread's current statement for a scope.
/// Passing null leaves the slot untouched (a nested procedure-body
/// statement keeps attributing to the outer statement's trace).
class ScopedCurrentTrace {
 public:
  explicit ScopedCurrentTrace(StatementTrace* trace) {
    if (trace != nullptr) {
      prev_ = trace_internal::tl_current_trace;
      trace_internal::tl_current_trace = trace;
      active_ = true;
    }
  }
  ~ScopedCurrentTrace() {
    if (active_) trace_internal::tl_current_trace = prev_;
  }
  ScopedCurrentTrace(const ScopedCurrentTrace&) = delete;
  ScopedCurrentTrace& operator=(const ScopedCurrentTrace&) = delete;

 private:
  StatementTrace* prev_ = nullptr;
  bool active_ = false;
};

/// RAII span on the current thread's trace; no-op when none is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::string detail = {}) {
#ifndef HDB_NO_TELEMETRY
    trace_ = CurrentStatementTrace();
    if (trace_ != nullptr) id_ = trace_->OpenSpan(name, std::move(detail));
#else
    (void)name;
    (void)detail;
#endif
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->CloseSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  StatementTrace* trace_ = nullptr;
  uint32_t id_ = 0;
};

/// RAII discrete wait event on the current thread's trace: records the
/// scope's duration under `cause` at destruction. Construct it only on
/// paths that are actually about to block (after fast-path outs).
class ScopedWait {
 public:
  ScopedWait(WaitCause cause, uint64_t resource) {
#ifndef HDB_NO_TELEMETRY
    trace_ = CurrentStatementTrace();
    if (trace_ != nullptr) {
      cause_ = cause;
      resource_ = resource;
      start_ = TraceNowMicros();
    }
#else
    (void)cause;
    (void)resource;
#endif
  }
  ~ScopedWait() {
    if (trace_ != nullptr) {
      trace_->RecordWait(cause_, resource_, TraceNowMicros() - start_);
    }
  }
  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  StatementTrace* trace_ = nullptr;
  WaitCause cause_ = WaitCause::kAdmission;
  uint64_t resource_ = 0;
  uint64_t start_ = 0;
};

/// Per-operator EXPLAIN ANALYZE rollup: cumulative wait micros of the
/// current thread's trace, collapsed to the four rendered causes. All
/// zeros when no trace is installed.
struct WaitBreakdown {
  uint64_t lock_micros = 0;
  uint64_t wal_micros = 0;
  uint64_t spill_micros = 0;  // write + read
  uint64_t pool_micros = 0;
};
WaitBreakdown CurrentWaitBreakdown();

// --- Statement registry ----------------------------------------------------

/// Fully-materialized capture of a finished slow statement
/// (sys.slow_statements row source).
struct SlowStatement {
  uint64_t stmt_id = 0;
  uint64_t conn_id = 0;
  std::string shape;
  bool ok = true;
  uint64_t start_micros = 0;
  uint64_t total_micros = 0;
  uint64_t threshold_micros = 0;  // threshold in force at capture time
  std::array<uint64_t, kWaitCauseCount> wait_micros{};
  std::array<uint64_t, kWaitCauseCount> wait_counts{};
  uint64_t spilled_bytes = 0;
  uint64_t quota_pages = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_output = 0;
  std::vector<SpanRecord> spans;
  std::vector<WaitEvent> waits;
  std::string span_tree;  // rendered at capture
  std::string plan;
};

struct StatementRegistryOptions {
  /// Slow-statement ring capacity.
  size_t slow_ring_capacity = 32;
  /// Threshold floor (µs): nothing faster is ever captured. 0 captures
  /// everything — deterministic test mode.
  uint64_t slow_floor_micros = 10'000;
  /// Histogram samples required before the p99 rule engages; below this
  /// the floor alone governs (a cold server has no meaningful p99).
  uint64_t min_samples_for_p99 = 64;
};

/// Owns the active-statement map and the slow-statement ring; one per
/// Database. The slow threshold is zero-knob: max(floor, statement-latency
/// p99) once enough samples exist, so "slow" self-calibrates to the
/// workload instead of a DBA-set cutoff (the paper's §4 governor stance).
class StatementRegistry {
 public:
  explicit StatementRegistry(StatementRegistryOptions opts = {});

  /// Registers the trace.*/stmt.* series and the latency histogram the
  /// p99 rule reads (the engine's latency.execute_micros).
  void AttachTelemetry(MetricsRegistry* registry,
                       LatencyHistogram* statement_latency);

  /// RAII statement registration: Begin() → run → handle destruction
  /// ends the statement, updates counters, and captures it into the slow
  /// ring if it crossed the threshold.
  class Handle {
   public:
    Handle() = default;
    ~Handle() { Finish(); }
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Finish();
        registry_ = other.registry_;
        trace_ = std::move(other.trace_);
        ok_ = other.ok_;
        other.registry_ = nullptr;
        other.trace_.reset();
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    StatementTrace* trace() const { return trace_.get(); }
    void set_ok(bool ok) { ok_ = ok; }
    /// Ends the statement now (idempotent; the destructor calls it).
    void Finish();

   private:
    friend class StatementRegistry;
    StatementRegistry* registry_ = nullptr;
    std::shared_ptr<StatementTrace> trace_;
    bool ok_ = true;
  };

  Handle Begin(uint64_t conn_id, std::string shape);

  /// Current auto-tuned slow threshold (µs).
  uint64_t SlowThresholdMicros() const;
  /// True if a statement of `elapsed_micros` would be captured — callers
  /// use it to decide whether materializing the plan is worth it.
  bool LikelySlow(uint64_t elapsed_micros) const {
    return elapsed_micros >= SlowThresholdMicros();
  }

  /// Live statements, stmt-id order (sys.active_statements row source).
  std::vector<std::shared_ptr<const StatementTrace>> ActiveSnapshot() const;
  /// Captured slow statements, oldest first (sys.slow_statements).
  std::vector<SlowStatement> SlowSnapshot() const;
  uint64_t active_count() const;

  /// Chrome/Perfetto trace-event JSON ("traceEvents" array of complete
  /// "X" events): all captured slow statements plus the open spans of
  /// live statements. Load in ui.perfetto.dev / chrome://tracing.
  std::string ExportChromeTraceJson() const;

 private:
  void End(const std::shared_ptr<StatementTrace>& trace, bool ok);

  const StatementRegistryOptions opts_;
  mutable RankedMutex<LockRank::kStatementRegistry> mu_;
  std::atomic<uint64_t> next_stmt_id_{1};
  std::map<uint64_t, std::shared_ptr<StatementTrace>> active_ GUARDED_BY(mu_);
  // Capacity opts_.slow_ring_capacity.
  std::vector<SlowStatement> slow_ring_ GUARDED_BY(mu_);
  // Total captures ever.
  uint64_t slow_seq_ GUARDED_BY(mu_) = 0;

  // Telemetry (null until AttachTelemetry). Set once before concurrent
  // statement traffic, read lock-free afterwards — deliberately not
  // GUARDED_BY (DESIGN.md §8.4 set-once contract).
  LatencyHistogram* statement_latency_ = nullptr;
  Counter* spans_counter_ = nullptr;
  Counter* wait_events_counter_ = nullptr;
  Counter* dropped_spans_counter_ = nullptr;
  Counter* slow_captured_counter_ = nullptr;
};

}  // namespace hdb::obs

#endif  // HDB_OBS_TRACE_H_
