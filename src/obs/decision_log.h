#ifndef HDB_OBS_DECISION_LOG_H_
#define HDB_OBS_DECISION_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/lock_rank.h"

namespace hdb::obs {

/// One self-management adjustment: which governor acted, what it did, why,
/// and the primary input/output signals. Rendered by `sys.governors` and
/// `Database::TelemetrySnapshotJson()`.
struct Decision {
  uint64_t seq = 0;       // monotonically increasing across the log
  int64_t at_micros = 0;  // virtual-clock time of the decision
  std::string governor;   // "pool" | "mpl" | "memory"
  std::string action;     // e.g. "grow", "shrink", "hold", "raise", "reclaim"
  std::string reason;     // reason code, e.g. "dead_zone", "no_misses"
  double input = 0;       // governor-specific input signal
  double output = 0;      // resulting setting
};

/// Fixed-capacity ring buffer of governor decisions. Recording is cheap
/// (one mutex, no allocation beyond the strings); when the ring is full
/// the oldest entry is overwritten — `total_recorded()` keeps the true
/// count so droppage is visible.
class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 256);

  void Record(int64_t at_micros, std::string governor, std::string action,
              std::string reason, double input, double output);

  /// Retained decisions, oldest first.
  std::vector<Decision> Snapshot() const;
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable RankedMutex<LockRank::kDecisionLog> mu_;
  // == total recorded
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  // ring_[seq % capacity_]
  std::vector<Decision> ring_ GUARDED_BY(mu_);
};

}  // namespace hdb::obs

#endif  // HDB_OBS_DECISION_LOG_H_
