#include "obs/decision_log.h"

#include <algorithm>

namespace hdb::obs {

DecisionLog::DecisionLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void DecisionLog::Record(int64_t at_micros, std::string governor,
                         std::string action, std::string reason, double input,
                         double output) {
  LockGuard lock(mu_);
  Decision d;
  d.seq = next_seq_++;
  d.at_micros = at_micros;
  d.governor = std::move(governor);
  d.action = std::move(action);
  d.reason = std::move(reason);
  d.input = input;
  d.output = output;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(d));
  } else {
    ring_[d.seq % capacity_] = std::move(d);
  }
}

std::vector<Decision> DecisionLog::Snapshot() const {
  LockGuard lock(mu_);
  std::vector<Decision> out = ring_;
  std::sort(out.begin(), out.end(),
            [](const Decision& a, const Decision& b) { return a.seq < b.seq; });
  return out;
}

uint64_t DecisionLog::total_recorded() const {
  LockGuard lock(mu_);
  return next_seq_;
}

}  // namespace hdb::obs
