#ifndef HDB_OBS_SPAN_NAMES_H_
#define HDB_OBS_SPAN_NAMES_H_

// Central list of every span name and wait-cause name the statement
// tracer emits (DESIGN.md §11). Same contract as metric_names.h: names
// are dotted snake_case matching ^[a-z0-9_]+(\.[a-z0-9_]+)+$, unique, and
// every constant defined here must be referenced from src/ —
// scripts/check_metrics.sh parses this file too and fails on drift, so
// new spans MUST be added here, never as inline string literals.
//
// Span names label nodes of a statement's span tree; wait-cause names
// label the WaitCause enum in obs/trace.h (WaitCauseName must stay a
// bijection onto the wait.* constants below).

namespace hdb::obs {

// Statement lifecycle phases (children of the statement root).
inline constexpr char kSpanParse[] = "stmt.phase.parse";
inline constexpr char kSpanAdmission[] = "stmt.phase.admission";
inline constexpr char kSpanOptimize[] = "stmt.phase.optimize";
inline constexpr char kSpanExecute[] = "stmt.phase.execute";
inline constexpr char kSpanCommit[] = "stmt.phase.commit";

// Blocking-operator spans (children of stmt.phase.execute).
inline constexpr char kSpanOpHashJoin[] = "op.hash_join";
inline constexpr char kSpanOpSort[] = "op.sort";
inline constexpr char kSpanOpHashGroupBy[] = "op.hash_group_by";
inline constexpr char kSpanOpHashDistinct[] = "op.hash_distinct";

// Spill-scheduler victim eviction (child of whatever span was open when
// the memory governor forced a spill).
inline constexpr char kSpanSpill[] = "op.spill";

// One detached span per exchange worker thread (child of the span open
// when the pipeline started; siblings overlap in time, DESIGN.md §13).
inline constexpr char kSpanOpParallelWorker[] = "op.parallel_worker";

// Wait causes (obs::WaitCause), in enum order.
inline constexpr char kWaitAdmission[] = "wait.admission";
inline constexpr char kWaitLock[] = "wait.lock";
inline constexpr char kWaitWalDurable[] = "wait.wal_durable";
inline constexpr char kWaitSpillWrite[] = "wait.spill_write";
inline constexpr char kWaitSpillRead[] = "wait.spill_read";
inline constexpr char kWaitPoolMiss[] = "wait.pool_miss";
inline constexpr char kWaitNetWrite[] = "wait.net_write";

}  // namespace hdb::obs

#endif  // HDB_OBS_SPAN_NAMES_H_
