#include "common/value.h"

#include <cinttypes>
#include <cstdio>

namespace hdb {

namespace {

// FNV-1a 64-bit.
uint64_t FnvHash(const void* data, size_t len, uint64_t seed = 14695981039346656037ull) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  const bool this_str = std::holds_alternative<std::string>(repr_);
  const bool other_str = std::holds_alternative<std::string>(other.repr_);
  if (this_str != other_str) {
    return static_cast<int>(type_) - static_cast<int>(other.type_);
  }
  if (this_str) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (std::holds_alternative<bool>(repr_) &&
      std::holds_alternative<bool>(other.repr_)) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  // Numeric comparison; exact for two int64s, via double otherwise.
  if (std::holds_alternative<int64_t>(repr_) &&
      std::holds_alternative<int64_t>(other.repr_)) {
    const int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  return Sign(AsDouble() - other.AsDouble());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeId::kBoolean:
      return AsBool() ? "TRUE" : "FALSE";
    case TypeId::kInt:
    case TypeId::kBigint:
    case TypeId::kDate:
    case TypeId::kTimestamp: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, AsInt());
      return buf;
    }
    case TypeId::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case TypeId::kVarchar:
      return "'" + AsString() + "'";
  }
  return "?";
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (std::holds_alternative<std::string>(repr_)) {
    const std::string& s = AsString();
    return FnvHash(s.data(), s.size());
  }
  if (std::holds_alternative<bool>(repr_)) {
    const uint8_t b = AsBool() ? 1 : 0;
    return FnvHash(&b, 1);
  }
  // Hash ints and int-valued doubles identically so mixed-type equi-joins
  // (INT = BIGINT, INT = DOUBLE with integral values) hash-partition
  // consistently.
  if (std::holds_alternative<double>(repr_)) {
    const double d = AsDouble();
    const auto as_int = static_cast<int64_t>(d);
    if (static_cast<double>(as_int) == d) {
      return FnvHash(&as_int, sizeof(as_int));
    }
    return FnvHash(&d, sizeof(d));
  }
  const int64_t i = AsInt();
  return FnvHash(&i, sizeof(i));
}

}  // namespace hdb
