#ifndef HDB_COMMON_RESULT_H_
#define HDB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hdb {

/// A value-or-error holder, the Result/StatusOr idiom. A Result is either an
/// OK status together with a T, or a non-OK Status and no value.
///
/// [[nodiscard]] like Status: intentional drops go through IgnoreError()
/// with a justification comment.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return 42;` inside a Result<int> function.
  Result(T value) : repr_(std::move(value)) {}
  /// Implicit from error status. Constructing from an OK status is a bug
  /// (a Result must carry a value when OK) and is normalized to kInternal.
  Result(Status status) : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Explicitly discards a Result (see the Status overload in status.h).
template <typename T>
void IgnoreError(const Result<T>&) {}

/// Evaluates a Result-returning expression; on error returns the error to
/// the caller, otherwise assigns the value into `lhs` (a declaration).
#define HDB_ASSIGN_OR_RETURN(lhs, expr)                \
  HDB_ASSIGN_OR_RETURN_IMPL_(                          \
      HDB_RESULT_CONCAT_(_hdb_result, __LINE__), lhs, expr)

#define HDB_RESULT_CONCAT_INNER_(a, b) a##b
#define HDB_RESULT_CONCAT_(a, b) HDB_RESULT_CONCAT_INNER_(a, b)
#define HDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

}  // namespace hdb

#endif  // HDB_COMMON_RESULT_H_
