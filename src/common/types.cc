#include "common/types.h"

namespace hdb {

std::string_view TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInt:
      return "INT";
    case TypeId::kBigint:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

double TypeValueWidth(TypeId t) {
  switch (t) {
    case TypeId::kBoolean:
    case TypeId::kInt:
    case TypeId::kBigint:
    case TypeId::kDate:
      return 1.0;
    case TypeId::kTimestamp:
      return 1.0;  // one microsecond tick
    case TypeId::kDouble:
      return 1e-35;  // the paper's REAL width
    case TypeId::kVarchar:
      return 1.0;  // distance between consecutive short-string hash codes
  }
  return 1.0;
}

bool IsNumericLike(TypeId t) { return t != TypeId::kVarchar; }

}  // namespace hdb
