#include "common/arena.h"

#include <algorithm>

namespace hdb {

void* Arena::Allocate(size_t n, size_t align) {
  if (n == 0) n = 1;
  if (budget_ != 0 && used_ + n > budget_) return nullptr;

  if (!blocks_.empty()) {
    Block& b = blocks_.back();
    const size_t aligned = (b.pos + align - 1) & ~(align - 1);
    if (aligned + n <= b.size) {
      b.pos = aligned + n;
      used_ += n;
      high_water_ = std::max(high_water_, used_);
      return b.data.get() + aligned;
    }
  }

  const size_t block_size = std::max(block_bytes_, n + align);
  Block b;
  b.data = std::make_unique<uint8_t[]>(block_size);
  b.size = block_size;
  const auto base = reinterpret_cast<uintptr_t>(b.data.get());
  const size_t offset = ((base + align - 1) & ~(uintptr_t(align) - 1)) - base;
  b.pos = offset + n;
  blocks_.push_back(std::move(b));
  used_ += n;
  high_water_ = std::max(high_water_, used_);
  return blocks_.back().data.get() + offset;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    blocks_.erase(blocks_.begin() + 1, blocks_.end());
  }
  if (!blocks_.empty()) blocks_.front().pos = 0;
  used_ = 0;
}

}  // namespace hdb
