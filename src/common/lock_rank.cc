#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace hdb {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kCatalogDdl:
      return "CatalogDdl";
    case LockRank::kMetricsRegistry:
      return "MetricsRegistry";
    case LockRank::kNetServer:
      return "NetServer";
    case LockRank::kNetSession:
      return "NetSession";
    case LockRank::kAdmissionGate:
      return "AdmissionGate";
    case LockRank::kEngineObjects:
      return "EngineObjects";
    case LockRank::kCatalog:
      return "Catalog";
    case LockRank::kCheckpointGovernor:
      return "CheckpointGovernor";
    case LockRank::kPoolGovernor:
      return "PoolGovernor";
    case LockRank::kTaskMemory:
      return "TaskMemory";
    case LockRank::kMplController:
      return "MplController";
    case LockRank::kLockManager:
      return "LockManager";
    case LockRank::kTxnManager:
      return "TxnManager";
    case LockRank::kTableHeap:
      return "TableHeap";
    case LockRank::kIndex:
      return "Index";
    case LockRank::kStatsRegistry:
      return "StatsRegistry";
    case LockRank::kHistogram:
      return "Histogram";
    case LockRank::kProcStats:
      return "ProcStats";
    case LockRank::kParallelDispenser:
      return "ParallelDispenser";
    case LockRank::kParallelQueue:
      return "ParallelQueue";
    case LockRank::kParallelMerge:
      return "ParallelMerge";
    case LockRank::kBufferPool:
      return "BufferPool";
    case LockRank::kWalGroupCommit:
      return "WalGroupCommit";
    case LockRank::kWalFlush:
      return "WalFlush";
    case LockRank::kWalBuffer:
      return "WalBuffer";
    case LockRank::kDiskManager:
      return "DiskManager";
    case LockRank::kStableStorage:
      return "StableStorage";
    case LockRank::kMemoryEnv:
      return "MemoryEnv";
    case LockRank::kDecisionLog:
      return "DecisionLog";
    case LockRank::kTracer:
      return "Tracer";
    case LockRank::kTraceHook:
      return "TraceHook";
    case LockRank::kStatementShapes:
      return "StatementShapes";
    case LockRank::kStatementRegistry:
      return "StatementRegistry";
    case LockRank::kStatementTrace:
      return "StatementTrace";
  }
  return "Unknown";
}

#if defined(HDB_LOCK_RANK_ENABLED)

namespace lock_rank_internal {

namespace {

// Deepest legitimate chain today is ~8 (DDL → gate → heap → WAL → disk →
// media plus telemetry); 32 leaves generous headroom for future subsystems.
constexpr int kMaxHeld = 32;

struct HeldLock {
  const void* mutex;
  LockRank rank;
  LockMode mode;
  const char* file;
  uint32_t line;
};

struct HeldStack {
  HeldLock entries[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack tl_held;

[[noreturn]] void Die(const char* what, const HeldLock* held, LockRank rank,
                      const LockSite& site) {
  if (held != nullptr) {
    std::fprintf(stderr,
                 "hdb lock-rank violation: %s\n"
                 "  attempted: rank %u (%s) at %s:%u\n"
                 "  while holding: rank %u (%s) acquired at %s:%u\n",
                 what, static_cast<unsigned>(rank), LockRankName(rank),
                 site.file_name(), static_cast<unsigned>(site.line()),
                 static_cast<unsigned>(held->rank), LockRankName(held->rank),
                 held->file, held->line);
  } else {
    std::fprintf(stderr,
                 "hdb lock-rank violation: %s\n"
                 "  attempted: rank %u (%s) at %s:%u\n",
                 what, static_cast<unsigned>(rank), LockRankName(rank),
                 site.file_name(), static_cast<unsigned>(site.line()));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const void* mutex, LockRank rank, LockMode mode,
               const LockSite& site) {
  HeldStack& stack = tl_held;

  // Highest-ranked held entry (the binding constraint) and whether this
  // exact mutex is already held by this thread.
  const HeldLock* top = nullptr;
  const HeldLock* same_mutex = nullptr;
  bool same_rank_all_shared = true;
  for (int i = 0; i < stack.depth; ++i) {
    const HeldLock& held = stack.entries[i];
    if (top == nullptr || held.rank >= top->rank) top = &held;
    if (held.mutex == mutex) same_mutex = &held;
    if (held.rank == rank && held.mode != LockMode::kShared) {
      same_rank_all_shared = false;
    }
  }

  if (same_mutex != nullptr && mode != LockMode::kRecursive) {
    Die("recursive acquisition of a non-recursive lock", same_mutex, rank,
        site);
  }
  if (top != nullptr) {
    if (top->rank > rank) {
      Die("out-of-order acquisition (lower rank while holding higher)", top,
          rank, site);
    }
    if (top->rank == rank) {
      switch (mode) {
        case LockMode::kExclusive:
          Die("same-rank acquisition in exclusive mode", top, rank, site);
        case LockMode::kShared:
          // Two shared holds at one rank are how a single statement scans
          // two tables; an exclusive hold at the rank makes that a deadlock
          // recipe, so only all-shared stacking passes.
          if (!same_rank_all_shared) {
            Die("shared acquisition at a rank held exclusively", top, rank,
                site);
          }
          break;
        case LockMode::kRecursive:
          break;
      }
    }
  }

  if (stack.depth >= kMaxHeld) {
    Die("held-lock stack overflow (raise kMaxHeld)", top, rank, site);
  }
  stack.entries[stack.depth++] =
      HeldLock{mutex, rank, mode, site.file_name(), site.line()};
}

void OnRelease(const void* mutex) {
  HeldStack& stack = tl_held;
  // Scan from the top: releases are usually LIFO, but guards like the WAL
  // flusher's staged unlocks release out of order legitimately.
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.entries[i].mutex != mutex) continue;
    for (int j = i; j < stack.depth - 1; ++j) {
      stack.entries[j] = stack.entries[j + 1];
    }
    --stack.depth;
    return;
  }
  std::fprintf(stderr,
               "hdb lock-rank violation: release of a lock this thread does "
               "not hold (unlock on the wrong thread, or double unlock)\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace lock_rank_internal

#endif  // HDB_LOCK_RANK_ENABLED

}  // namespace hdb
