#ifndef HDB_COMMON_RNG_H_
#define HDB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace hdb {

/// Deterministic xoshiro256**-based RNG. All adaptive machinery and all
/// workload generators draw from seeded Rng instances so that tests and
/// benches are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Zipf-distributed generator over [0, n): rank r has probability
/// proportional to 1/(r+1)^theta. Uses an inverse-CDF table; O(n) setup,
/// O(log n) draw. Workhorse for the skewed-column workloads in the paper's
/// frequent-value-statistics discussion.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : rng_(seed), cdf_(n) {
    double sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace hdb

#endif  // HDB_COMMON_RNG_H_
