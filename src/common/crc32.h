#ifndef HDB_COMMON_CRC32_H_
#define HDB_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace hdb {

namespace crc_internal {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc_internal

/// CRC-32 (IEEE polynomial) over `len` bytes. Guards WAL records and
/// stable-storage page images against torn and short writes: a record or
/// page whose stored checksum disagrees with its bytes was interrupted
/// mid-write and must not be trusted.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = crc_internal::kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace hdb

#endif  // HDB_COMMON_CRC32_H_
