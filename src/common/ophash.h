#ifndef HDB_COMMON_OPHASH_H_
#define HDB_COMMON_OPHASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace hdb {

/// Maximum number of leading bytes of a string that contribute to the
/// order-preserving hash. Strings that differ only beyond this prefix
/// collide, which the statistics layer tolerates (paper §3.1: short-string
/// hash built from the binary values of characters).
inline constexpr int kShortStringHashBytes = 7;

/// Length threshold above which a VARCHAR column is considered a "long
/// string" and uses the observed-predicate statistics infrastructure
/// instead of ordinary histograms (paper §3.1).
inline constexpr size_t kLongStringThreshold = 64;

/// Order-preserving hash (paper §3.1): maps any short, orderable value into
/// a double such that v1 < v2 implies Hash(v1) <= Hash(v2). Numeric and
/// date/time types simply convert to double; short strings pack their first
/// kShortStringHashBytes bytes into the integer part of a double.
///
/// NULL maps to -infinity so NULLs sort below every real value, matching
/// Value::Compare.
double OrderPreservingHash(const Value& v);

/// The domain step between two consecutive hash codes for values of type
/// `t` (paper §3.1 "value width").
double OrderPreservingHashWidth(TypeId t);

/// Non-order-preserving 64-bit hash used for long-string predicate buckets
/// (paper §3.1: bucket boundaries for long strings store a hash, never the
/// string itself).
uint64_t LongStringHash(std::string_view s);

/// Splits `s` into "words": maximal runs of non-whitespace characters
/// (paper §3.1 — word buckets make LIKE '%word%' estimable). Words are
/// lower-cased so the LIKE estimator is case-insensitive like the engine's
/// default collation.
std::vector<std::string> ExtractWords(std::string_view s);

}  // namespace hdb

#endif  // HDB_COMMON_OPHASH_H_
