#ifndef HDB_COMMON_ARENA_H_
#define HDB_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace hdb {

/// Bump allocator with a byte budget and a high-water mark.
///
/// The optimizer keeps its entire search state in one Arena so that (a) the
/// memory cost of join enumeration is observable — the paper claims a
/// 100-way join optimizes within ~1 MB — and (b) abandoning a search frees
/// everything at once. Objects allocated here must be trivially
/// destructible or have their destructors managed by the caller.
class Arena {
 public:
  /// `budget_bytes` of 0 means unlimited.
  explicit Arena(size_t budget_bytes = 0, size_t block_bytes = 64 * 1024)
      : budget_(budget_bytes), block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` bytes aligned to `align`; returns nullptr when the
  /// budget would be exceeded.
  void* Allocate(size_t n, size_t align = alignof(std::max_align_t));

  /// Allocates and constructs a T; returns nullptr on budget exhaustion.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    if (p == nullptr) return nullptr;
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of T.
  template <typename T>
  T* NewArray(size_t count) {
    return static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
  }

  /// Total bytes handed out (live bump pointer sum).
  size_t bytes_used() const { return used_; }
  /// Peak bytes_used over the arena's lifetime (survives Reset).
  size_t high_water_mark() const { return high_water_; }
  size_t budget() const { return budget_; }

  /// Releases all allocations but keeps the first block for reuse.
  void Reset();

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t pos = 0;
  };

  size_t budget_;
  size_t block_bytes_;
  size_t used_ = 0;
  size_t high_water_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace hdb

#endif  // HDB_COMMON_ARENA_H_
