#ifndef HDB_COMMON_LOCK_RANK_H_
#define HDB_COMMON_LOCK_RANK_H_

// Ranked-mutex layer: every latch in the engine is declared with an explicit
// LockRank, and (in HDB_LOCK_RANK_ENABLED builds) a per-thread held-rank
// stack aborts the process the moment any thread acquires locks out of
// hierarchy order — naming both the held site and the offending site. With
// the check disabled the wrappers compile down to bare std::mutex /
// std::shared_mutex / std::recursive_mutex with zero overhead.
//
// The rank values encode the engine's global acquisition order (outermost =
// lowest). The full table, with what each latch protects and why it sits
// where it does, lives in DESIGN.md §8; keep the two in sync.

#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

#if defined(HDB_LOCK_RANK_ENABLED)
#include <source_location>
#endif

namespace hdb {

// Lower rank = acquired earlier (outermost). A thread may only acquire a
// lock whose rank is strictly greater than every rank it already holds,
// with two documented exceptions (see OnAcquire): shared locks may stack at
// the same rank (two table scans in one query), and recursive-mutex ranks
// may re-enter their own rank (histogram self/dual locking).
enum class LockRank : uint16_t {
  kCatalogDdl = 10,         // engine/database.h ddl_mu_ (DDL vs statements)
  kMetricsRegistry = 15,    // obs/metrics.h (Snapshot calls subsystem stats())
  kNetServer = 16,          // net/server.h mu_ (conn map, work queue, flush
                            // set; above kMetricsRegistry: net gauge
                            // callbacks run under the registry's Snapshot)
  kNetSession = 17,         // net/server.cc per-connection Conn::mu (read/
                            // write buffers, pending frames, backpressure
                            // cv). Never held across engine Execute — the
                            // worker drains frames, releases, then runs SQL
  kAdmissionGate = 20,      // exec/admission_gate.h (MPL queue + cv)
  kEngineObjects = 25,      // engine/database.h objects_mu_ (heap/index maps)
  kCatalog = 30,            // catalog/catalog.h (schema maps)
  kCheckpointGovernor = 40, // wal/checkpoint_governor.h (fuzzy ckpt runner)
  kPoolGovernor = 45,       // storage/pool_governor.h (resize decisions)
  kTaskMemory = 50,         // exec/memory_governor.h (per-task consumers)
  kMplController = 55,      // exec/mpl_controller.h (MPL poll state)
  kLockManager = 60,        // txn/lock_manager.h (row-lock ext. hash table)
  kTxnManager = 65,         // txn/transaction.h (txn table + redo append)
  kParallelDispenser = 68,  // exec/morsel.h (morsel dispenser; advances the
                            // heap iterator — which latches the heap per
                            // morsel — inside its critical section)
  kTableHeap = 70,          // table/table_heap.h latch_ (heap pages/chain)
  kIndex = 75,              // index/btree.h latch_ (tree structure)
  kStatsRegistry = 80,      // stats/stats_registry.h (column stats map)
  kHistogram = 85,          // stats/histogram.h (recursive; dual-lock joins)
  kProcStats = 88,          // stats/proc_stats.h (procedure cost EMAs)
  kParallelQueue = 93,      // exec/exchange.cc (worker→coordinator packet
                            // queue; pushed/popped holding no other lock)
  kParallelMerge = 95,      // exec/exchange.cc (worker barrier + stats merge)
  kBufferPool = 100,        // storage/buffer_pool.h (frames + page table)
  kWalGroupCommit = 110,    // wal/wal_manager.h gc_mu_ (commit batching)
  kWalFlush = 115,          // wal/wal_manager.h flush_mu_ (flush sections)
  kWalBuffer = 120,         // wal/wal_manager.h mu_ (log tail + append)
  kDiskManager = 130,       // storage/disk_manager.h (page I/O + bitmap)
  kStableStorage = 140,     // os/stable_storage.h (fault-injecting medium)
  kMemoryEnv = 145,         // os/memory_env.h (working-set accounting)
  kDecisionLog = 150,       // obs/decision_log.h (governor decision ring)
  kTracer = 155,            // profile/tracer.h (trace event buffer)
  kTraceHook = 160,         // engine/database.h trace_mu_ (hook pointer)
  kStatementShapes = 165,   // engine/database.h shapes_mu_ (statement stats)
  kStatementRegistry = 168, // obs/trace.h (active/slow statement maps)
  kStatementTrace = 170,    // obs/trace.h per-statement span tree; highest
                            // rank so any subsystem can record a wait while
                            // holding its own latch
};

// Human-readable name for abort reports and DESIGN.md cross-reference.
const char* LockRankName(LockRank rank);

#if defined(HDB_LOCK_RANK_ENABLED)
using LockSite = std::source_location;
#define HDB_LOCK_SITE ::std::source_location::current()
#else
// Zero-size stand-in so lock()/guard signatures are identical in both
// builds; the compiler erases it entirely.
struct LockSite {};
#define HDB_LOCK_SITE ::hdb::LockSite {}
#endif

namespace lock_rank_internal {

// How an acquisition participates in the rank check.
enum class LockMode : uint8_t {
  kExclusive,  // rank must be strictly greater than every held rank
  kShared,     // same-rank stacking allowed iff all holders at it are shared
  kRecursive,  // same-rank re-entry allowed (even on the same mutex)
};

#if defined(HDB_LOCK_RANK_ENABLED)
// Validates the acquisition against this thread's held stack and pushes it;
// on violation prints both sites and aborts. `mutex` is identity only.
void OnAcquire(const void* mutex, LockRank rank, LockMode mode,
               const LockSite& site);
// Pops the topmost held entry for `mutex`; aborts if this thread does not
// hold it (release on the wrong thread, double unlock).
void OnRelease(const void* mutex);
#else
inline void OnAcquire(const void*, LockRank, LockMode, const LockSite&) {}
inline void OnRelease(const void*) {}
#endif

}  // namespace lock_rank_internal

// --- Mutex wrappers -------------------------------------------------------
//
// The lock()/try_lock()/unlock() methods take a defaulted LockSite so the
// *caller's* file:line is what a violation report names. Always acquire
// through the guard types below (or a defaulted call site); never pass an
// explicit site except when forwarding one (UniqueLock re-lock).
//
// Each wrapper is a Clang Thread Safety Analysis CAPABILITY and each guard
// a SCOPED_CAPABILITY (common/thread_annotations.h), so `GUARDED_BY(mu_)`
// fields and `REQUIRES(mu_)` helpers are checked at compile time on every
// path — the static complement of the runtime rank stack above.

template <LockRank R>
class CAPABILITY("mutex") RankedMutex {
 public:
  RankedMutex() = default;
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock(LockSite site = HDB_LOCK_SITE) ACQUIRE() {
    lock_rank_internal::OnAcquire(this, R,
                                  lock_rank_internal::LockMode::kExclusive,
                                  site);
    mu_.lock();
  }
  bool try_lock(LockSite site = HDB_LOCK_SITE) TRY_ACQUIRE(true) {
    // Check first: a try_lock that *would* deadlock if it ever contended is
    // still a hierarchy bug, and checking unconditionally keeps detection
    // deterministic rather than interleaving-dependent.
    lock_rank_internal::OnAcquire(this, R,
                                  lock_rank_internal::LockMode::kExclusive,
                                  site);
    if (mu_.try_lock()) return true;
    lock_rank_internal::OnRelease(this);
    return false;
  }
  void unlock() RELEASE() {
    lock_rank_internal::OnRelease(this);
    mu_.unlock();
  }

  static constexpr LockRank rank() { return R; }

 private:
  std::mutex mu_;
};

template <LockRank R>
class CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  RankedSharedMutex() = default;
  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock(LockSite site = HDB_LOCK_SITE) ACQUIRE() {
    lock_rank_internal::OnAcquire(this, R,
                                  lock_rank_internal::LockMode::kExclusive,
                                  site);
    mu_.lock();
  }
  void unlock() RELEASE() {
    lock_rank_internal::OnRelease(this);
    mu_.unlock();
  }
  void lock_shared(LockSite site = HDB_LOCK_SITE) ACQUIRE_SHARED() {
    lock_rank_internal::OnAcquire(
        this, R, lock_rank_internal::LockMode::kShared, site);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    lock_rank_internal::OnRelease(this);
    mu_.unlock_shared();
  }

  static constexpr LockRank rank() { return R; }

 private:
  std::shared_mutex mu_;
};

// NOTE: Clang's analysis has no notion of re-entrant acquisition, so
// same-thread re-entry on one RankedRecursiveMutex — legal at runtime —
// would be flagged as a double acquire. The engine's only recursive rank
// (kHistogram) therefore keeps its re-entry confined behind
// Histogram::Lock()/dual-lock helpers whose bodies opt out of the
// analysis; callers still see ordinary ACQUIRE/RELEASE contracts.
template <LockRank R>
class CAPABILITY("recursive_mutex") RankedRecursiveMutex {
 public:
  RankedRecursiveMutex() = default;
  RankedRecursiveMutex(const RankedRecursiveMutex&) = delete;
  RankedRecursiveMutex& operator=(const RankedRecursiveMutex&) = delete;

  void lock(LockSite site = HDB_LOCK_SITE) ACQUIRE() {
    lock_rank_internal::OnAcquire(this, R,
                                  lock_rank_internal::LockMode::kRecursive,
                                  site);
    mu_.lock();
  }
  void unlock() RELEASE() {
    lock_rank_internal::OnRelease(this);
    mu_.unlock();
  }

  static constexpr LockRank rank() { return R; }

 private:
  std::recursive_mutex mu_;
};

// --- Guard types ----------------------------------------------------------
//
// std::lock_guard-family over a ranked mutex would capture the defaulted
// source_location inside the STL header, so the engine uses these instead.
// They are deliberately minimal: exactly the operations the engine needs.
//
// Each guard is a SCOPED_CAPABILITY so Clang's analysis tracks the lock it
// manages through its whole lifetime, including manual unlock()/lock()
// windows. The member bodies that re-lock through the stored pointer are
// NO_THREAD_SAFETY_ANALYSIS: the guard itself is the trusted base of the
// analysis (the attribute, not the body, is the contract — the same
// arrangement absl::Mutex ships with), and the runtime rank checker still
// validates every one of these paths.

// Scoped exclusive lock (std::lock_guard equivalent).
template <typename MutexT>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(MutexT& mu, LockSite site = HDB_LOCK_SITE) ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
  }
  ~LockGuard() RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  MutexT& mu_;
};

// Scoped shared lock (std::shared_lock-as-guard equivalent).
template <typename MutexT>
class SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(MutexT& mu, LockSite site = HDB_LOCK_SITE)
      ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared(site);
  }
  ~SharedLockGuard() RELEASE_GENERIC() { mu_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  MutexT& mu_;
};

// Movable exclusive lock (std::unique_lock equivalent): supports defer/try
// construction, manual unlock()/lock() (condition-variable waits, the buffer
// pool's drop-the-latch-around-the-fsync-barrier dance), and move. Re-locks
// report the guard's original construction site.
template <typename MutexT>
class SCOPED_CAPABILITY UniqueLock {
 public:
  UniqueLock() = default;
  explicit UniqueLock(MutexT& mu, LockSite site = HDB_LOCK_SITE) ACQUIRE(mu)
      : mu_(&mu), site_(site) {
    mu_->lock(site_);
    owns_ = true;
  }
  UniqueLock(MutexT& mu, std::defer_lock_t, LockSite site = HDB_LOCK_SITE)
      EXCLUDES(mu)
      : mu_(&mu), site_(site) {}
  // Adopts a mutex the caller already locked (via a successful try_lock):
  // the analysis transfers the held capability into this guard.
  UniqueLock(MutexT& mu, std::adopt_lock_t, LockSite site = HDB_LOCK_SITE)
      REQUIRES(mu)
      : mu_(&mu), site_(site) {
    owns_ = true;
  }
  ~UniqueLock() RELEASE_GENERIC() {
    if (owns_) mu_->unlock();
  }
  // Moves transfer ownership the analysis cannot follow (scoped facts are
  // per-object); the runtime rank checker still sees the eventual unlock.
  UniqueLock(UniqueLock&& other) noexcept
      : mu_(other.mu_), site_(other.site_), owns_(other.owns_) {
    other.mu_ = nullptr;
    other.owns_ = false;
  }
  UniqueLock& operator=(UniqueLock&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      if (owns_) mu_->unlock();
      mu_ = other.mu_;
      site_ = other.site_;
      owns_ = other.owns_;
      other.mu_ = nullptr;
      other.owns_ = false;
    }
    return *this;
  }

  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {
    mu_->lock(site_);
    owns_ = true;
  }
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    mu_->unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }

 private:
  MutexT* mu_ = nullptr;
  LockSite site_{};
  bool owns_ = false;
};

// Movable shared lock (std::shared_lock equivalent).
template <typename MutexT>
class SCOPED_CAPABILITY SharedLock {
 public:
  SharedLock() = default;
  explicit SharedLock(MutexT& mu, LockSite site = HDB_LOCK_SITE)
      ACQUIRE_SHARED(mu)
      : mu_(&mu), site_(site) {
    mu_->lock_shared(site_);
    owns_ = true;
  }
  ~SharedLock() RELEASE_GENERIC() {
    if (owns_) mu_->unlock_shared();
  }
  SharedLock(SharedLock&& other) noexcept
      : mu_(other.mu_), site_(other.site_), owns_(other.owns_) {
    other.mu_ = nullptr;
    other.owns_ = false;
  }
  SharedLock& operator=(SharedLock&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      if (owns_) mu_->unlock_shared();
      mu_ = other.mu_;
      site_ = other.site_;
      owns_ = other.owns_;
      other.mu_ = nullptr;
      other.owns_ = false;
    }
    return *this;
  }

  void lock() ACQUIRE_SHARED() NO_THREAD_SAFETY_ANALYSIS {
    mu_->lock_shared(site_);
    owns_ = true;
  }
  void unlock() RELEASE_SHARED() NO_THREAD_SAFETY_ANALYSIS {
    mu_->unlock_shared();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }

 private:
  MutexT* mu_ = nullptr;
  LockSite site_{};
  bool owns_ = false;
};

}  // namespace hdb

#endif  // HDB_COMMON_LOCK_RANK_H_
