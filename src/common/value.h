#ifndef HDB_COMMON_VALUE_H_
#define HDB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/types.h"

namespace hdb {

/// A dynamically-typed SQL value. SQL NULL is represented explicitly and
/// compares with three-valued-logic helpers on Expression, not here; Value
/// ordering below treats NULL as smaller than everything (storage order).
class Value {
 public:
  /// Constructs SQL NULL (untyped).
  Value() : type_(TypeId::kInt), repr_(std::monostate{}) {}

  static Value Null(TypeId type = TypeId::kInt) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Boolean(bool b) { return Value(TypeId::kBoolean, b); }
  static Value Int(int32_t i) {
    return Value(TypeId::kInt, static_cast<int64_t>(i));
  }
  static Value Bigint(int64_t i) { return Value(TypeId::kBigint, i); }
  static Value Double(double d) { return Value(TypeId::kDouble, d); }
  static Value String(std::string s) {
    return Value(TypeId::kVarchar, std::move(s));
  }
  static Value Date(int64_t days) { return Value(TypeId::kDate, days); }
  static Value Timestamp(int64_t micros) {
    return Value(TypeId::kTimestamp, micros);
  }

  TypeId type() const { return type_; }
  bool is_null() const {
    return std::holds_alternative<std::monostate>(repr_);
  }

  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const {
    if (std::holds_alternative<int64_t>(repr_)) {
      return static_cast<double>(std::get<int64_t>(repr_));
    }
    return std::get<double>(repr_);
  }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Total order used by storage and sorting: NULL < everything, numeric
  /// types compare numerically (INT vs DOUBLE allowed), strings
  /// lexicographically. Comparing string vs numeric is a caller bug and
  /// yields ordering by type id.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Mutating setters for decode-into-buffer reuse (row_codec
  /// DecodeRowInto): overwrite this Value in place, keeping any
  /// heap-allocated string capacity when the value was already a string.
  void SetNull(TypeId type) {
    type_ = type;
    repr_.emplace<std::monostate>();
  }
  void SetBoolean(bool b) {
    type_ = TypeId::kBoolean;
    repr_ = b;
  }
  void SetInt64(TypeId type, int64_t i) {
    type_ = type;
    repr_ = i;
  }
  void SetDouble(double d) {
    type_ = TypeId::kDouble;
    repr_ = d;
  }
  void SetString(std::string_view s) {
    type_ = TypeId::kVarchar;
    if (auto* cur = std::get_if<std::string>(&repr_)) {
      cur->assign(s.data(), s.size());
    } else {
      repr_.emplace<std::string>(s);
    }
  }

  /// SQL-literal-ish rendering for diagnostics and result printing.
  std::string ToString() const;

  /// Stable 64-bit hash (not order-preserving); NULLs of any type hash
  /// equal. Used by hash join/group by and the long-string statistics.
  uint64_t Hash() const;

 private:
  Value(TypeId t, bool b) : type_(t), repr_(b) {}
  Value(TypeId t, int64_t i) : type_(t), repr_(i) {}
  Value(TypeId t, double d) : type_(t), repr_(d) {}
  Value(TypeId t, std::string s) : type_(t), repr_(std::move(s)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

}  // namespace hdb

#endif  // HDB_COMMON_VALUE_H_
