#ifndef HDB_COMMON_THREAD_ANNOTATIONS_H_
#define HDB_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (ISSUE 9).
//
// These turn the latch discipline of DESIGN.md §8 into a compile-time
// proof: every field annotated GUARDED_BY is verified latched on *all*
// paths, every helper annotated REQUIRES is verified called with the
// latch held, on every compile — not just on the paths a test happens to
// execute (which is all the runtime rank checker in lock_rank.h can see).
//
// The macro names follow the official Clang capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
// annotations read the same here as in absl/libc++. On any compiler
// without the attributes (GCC, MSVC) every macro expands to nothing, so
// the annotated tree builds identically off-Clang; the analysis itself
// runs as the `thread-safety` stage of scripts/sanitize_matrix.sh
// (clang++ -Wthread-safety -Werror) and is regression-tested by the
// negative-compile harness in tests/negative_compile/.
//
// Annotation contract (full version in DESIGN.md §8.4):
//   * every field protected by a ranked mutex in the same object is
//     GUARDED_BY that mutex (PT_GUARDED_BY when the mutex protects the
//     pointee rather than the pointer);
//   * every *Locked() helper is REQUIRES(the latch) instead of carrying
//     the contract in a comment;
//   * drop/relock windows (condition-variable waits, the buffer pool's
//     eviction-vs-fsync dance) are expressed through the UniqueLock
//     guard's ACQUIRE/RELEASE-annotated lock()/unlock(), so the analysis
//     tracks the window exactly;
//   * ASSERT_CAPABILITY is reserved for capabilities established by a
//     protocol the analysis cannot see (e.g. a frame pinned under the
//     pool latch, single-threaded startup); each use carries a
//     justification comment.

#if defined(__clang__) && !defined(SWIG)
#define HDB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define HDB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off Clang
#endif

// --- Capability declarations ----------------------------------------------

// Marks a class as a capability (a mutex). The string names the capability
// kind in diagnostics ("mutex 'mu_' is not held...").
#define CAPABILITY(x) HDB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// Marks a RAII class whose lifetime acquires/releases a capability
// (LockGuard, UniqueLock, ...).
#define SCOPED_CAPABILITY HDB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// --- Data annotations ------------------------------------------------------

// Field may only be read/written while holding the given capability.
#define GUARDED_BY(x) HDB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// Pointer field whose *pointee* is protected by the capability (the
// pointer itself may be read freely).
#define PT_GUARDED_BY(x) HDB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// --- Lock ordering hints (documentation; checked where expressible) --------

#define ACQUIRED_BEFORE(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// --- Function annotations --------------------------------------------------

// Caller must hold the capability (exclusively / at least shared).
#define REQUIRES(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and holds it on return (no argument:
// `this`, for the capability/scoped types themselves).
#define ACQUIRE(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability (which the caller must hold).
#define RELEASE(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (scoped-guard destructors,
// which cannot know whether they hold shared or exclusive).
#define RELEASE_GENERIC(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

// Function tries to acquire; first argument is the return value meaning
// success.
#define TRY_ACQUIRE(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function acquires it itself;
// calling with it held would self-deadlock on a non-recursive mutex).
#define EXCLUDES(...) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Asserts at runtime (by protocol, not by code the analysis can see) that
// the capability is held, and tells the analysis to believe it. Reserved
// for documented analysis boundaries — see the contract above.
#define ASSERT_CAPABILITY(x) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

// Function returns a reference to the given capability (accessor helpers).
#define RETURN_CAPABILITY(x) \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Opts a function out of the analysis entirely. Last resort; every use
// carries a justification comment (same rule as IgnoreError).
#define NO_THREAD_SAFETY_ANALYSIS \
  HDB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // HDB_COMMON_THREAD_ANNOTATIONS_H_
