#ifndef HDB_COMMON_STATUS_H_
#define HDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace hdb {

/// Canonical error codes for all HolisticDB operations. The library does not
/// throw exceptions across public API boundaries; every fallible operation
/// returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  /// A memory-governor hard limit was exceeded and the statement was
  /// terminated (paper §4.3, Eq. (4)).
  kResourceExhausted,
  kNotSupported,
  kIOError,
  kSyntaxError,
  kConstraintViolation,
  /// Lock conflict or deadlock victim.
  kAborted,
  /// The server is past its multiprogramming level and the admission
  /// queue wait timed out (paper §2.1 / Eq. (5)). Distinct from
  /// kResourceExhausted (a per-statement memory kill): overload is a
  /// property of the server's load, not of the statement, and clients
  /// should back off and retry. The network front end maps this onto a
  /// dedicated overload frame (DESIGN.md §12).
  kOverloaded,
  kInternal,
};

/// Returns a human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); error messages are heap-allocated strings.
///
/// [[nodiscard]]: dropping a Status on the floor is a bug unless stated
/// otherwise — intentional drops must go through IgnoreError() with a
/// justification comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Explicitly discards a Status. The only sanctioned way to ignore an
/// error: the call site must carry a one-line comment saying why dropping
/// it is correct (best-effort cleanup, error already folded elsewhere, ...).
inline void IgnoreError(const Status&) {}

/// Propagates a non-OK Status to the caller.
#define HDB_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::hdb::Status _hdb_status = (expr);            \
    if (!_hdb_status.ok()) return _hdb_status;     \
  } while (0)

}  // namespace hdb

#endif  // HDB_COMMON_STATUS_H_
