#include "common/ophash.h"

#include <cctype>
#include <cmath>
#include <limits>

namespace hdb {

double OrderPreservingHash(const Value& v) {
  if (v.is_null()) return -std::numeric_limits<double>::infinity();
  switch (v.type()) {
    case TypeId::kBoolean:
      return v.AsBool() ? 1.0 : 0.0;
    case TypeId::kInt:
    case TypeId::kBigint:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return static_cast<double>(v.AsInt());
    case TypeId::kDouble:
      return v.AsDouble();
    case TypeId::kVarchar: {
      // Pack the first kShortStringHashBytes bytes, big-endian, into an
      // integer. 7 bytes = 56 bits fits exactly in a double's mantissa
      // (53 bits would be lossless for 6; at 7 bytes the low bits of the
      // last byte may round, which preserves order to within one code
      // point — acceptable for statistics).
      const std::string& s = v.AsString();
      double acc = 0.0;
      for (int i = 0; i < kShortStringHashBytes; ++i) {
        const double byte =
            i < static_cast<int>(s.size())
                ? static_cast<double>(static_cast<unsigned char>(s[i]))
                : 0.0;
        acc = acc * 256.0 + byte;
      }
      return acc;
    }
  }
  return 0.0;
}

double OrderPreservingHashWidth(TypeId t) {
  if (t == TypeId::kVarchar) {
    // Consecutive short-string codes differ in the last packed byte.
    return 1.0;
  }
  return TypeValueWidth(t);
}

uint64_t LongStringHash(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(c)));
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::string> ExtractWords(std::string_view s) {
  std::vector<std::string> words;
  std::string cur;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        words.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) words.push_back(cur);
  return words;
}

}  // namespace hdb
