#ifndef HDB_COMMON_TYPES_H_
#define HDB_COMMON_TYPES_H_

#include <cstdint>
#include <string_view>

namespace hdb {

/// SQL data types supported by HolisticDB. All of the short, orderable types
/// share one histogram infrastructure via the order-preserving hash (paper
/// §3.1); long strings use the observed-predicate infrastructure.
enum class TypeId : uint8_t {
  kBoolean = 0,
  kInt,        // 32-bit signed
  kBigint,     // 64-bit signed
  kDouble,     // IEEE double
  kVarchar,    // variable-length string
  kDate,       // days since 1970-01-01, stored as int64
  kTimestamp,  // microseconds since epoch, stored as int64
};

/// Returns the SQL-ish name of `t` ("INT", "VARCHAR", ...).
std::string_view TypeName(TypeId t);

/// The paper (§3.1) assigns each data type a "value width": the difference
/// between two consecutive values in the domain, used to maintain
/// discreteness when interpolating in histogram buckets. E.g. INT has width
/// 1 and REAL/DOUBLE a tiny epsilon (the paper quotes 1e-35 for REAL).
double TypeValueWidth(TypeId t);

/// True for types whose histogram keys come from the order-preserving hash
/// (everything except long strings; VARCHAR values up to
/// kShortStringHashBytes participate too, see ophash.h).
bool IsNumericLike(TypeId t);

/// Row identifier: page + slot within the owning table's segment.
struct Rid {
  uint32_t page_id = 0;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
  auto operator<=>(const Rid&) const = default;
};

/// Invalid/unset object identifiers.
inline constexpr uint32_t kInvalidOid = 0xffffffffu;

}  // namespace hdb

#endif  // HDB_COMMON_TYPES_H_
