#ifndef HDB_CATALOG_CATALOG_H_
#define HDB_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "catalog/schema.h"
#include "os/dtt_model.h"

#include "common/lock_rank.h"

namespace hdb::catalog {

/// System catalog: tables, indexes, referential-integrity constraints,
/// procedures, database options, and the DTT cost model blob (paper §4.2:
/// "the DTT model is stored in the catalog and can be altered or loaded
/// with the execution of a DDL statement").
class Catalog {
 public:
  Catalog();

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- Tables ---
  Result<TableDef*> CreateTable(const std::string& name,
                                std::vector<ColumnDef> columns);
  /// Registers a `sys.*` virtual table (engine-internal; user DDL on the
  /// reserved `sys.` prefix is rejected by CreateTable/DropTable).
  Result<TableDef*> CreateVirtualTable(const std::string& name,
                                       std::vector<ColumnDef> columns);
  /// Crash-recovery replay (wal/recovery.cc): re-creates a table under the
  /// oid recorded in its WAL DDL record, so heap records that reference
  /// the oid resolve identically after replay. Bumps the oid counter past
  /// `oid`.
  Result<TableDef*> ReplayCreateTable(uint32_t oid, const std::string& name,
                                      std::vector<ColumnDef> columns);
  Result<TableDef*> GetTable(const std::string& name);
  Result<TableDef*> GetTableByOid(uint32_t oid);
  Status DropTable(const std::string& name);
  std::vector<TableDef*> AllTables();

  // --- Indexes ---
  Result<IndexDef*> CreateIndex(const std::string& index_name,
                                const std::string& table_name,
                                std::vector<int> column_indexes, bool unique);
  /// Crash-recovery replay counterpart of CreateIndex (see
  /// ReplayCreateTable). The table is addressed by oid: replay happens
  /// before any name lookup traffic.
  Result<IndexDef*> ReplayCreateIndex(uint32_t oid,
                                      const std::string& index_name,
                                      uint32_t table_oid,
                                      std::vector<int> column_indexes,
                                      bool unique);
  Result<IndexDef*> GetIndex(const std::string& name);
  Result<IndexDef*> GetIndexByOid(uint32_t oid);
  Status DropIndex(const std::string& name);
  /// Indexes whose table is `table_oid` (first-key-column order).
  std::vector<IndexDef*> TableIndexes(uint32_t table_oid);

  // --- Referential integrity ---
  Status AddForeignKey(ForeignKey fk);
  std::vector<ForeignKey> foreign_keys() const {
    LockGuard lock(mu_);
    return fks_;
  }
  /// True if `table.col` is declared to reference `ref_table.ref_col`.
  bool HasForeignKey(uint32_t table_oid, int col, uint32_t ref_table_oid,
                     int ref_col) const;

  // --- Procedures ---
  Status CreateProcedure(ProcedureDef def);
  Result<const ProcedureDef*> GetProcedure(const std::string& name) const;

  // --- Options ---
  void SetOption(const std::string& name, const std::string& value);
  std::string GetOption(const std::string& name,
                        const std::string& default_value = "") const;
  std::map<std::string, std::string> options() const {
    LockGuard lock(mu_);
    return options_;
  }

  // --- DTT model ---
  void SetDttModel(const os::DttModel& model);
  const os::DttModel& dtt_model() const { return dtt_model_; }

 private:
  mutable RankedMutex<LockRank::kCatalog> mu_;
  uint32_t next_oid_ GUARDED_BY(mu_) = 1;
  std::map<std::string, std::unique_ptr<TableDef>> tables_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<IndexDef>> indexes_ GUARDED_BY(mu_);
  std::vector<ForeignKey> fks_ GUARDED_BY(mu_);
  std::map<std::string, ProcedureDef> procedures_ GUARDED_BY(mu_);
  std::map<std::string, std::string> options_ GUARDED_BY(mu_);
  // Not mu_-guarded: the optimizer holds a pointer into it for the length
  // of an optimization, stabilized by the engine's DDL latch (ALTER of the
  // model is DDL). SetDttModel's mu_ only orders concurrent setters.
  os::DttModel dtt_model_ = os::DttModel::Default();
};

}  // namespace hdb::catalog

#endif  // HDB_CATALOG_CATALOG_H_
