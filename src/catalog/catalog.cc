#include "catalog/catalog.h"

namespace hdb::catalog {

namespace {

bool HasSysPrefix(const std::string& name) {
  return name.rfind("sys.", 0) == 0;
}

}  // namespace

Catalog::Catalog() {
  // Defaults that the Application Profiling analyzer knows how to audit.
  options_["optimization_goal"] = "all-rows";
  options_["max_query_tasks"] = "0";  // 0 = server decides
  options_["collect_statistics_on_dml"] = "on";
}

Result<TableDef*> Catalog::CreateTable(const std::string& name,
                                       std::vector<ColumnDef> columns) {
  if (HasSysPrefix(name)) {
    return Status::InvalidArgument(
        "the sys. schema is reserved for virtual system tables");
  }
  LockGuard lock(mu_);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  auto def = std::make_unique<TableDef>();
  def->oid = next_oid_++;
  def->name = name;
  def->columns = std::move(columns);
  TableDef* raw = def.get();
  tables_[name] = std::move(def);
  return raw;
}

Result<TableDef*> Catalog::CreateVirtualTable(const std::string& name,
                                              std::vector<ColumnDef> columns) {
  LockGuard lock(mu_);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  auto def = std::make_unique<TableDef>();
  def->oid = next_oid_++;
  def->name = name;
  def->columns = std::move(columns);
  def->is_virtual = true;
  TableDef* raw = def.get();
  tables_[name] = std::move(def);
  return raw;
}

Result<TableDef*> Catalog::ReplayCreateTable(uint32_t oid,
                                             const std::string& name,
                                             std::vector<ColumnDef> columns) {
  LockGuard lock(mu_);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name);
  }
  auto def = std::make_unique<TableDef>();
  def->oid = oid;
  def->name = name;
  def->columns = std::move(columns);
  TableDef* raw = def.get();
  tables_[name] = std::move(def);
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return raw;
}

Result<TableDef*> Catalog::GetTable(const std::string& name) {
  LockGuard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

Result<TableDef*> Catalog::GetTableByOid(uint32_t oid) {
  LockGuard lock(mu_);
  for (auto& [name, def] : tables_) {
    if (def->oid == oid) return def.get();
  }
  return Status::NotFound("table oid");
}

Status Catalog::DropTable(const std::string& name) {
  LockGuard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  if (it->second->is_virtual) {
    return Status::InvalidArgument("cannot drop virtual table " + name);
  }
  const uint32_t oid = it->second->oid;
  tables_.erase(it);
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (iit->second->table_oid == oid) {
      iit = indexes_.erase(iit);
    } else {
      ++iit;
    }
  }
  std::erase_if(fks_, [oid](const ForeignKey& fk) {
    return fk.table_oid == oid || fk.ref_table_oid == oid;
  });
  return Status::OK();
}

std::vector<TableDef*> Catalog::AllTables() {
  LockGuard lock(mu_);
  std::vector<TableDef*> out;
  for (auto& [name, def] : tables_) {
    if (!def->is_virtual) out.push_back(def.get());
  }
  return out;
}

Result<IndexDef*> Catalog::CreateIndex(const std::string& index_name,
                                       const std::string& table_name,
                                       std::vector<int> column_indexes,
                                       bool unique) {
  LockGuard lock(mu_);
  if (indexes_.count(index_name) != 0) {
    return Status::AlreadyExists("index " + index_name);
  }
  auto tit = tables_.find(table_name);
  if (tit == tables_.end()) return Status::NotFound("table " + table_name);
  if (tit->second->is_virtual) {
    return Status::InvalidArgument("cannot index virtual table " + table_name);
  }
  if (column_indexes.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (const int c : column_indexes) {
    if (c < 0 || c >= static_cast<int>(tit->second->columns.size())) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  auto def = std::make_unique<IndexDef>();
  def->oid = next_oid_++;
  def->name = index_name;
  def->table_oid = tit->second->oid;
  def->column_indexes = std::move(column_indexes);
  def->unique = unique;
  IndexDef* raw = def.get();
  indexes_[index_name] = std::move(def);
  return raw;
}

Result<IndexDef*> Catalog::ReplayCreateIndex(uint32_t oid,
                                             const std::string& index_name,
                                             uint32_t table_oid,
                                             std::vector<int> column_indexes,
                                             bool unique) {
  LockGuard lock(mu_);
  if (indexes_.count(index_name) != 0) {
    return Status::AlreadyExists("index " + index_name);
  }
  auto def = std::make_unique<IndexDef>();
  def->oid = oid;
  def->name = index_name;
  def->table_oid = table_oid;
  def->column_indexes = std::move(column_indexes);
  def->unique = unique;
  IndexDef* raw = def.get();
  indexes_[index_name] = std::move(def);
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return raw;
}

Result<IndexDef*> Catalog::GetIndex(const std::string& name) {
  LockGuard lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end()) return Status::NotFound("index " + name);
  return it->second.get();
}

Result<IndexDef*> Catalog::GetIndexByOid(uint32_t oid) {
  LockGuard lock(mu_);
  for (auto& [name, def] : indexes_) {
    if (def->oid == oid) return def.get();
  }
  return Status::NotFound("index oid");
}

Status Catalog::DropIndex(const std::string& name) {
  LockGuard lock(mu_);
  if (indexes_.erase(name) == 0) return Status::NotFound("index " + name);
  return Status::OK();
}

std::vector<IndexDef*> Catalog::TableIndexes(uint32_t table_oid) {
  LockGuard lock(mu_);
  std::vector<IndexDef*> out;
  for (auto& [name, def] : indexes_) {
    if (def->table_oid == table_oid) out.push_back(def.get());
  }
  return out;
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  LockGuard lock(mu_);
  fks_.push_back(fk);
  return Status::OK();
}

bool Catalog::HasForeignKey(uint32_t table_oid, int col,
                            uint32_t ref_table_oid, int ref_col) const {
  LockGuard lock(mu_);
  for (const ForeignKey& fk : fks_) {
    if (fk.table_oid == table_oid && fk.column_index == col &&
        fk.ref_table_oid == ref_table_oid && fk.ref_column_index == ref_col) {
      return true;
    }
  }
  return false;
}

Status Catalog::CreateProcedure(ProcedureDef def) {
  LockGuard lock(mu_);
  const std::string name = def.name;
  if (procedures_.count(name) != 0) {
    return Status::AlreadyExists("procedure " + name);
  }
  procedures_[name] = std::move(def);
  return Status::OK();
}

Result<const ProcedureDef*> Catalog::GetProcedure(
    const std::string& name) const {
  LockGuard lock(mu_);
  auto it = procedures_.find(name);
  if (it == procedures_.end()) return Status::NotFound("procedure " + name);
  return &it->second;
}

void Catalog::SetOption(const std::string& name, const std::string& value) {
  LockGuard lock(mu_);
  options_[name] = value;
}

std::string Catalog::GetOption(const std::string& name,
                               const std::string& default_value) const {
  LockGuard lock(mu_);
  auto it = options_.find(name);
  return it == options_.end() ? default_value : it->second;
}

void Catalog::SetDttModel(const os::DttModel& model) {
  LockGuard lock(mu_);
  dtt_model_ = model;
}

}  // namespace hdb::catalog
