#ifndef HDB_CATALOG_SCHEMA_H_
#define HDB_CATALOG_SCHEMA_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/page.h"

namespace hdb::catalog {

/// Copyable relaxed-atomic counter. Writers are serialized by the owning
/// object's latch (TableHeap / BTree); the atomicity is for lock-free
/// readers — the optimizer reads row/page counts mid-flight without
/// taking any table latch.
template <typename T>
class RelaxedCounter {
 public:
  RelaxedCounter(T v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    set(o.get());
    return *this;
  }
  RelaxedCounter& operator=(T v) {
    set(v);
    return *this;
  }

  T get() const { return v_.load(std::memory_order_relaxed); }
  void set(T v) { v_.store(v, std::memory_order_relaxed); }
  operator T() const { return get(); }

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  T operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter& operator--() {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  T operator--(int) { return v_.fetch_sub(1, std::memory_order_relaxed); }
  RelaxedCounter& operator+=(T d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<T> v_;
};

struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kInt;
  bool nullable = true;
};

/// Declared referential-integrity constraint. The optimizer uses these to
/// constrain join selectivity estimates for multi-column joins (paper §3.2).
struct ForeignKey {
  uint32_t table_oid = kInvalidOid;
  int column_index = -1;
  uint32_t ref_table_oid = kInvalidOid;
  int ref_column_index = -1;
};

struct TableDef {
  uint32_t oid = kInvalidOid;
  std::string name;
  std::vector<ColumnDef> columns;

  /// Virtual system table (`sys.*`, DESIGN.md §6): no heap pages, no
  /// indexes, no DML; rows are materialized from live engine state at
  /// scan time by the owning Database.
  bool is_virtual = false;

  // Storage cursor, maintained by the table heap (under its latch).
  storage::PageId first_page = storage::kInvalidPageId;
  storage::PageId last_page = storage::kInvalidPageId;
  // Live table statistics (paper §3.2): written under the table latch,
  // read lock-free by the optimizer while other connections run DML.
  RelaxedCounter<uint64_t> row_count = 0;
  RelaxedCounter<uint64_t> page_count = 0;

  int ColumnIndex(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return static_cast<int>(i);
    }
    return -1;
  }
};

struct IndexDef {
  uint32_t oid = kInvalidOid;
  std::string name;
  uint32_t table_oid = kInvalidOid;
  /// Key columns in order; the B+-tree keys on the first column's
  /// order-preserving hash, further columns record the consultant's
  /// composition choice.
  std::vector<int> column_indexes;
  bool unique = false;
  storage::PageId root_page = storage::kInvalidPageId;
};

/// A stored procedure: named, parameterized statement list. Statements
/// inside procedures are the plan-cache-eligible class of paper §4.1.
struct ProcedureDef {
  std::string name;
  std::vector<std::string> param_names;
  std::vector<std::string> statements;  // SQL with :param placeholders
};

}  // namespace hdb::catalog

#endif  // HDB_CATALOG_SCHEMA_H_
