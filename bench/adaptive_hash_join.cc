// §4.3: the hash join's alternate index-NL strategy.
//
// The optimizer picks hash join based on the *estimated* build
// cardinality. After building, the operator knows the truth and may
// switch to the annotated index nested-loops strategy. This bench fixes
// the plan (hash join of tiny onto big, alt-index annotation present),
// sweeps the REAL build-side size, and compares simulated I/O cost with
// the adaptive switch enabled vs disabled. Expected shape: for small
// build sides the switch wins by orders of magnitude (it probes the big
// table's index a handful of times instead of scanning it); past the
// threshold the operator keeps the hash strategy and the two columns
// converge.
#include <cstdio>

#include "exec/executor.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

double RunJoin(BenchDb& db, const optimizer::PlanNode* plan, bool* switched,
               int64_t* result) {
  db.db->pool().Resize(64);
  db.db->pool().Resize(4096);
  db.db->disk().ResetIoStats();
  exec::ExecContext ec;
  ec.pool = &db.db->pool();
  ec.table_heap = [&db](uint32_t oid) { return db.db->heap(oid); };
  ec.index = [&db](uint32_t oid) { return db.db->btree(oid); };
  ec.num_quantifiers = 2;
  auto rows = exec::ExecuteToRows(plan, &ec);
  if (!rows.ok()) std::abort();
  *switched = ec.stats.hash_join_used_alternate;
  *result = static_cast<int64_t>(rows->size());
  return db.db->disk().io_micros() + 0.5 * ec.stats.rows_scanned;
}

}  // namespace

int main() {
  engine::DatabaseOptions opts;
  opts.device = engine::DeviceKind::kRotational;
  opts.initial_pool_frames = 4096;
  BenchDb db(opts);

  constexpr int kBigRows = 60000;
  db.Exec("CREATE TABLE big (k INT NOT NULL, v INT)");
  std::vector<table::Row> rows;
  for (int i = 0; i < kBigRows; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i)});
  }
  db.Load("big", rows);
  db.Exec("CREATE INDEX big_k ON big (k)");
  db.Exec("CREATE TABLE tiny (k INT NOT NULL)");

  auto* big = *db.db->catalog().GetTable("big");
  auto* tiny = *db.db->catalog().GetTable("tiny");
  auto* big_index = *db.db->catalog().GetIndex("big_k");

  auto make_plan = [&](bool adaptive, double threshold) {
    auto plan = std::make_unique<optimizer::PlanNode>();
    plan->kind = optimizer::PlanKind::kHashJoin;
    plan->outer_key = optimizer::Expr::Column(0, 0, TypeId::kInt, "big.k");
    plan->inner_key = optimizer::Expr::Column(1, 0, TypeId::kInt, "tiny.k");
    plan->alt_index_nl = adaptive;
    plan->alt_index = big_index;
    plan->alt_switch_threshold_rows = threshold;
    auto outer = std::make_unique<optimizer::PlanNode>();
    outer->kind = optimizer::PlanKind::kSeqScan;
    outer->quantifier = 0;
    outer->table = big;
    auto inner = std::make_unique<optimizer::PlanNode>();
    inner->kind = optimizer::PlanKind::kSeqScan;
    inner->quantifier = 1;
    inner->table = tiny;
    plan->children.push_back(std::move(outer));
    plan->children.push_back(std::move(inner));
    return plan;
  };

  std::printf(
      "=== §4.3 adaptive hash join: alternate index-NL strategy ===\n");
  std::printf("big side: %d rows; switch threshold: 200 build rows\n\n",
              kBigRows);
  PrintHeader({"build_rows", "hash_us", "adaptive_us", "speedup",
               "switched", "rows_ok"});
  int prev = 0;
  for (const int build_rows : {1, 10, 100, 400, 2000, 10000}) {
    for (int i = prev; i < build_rows; ++i) {
      db.Exec("INSERT INTO tiny VALUES (" + std::to_string(i * 3) + ")");
    }
    prev = build_rows;

    auto hash_plan = make_plan(/*adaptive=*/false, 0);
    auto adaptive_plan = make_plan(/*adaptive=*/true, 200);
    bool switched = false;
    int64_t r1 = 0, r2 = 0;
    const double hash_us = RunJoin(db, hash_plan.get(), &switched, &r1);
    const double adaptive_us =
        RunJoin(db, adaptive_plan.get(), &switched, &r2);
    const int64_t expected =
        std::min<int64_t>(build_rows, (kBigRows + 2) / 3);
    PrintRow({std::to_string(build_rows), Fmt(hash_us, 0),
              Fmt(adaptive_us, 0), Fmt(hash_us / adaptive_us, 2),
              switched ? "yes" : "no",
              (r1 == expected && r2 == expected) ? "yes" : "NO"});
  }
  return 0;
}
