// Figure 2(b): CALIBRATE DATABASE against a rotational disk.
//
// The paper calibrated an Intel Bensley box with a Seagate 7200 RPM
// Barracuda; here the same probe sequence runs against the virtual
// rotational device (DESIGN.md substitution #2). The write curve is the
// read curve scaled by a fitted factor, exactly as §4.2 describes.
// Bands span 1..10^7 on a log scale, like the paper's axis.
#include <cstdio>

#include "engine/database.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

int main() {
  engine::DatabaseOptions opts;
  opts.device = engine::DeviceKind::kRotational;
  BenchDb db(opts);

  db.Exec("CALIBRATE DATABASE");
  const os::DttModel& model = db.db->catalog().dtt_model();

  std::printf(
      "=== Figure 2(b): calibrated DTT, virtual 7200rpm disk "
      "(microseconds/page, log-scale bands) ===\n");
  std::printf("device: %s\n", model.device_name().c_str());
  PrintHeader({"band", "read_4k", "write_4k"});
  for (double band = 1; band <= 1e7; band *= 10) {
    PrintRow({Fmt(band, 0),
              Fmt(model.MicrosPerPage(os::DttOp::kRead, 4096, band)),
              Fmt(model.MicrosPerPage(os::DttOp::kWrite, 4096, band))});
  }
  const double ratio =
      model.MicrosPerPage(os::DttOp::kWrite, 4096, 1e6) /
      model.MicrosPerPage(os::DttOp::kRead, 4096, 1e6);
  std::printf("\nfitted write/read factor: %.3f (writes %s)\n", ratio,
              ratio < 1 ? "discounted, as in the paper" : "NOT discounted");

  // The model deploys through the catalog as a text blob (paper: deploy a
  // representative device's model to thousands of databases).
  std::printf("catalog blob bytes: %zu\n", model.Serialize().size());
  return 0;
}
