// Network sessions bench (DESIGN.md §12): one server process multiplexes
// 1k+ concurrent TCP connections — spread over forked client processes,
// each running a closed-loop poll() state machine — onto a small worker
// pool gated by the multiprogramming level. Demonstrates the paper's
// §2.1 claim at the socket layer: connection count and execution
// concurrency are decoupled, and the MPL controller adapts the gate
// under the resulting load. Writes BENCH_net.json.
//
// Children fork *before* the parent starts any thread (fork + threads
// don't mix); they block on a pipe until the parent sends the port.
//
//   net_sessions [--connections=1024] [--children=8] [--seconds=2]
//                [--workers=4]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/server.h"
#include "net/wire.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

constexpr int kRows = 100;  // bench table: k in [0,100), v = 2k

struct Config {
  uint16_t port = 0;
  uint32_t connections = 0;  // this child's share
  double seconds = 2.0;
};

struct ChildResult {
  uint64_t connected = 0;
  uint64_t completed = 0;
  uint64_t overloads = 0;
  uint64_t errors = 0;
  uint64_t row_check_failures = 0;
};

// ---------------------------------------------------------------------------
// Child: closed-loop client over nonblocking sockets + poll()
// ---------------------------------------------------------------------------

enum class ConnState { kConnecting, kHelloSent, kAwaitingResult, kDead };

struct ClientConn {
  int fd = -1;
  ConnState state = ConnState::kConnecting;
  net::FrameAssembler assembler;
  std::string out;       // unsent bytes
  int next_k = 0;        // key of the in-flight / next query
  uint64_t rows_seen = 0;
};

void AppendHello(std::string* out) {
  std::string payload;
  net::PutU32(&payload, net::kProtocolVersion);
  net::PutString(&payload, "net_sessions");
  net::AppendFrame(out, net::Opcode::kHello, payload);
}

void AppendQuery(ClientConn* c) {
  std::string payload;
  net::PutString(&payload, "SELECT v FROM bench WHERE k = " +
                               std::to_string(c->next_k));
  net::AppendFrame(&c->out, net::Opcode::kQuery, payload);
  c->rows_seen = 0;
}

/// Flushes c->out; returns false when the connection died.
bool TrySend(ClientConn* c) {
  while (!c->out.empty()) {
    ssize_t n = send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  return true;
}

int RunChild(int cfg_rd, int res_wr) {
  Config cfg;
  if (read(cfg_rd, &cfg, sizeof(cfg)) != sizeof(cfg)) return 10;
  close(cfg_rd);

  ChildResult res;
  std::vector<ClientConn> conns(cfg.connections);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  for (auto& c : conns) {
    c.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (c.fd < 0) {
      c.state = ConnState::kDead;
      continue;
    }
    int r = connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (r == 0) {
      AppendHello(&c.out);
      c.state = ConnState::kHelloSent;
      if (!TrySend(&c)) c.state = ConnState::kDead;
    } else if (errno == EINPROGRESS) {
      c.state = ConnState::kConnecting;
    } else {
      close(c.fd);
      c.fd = -1;
      c.state = ConnState::kDead;
    }
  }

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(cfg.seconds * 1e6));
  std::vector<pollfd> pfds;
  std::vector<size_t> idx;
  char buf[16 * 1024];

  while (std::chrono::steady_clock::now() < deadline) {
    pfds.clear();
    idx.clear();
    for (size_t i = 0; i < conns.size(); ++i) {
      ClientConn& c = conns[i];
      if (c.state == ConnState::kDead) continue;
      short events = POLLIN;
      if (c.state == ConnState::kConnecting || !c.out.empty()) {
        events |= POLLOUT;
      }
      pfds.push_back({c.fd, events, 0});
      idx.push_back(i);
    }
    if (pfds.empty()) break;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (poll(pfds.data(), pfds.size(),
             std::max(1, static_cast<int>(left.count()))) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (size_t p = 0; p < pfds.size(); ++p) {
      ClientConn& c = conns[idx[p]];
      const short got = pfds[p].revents;
      if (got == 0) continue;
      if (got & (POLLERR | POLLHUP | POLLNVAL)) {
        close(c.fd);
        c.state = ConnState::kDead;
        continue;
      }
      if (c.state == ConnState::kConnecting && (got & POLLOUT)) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          close(c.fd);
          c.state = ConnState::kDead;
          continue;
        }
        AppendHello(&c.out);
        c.state = ConnState::kHelloSent;
      }
      if ((got & POLLOUT) && !TrySend(&c)) {
        close(c.fd);
        c.state = ConnState::kDead;
        continue;
      }
      if (!(got & POLLIN)) continue;

      bool dead = false;
      for (;;) {
        ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          c.assembler.Feed(buf, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;
        break;
      }
      for (;;) {
        auto next = c.assembler.Next();
        if (!next.ok()) {
          dead = true;
          break;
        }
        if (!next->has_value()) break;
        const net::Frame f = **next;
        switch (static_cast<net::Opcode>(f.opcode)) {
          case net::Opcode::kHelloOk:
            ++res.connected;
            c.next_k = static_cast<int>(idx[p]) % kRows;
            AppendQuery(&c);
            c.state = ConnState::kAwaitingResult;
            break;
          case net::Opcode::kRowHeader:
            break;
          case net::Opcode::kRow: {
            ++c.rows_seen;
            // One row, one column: v must equal 2k.
            net::PayloadReader in(f.payload);
            auto ncols = in.U16();
            auto v = in.GetValue();
            if (!ncols.ok() || *ncols != 1 || !v.ok() ||
                v->AsInt() != 2 * c.next_k) {
              ++res.row_check_failures;
            }
            break;
          }
          case net::Opcode::kDone: {
            ++res.completed;
            if (c.rows_seen != 1) ++res.row_check_failures;
            // Closed loop: next statement immediately.
            c.next_k = (c.next_k + 7) % kRows;
            AppendQuery(&c);
            break;
          }
          case net::Opcode::kOverloaded:
            ++res.overloads;
            c.next_k = (c.next_k + 7) % kRows;
            AppendQuery(&c);
            break;
          case net::Opcode::kError:
            ++res.errors;
            c.next_k = (c.next_k + 7) % kRows;
            AppendQuery(&c);
            break;
          case net::Opcode::kGoodbye:
            dead = true;
            break;
          default:
            break;
        }
        if (dead) break;
      }
      if (!dead && !c.out.empty()) dead = !TrySend(&c);
      if (dead) {
        close(c.fd);
        c.state = ConnState::kDead;
      }
    }
  }

  for (auto& c : conns) {
    if (c.state != ConnState::kDead && c.fd >= 0) close(c.fd);
  }
  if (write(res_wr, &res, sizeof(res)) != sizeof(res)) return 11;
  close(res_wr);
  return 0;
}

// ---------------------------------------------------------------------------
// Parent: database + server + virtual-clock ticker
// ---------------------------------------------------------------------------

struct Flags {
  int connections = 1024;
  int children = 8;
  double seconds = 2.0;
  int workers = 4;
};

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    if (key == "--connections") f.connections = std::stoi(val);
    if (key == "--children") f.children = std::stoi(val);
    if (key == "--seconds") f.seconds = std::stod(val);
    if (key == "--workers") f.workers = std::stoi(val);
  }
  return f;
}

void RaiseFdLimit(rlim_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= want) return;
  rl.rlim_cur = std::min(want, rl.rlim_max);
  setrlimit(RLIMIT_NOFILE, &rl);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  RaiseFdLimit(static_cast<rlim_t>(flags.connections) + 512);

  // Fork the client fleet before any thread exists in this process.
  struct Child {
    pid_t pid = -1;
    int cfg_wr = -1;
    int res_rd = -1;
    uint32_t share = 0;
  };
  std::vector<Child> children(flags.children);
  const int per_child = flags.connections / flags.children;
  for (int i = 0; i < flags.children; ++i) {
    int cfg[2], res[2];
    if (pipe(cfg) != 0 || pipe(res) != 0) {
      std::perror("pipe");
      return 1;
    }
    children[i].share = static_cast<uint32_t>(
        i + 1 == flags.children ? flags.connections - per_child * i
                                : per_child);
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      close(cfg[1]);
      close(res[0]);
      _exit(RunChild(cfg[0], res[1]));
    }
    children[i].pid = pid;
    children[i].cfg_wr = cfg[1];
    children[i].res_rd = res[0];
    close(cfg[0]);
    close(res[1]);
  }

  // Server side: MPL starts low so the controller has something to
  // discover; the gate — not the 1k connections — bounds execution.
  engine::DatabaseOptions dbo;
  dbo.memory_governor.multiprogramming_level = 2;
  dbo.mpl_controller.min_mpl = 1;
  dbo.mpl_controller.max_mpl = 64;
  dbo.mpl_controller.step = 2;
  dbo.mpl_controller.interval_micros = 50'000;  // virtual time
  BenchDb db(dbo);
  db.Exec("CREATE TABLE bench (k INT NOT NULL, v INT)");
  db.Exec("CREATE INDEX bench_k ON bench (k)");
  {
    std::vector<table::Row> rows;
    rows.reserve(kRows);
    for (int i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(i), Value::Int(2 * i)});
    }
    db.Load("bench", rows);
  }

  net::ServerOptions so;
  so.workers = flags.workers;
  so.max_connections = static_cast<size_t>(flags.connections) + 64;
  auto server_or = net::Server::Start(db.db.get(), so);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server start: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(*server_or);

  // Virtual-clock ticker: governor/controller intervals elapse with wall
  // time while the net workers execute statements.
  std::atomic<bool> tick_stop{false};
  std::thread ticker([&] {
    auto last = std::chrono::steady_clock::now();
    while (!tick_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const auto now = std::chrono::steady_clock::now();
      db.db->Tick(std::chrono::duration_cast<std::chrono::microseconds>(
                      now - last)
                      .count());
      last = now;
    }
  });

  std::printf("net_sessions: %d connections over %d child processes, "
              "%d server workers, %.1fs, port %u\n",
              flags.connections, flags.children, flags.workers, flags.seconds,
              server->port());

  Config cfg;
  cfg.port = server->port();
  cfg.seconds = flags.seconds;
  const auto start = std::chrono::steady_clock::now();
  for (auto& c : children) {
    cfg.connections = c.share;
    if (write(c.cfg_wr, &cfg, sizeof(cfg)) != sizeof(cfg)) {
      std::perror("write config");
      return 1;
    }
    close(c.cfg_wr);
  }

  ChildResult total;
  uint64_t child_failures = 0;
  for (auto& c : children) {
    ChildResult r{};
    if (read(c.res_rd, &r, sizeof(r)) != sizeof(r)) ++child_failures;
    close(c.res_rd);
    int status = 0;
    waitpid(c.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++child_failures;
    total.connected += r.connected;
    total.completed += r.completed;
    total.overloads += r.overloads;
    total.errors += r.errors;
    total.row_check_failures += r.row_check_failures;
  }
  const double wall =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1e6;

  // Every socket the children closed must drain server-side: zero hung
  // connections is part of the bench's contract.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server->stats().active > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  tick_stop.store(true);
  ticker.join();

  const net::ServerStats stats = server->stats();
  const auto mpl_trace = db.db->mpl_controller().history();
  const int mpl_end = db.db->memory_governor().multiprogramming_level();
  int mpl_steps = 0;
  int prev_mpl = 2;
  for (const auto& s : mpl_trace) {
    if (s.mpl != prev_mpl) ++mpl_steps;
    prev_mpl = s.mpl;
  }
  auto governor_rows = db.db->Connect();
  uint64_t mpl_decisions = 0;
  if (governor_rows.ok()) {
    auto r = (*governor_rows)
                 ->Execute("SELECT COUNT(*) FROM sys.governors "
                           "WHERE governor = 'mpl'");
    if (r.ok() && !r->rows.empty()) {
      mpl_decisions = static_cast<uint64_t>(r->rows[0][0].AsInt());
    }
  }
  const std::string telemetry = db.db->TelemetrySnapshotJson();
  server->Stop();

  PrintHeader({"conns", "connected", "stmts", "stmt_per_s", "overloads",
               "errors", "row_fail", "hung", "mpl_end", "mpl_steps"});
  PrintRow({std::to_string(flags.connections),
            std::to_string(total.connected), std::to_string(total.completed),
            Fmt(total.completed / wall, 0), std::to_string(total.overloads),
            std::to_string(total.errors),
            std::to_string(total.row_check_failures),
            std::to_string(stats.active), std::to_string(mpl_end),
            std::to_string(mpl_steps)});

  std::FILE* f = std::fopen("BENCH_net.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n  \"connections\": %d,\n  \"children\": %d,\n"
        "  \"server_workers\": %d,\n  \"seconds\": %.2f,\n"
        "  \"connected\": %llu,\n  \"completed\": %llu,\n"
        "  \"throughput_stmt_per_s\": %.1f,\n  \"overloads\": %llu,\n"
        "  \"errors\": %llu,\n  \"row_check_failures\": %llu,\n"
        "  \"child_failures\": %llu,\n  \"hung_connections\": %zu,\n"
        "  \"server\": {\"accepted\": %llu, \"closed\": %llu, "
        "\"shed\": %llu, \"rejected\": %llu},\n"
        "  \"mpl\": {\"start\": 2, \"end\": %d, \"adaptation_steps\": %d, "
        "\"decision_log_rows\": %llu},\n",
        flags.connections, flags.children, flags.workers, wall,
        static_cast<unsigned long long>(total.connected),
        static_cast<unsigned long long>(total.completed),
        total.completed / wall,
        static_cast<unsigned long long>(total.overloads),
        static_cast<unsigned long long>(total.errors),
        static_cast<unsigned long long>(total.row_check_failures),
        static_cast<unsigned long long>(child_failures), stats.active,
        static_cast<unsigned long long>(stats.accepted),
        static_cast<unsigned long long>(stats.closed),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.rejected), mpl_end, mpl_steps,
        static_cast<unsigned long long>(mpl_decisions));
    std::fprintf(f, "  \"mpl_trace\": [\n");
    for (size_t i = 0; i < mpl_trace.size(); ++i) {
      const auto& s = mpl_trace[i];
      std::fprintf(f,
                   "    {\"at_micros\": %lld, \"mpl\": %d, "
                   "\"throughput\": %.1f, \"direction\": %d}%s\n",
                   static_cast<long long>(s.at_micros), s.mpl, s.throughput,
                   s.direction, i + 1 < mpl_trace.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"telemetry\": ");
    std::fputs(telemetry.c_str(), f);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_net.json\n");
  }

  const bool ok = child_failures == 0 && total.row_check_failures == 0 &&
                  stats.active == 0 && total.completed > 0;
  std::printf("%s: %llu statements over %llu connections, %llu overload "
              "answers, %d->%d MPL\n",
              ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(total.completed),
              static_cast<unsigned long long>(total.connected),
              static_cast<unsigned long long>(total.overloads), 2, mpl_end);
  return ok ? 0 : 2;
}
