// DESIGN.md §10: grace hash join and external-merge sort at ~1/10th of
// the memory the statement actually needs.
//
// The starved configuration pins the statement soft limit to roughly one
// tenth of the hash-join build size (pool 512 frames / mpl 5), so the
// build spills partitions, oversized spilled partitions re-partition
// recursively, and ORDER BY degrades to sorted runs plus a streaming
// k-way merge. Each workload is cross-checked against an unconstrained
// run — a spilling plan that loses rows is a failure, not a slow pass.
//
// With an output path argument the bench also emits a flat JSON mapping
// bench -> rows_per_sec (the BENCH_spill.json baseline format consumed by
// scripts/bench_smoke.sh + bench_compare.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "common/rng.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

double NowMs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

constexpr int kBuildRows = 20000;  // ~4.2 MB of build state at 208 B/row
constexpr int kProbeRows = 40000;
constexpr int kSortRows = 40000;

void LoadWorkload(BenchDb& db) {
  db.Exec("CREATE TABLE build (a INT NOT NULL, j INT NOT NULL, v DOUBLE)");
  db.Exec("CREATE TABLE probe (a INT NOT NULL, j INT NOT NULL, v DOUBLE)");
  Rng rng(42);
  std::vector<table::Row> rows;
  for (int i = 0; i < kBuildRows; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(4096))),
                    Value::Double(static_cast<double>(rng.Uniform(100000)))});
  }
  db.Load("build", rows);
  rows.clear();
  for (int i = 0; i < kProbeRows; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(4096))),
                    Value::Double(static_cast<double>(rng.Uniform(100000)))});
  }
  db.Load("probe", rows);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== §4.3/§10 spill scheduler at ~1/10th memory ===\n");

  // Unconstrained reference: soft limit far above every operator's need.
  engine::DatabaseOptions roomy_opts;
  roomy_opts.initial_pool_frames = 4096;
  roomy_opts.memory_governor.multiprogramming_level = 2;
  BenchDb roomy(roomy_opts);
  LoadWorkload(roomy);

  // Starved: soft = 512/5 = 102 pages ≈ 418 KB, ~1/10th of the build.
  engine::DatabaseOptions starved_opts;
  starved_opts.initial_pool_frames = 512;
  starved_opts.memory_governor.multiprogramming_level = 5;
  BenchDb starved(starved_opts);
  LoadWorkload(starved);

  const char* join_sql =
      "SELECT COUNT(*), SUM(build.v) FROM build "
      "JOIN probe ON build.j = probe.j";
  const char* sort_sql = "SELECT a, j, v FROM probe ORDER BY v, a";

  const auto want_join = roomy.Exec(join_sql);
  const auto want_sort = roomy.Exec(sort_sql);

  std::map<std::string, double> out;
  PrintHeader({"bench", "soft_pages", "spilled_mb", "decisions", "correct",
               "ms", "rows_per_s"});

  // Best-of-3 per workload: wall time under a 15% regression tolerance
  // must not fold in scheduler noise from whatever ran just before.
  constexpr int kReps = 3;

  {
    double ms = 1e30;
    engine::QueryResult got;
    for (int rep = 0; rep < kReps; ++rep) {
      const double t0 = NowMs();
      got = starved.Exec(join_sql);
      ms = std::min(ms, NowMs() - t0);
    }
    const bool correct =
        got.rows.size() == want_join.rows.size() &&
        got.rows[0][0].AsInt() == want_join.rows[0][0].AsInt() &&
        got.exec_stats.spill_bytes_written > 0 &&
        got.exec_stats.spill_decisions > 0;
    const double rps = (kBuildRows + kProbeRows) / (ms / 1000.0);
    out["spill_grace_join"] = rps;
    PrintRow({"grace_join",
              std::to_string(starved.db->memory_governor().SoftLimitPages()),
              Fmt(got.exec_stats.spill_bytes_written / (1024.0 * 1024.0)),
              std::to_string(got.exec_stats.spill_decisions),
              correct ? "yes" : "NO", Fmt(ms), Fmt(rps, 0)});
    if (!correct) return 1;
  }

  {
    double ms = 1e30;
    engine::QueryResult got;
    for (int rep = 0; rep < kReps; ++rep) {
      const double t0 = NowMs();
      got = starved.Exec(sort_sql);
      ms = std::min(ms, NowMs() - t0);
    }
    bool correct = got.rows.size() == want_sort.rows.size() &&
                   got.exec_stats.sort_runs_spilled > 0;
    for (size_t i = 1; correct && i < got.rows.size(); ++i) {
      if (got.rows[i][2].AsDouble() < got.rows[i - 1][2].AsDouble()) {
        correct = false;
      }
    }
    const double rps = kSortRows / (ms / 1000.0);
    out["spill_external_sort"] = rps;
    PrintRow({"external_sort",
              std::to_string(starved.db->memory_governor().SoftLimitPages()),
              Fmt(got.exec_stats.spill_bytes_written / (1024.0 * 1024.0)),
              std::to_string(got.exec_stats.spill_decisions),
              correct ? "yes" : "NO", Fmt(ms), Fmt(rps, 0)});
    if (!correct) return 1;
  }

  if (argc > 1) {
    FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "spill_scan: cannot write %s\n", argv[1]);
      return 1;
    }
    std::fprintf(f, "{\n");
    size_t i = 0;
    for (const auto& [name, rps] : out) {
      std::fprintf(f, "  \"%s\": %.1f%s\n", name.c_str(), rps,
                   ++i < out.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("spill_scan: wrote %s\n", argv[1]);
  }
  return 0;
}
