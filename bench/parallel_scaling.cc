// §4.4: adaptive intra-query parallelism (Manegold-style FCFS pipeline).
//
// One probe scan feeds a pipeline of two hash joins plus a hash group by;
// worker counts sweep 1..8. The paper's claims reproduced here:
//  * build and probe phases both parallelize via FCFS dispatch;
//  * results are identical at every worker count;
//  * dynamically reducing the worker count to one mid-query costs only
//    slightly more than a plan that never set up parallelism.
#include <atomic>
#include <cstdio>
#include <thread>

#include "exec/parallel.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

int main() {
  BenchDb db;
  constexpr int kProbeRows = 400000;
  db.Exec("CREATE TABLE probe (k1 INT NOT NULL, k2 INT NOT NULL, g INT)");
  db.Exec("CREATE TABLE build1 (k INT NOT NULL, x INT)");
  db.Exec("CREATE TABLE build2 (k INT NOT NULL, x INT)");
  {
    Rng rng(11);
    std::vector<table::Row> rows;
    rows.reserve(kProbeRows);
    for (int i = 0; i < kProbeRows; ++i) {
      rows.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(3000))),
                      Value::Int(static_cast<int32_t>(rng.Uniform(3000))),
                      Value::Int(static_cast<int32_t>(rng.Uniform(8)))});
    }
    db.Load("probe", rows);
    std::vector<table::Row> b1, b2;
    for (int i = 0; i < 2000; ++i) b1.push_back({Value::Int(i), Value::Int(0)});
    for (int i = 1000; i < 3000; ++i) {
      b2.push_back({Value::Int(i), Value::Int(0)});
    }
    db.Load("build1", b1);
    db.Load("build2", b2);
  }

  exec::ParallelHashPipeline::Spec spec;
  spec.probe_table = *db.db->catalog().GetTable("probe");
  spec.joins.push_back({*db.db->catalog().GetTable("build1"), 0, 0, true});
  spec.joins.push_back({*db.db->catalog().GetTable("build2"), 0, 1, true});
  spec.group_by_column = 2;

  auto heaps = [&db](uint32_t oid) { return db.db->heap(oid); };

  std::printf("=== §4.4 parallel pipeline scaling (%d probe rows) ===\n",
              kProbeRows);
  PrintHeader({"workers", "build_ms", "probe_ms", "total_ms", "speedup",
               "out_rows"});
  double base_total = 0;
  uint64_t reference_out = 0;
  std::printf("host cores: %u (speedup is bounded by the host; the FCFS\n"
              "dispatch, parallel build+merge and result identity are the\n"
              "mechanism checks)\n",
              std::thread::hardware_concurrency());
  for (const int workers : {1, 2, 4, 8}) {
    exec::ParallelHashPipeline pipe(heaps, spec, workers);
    auto stats = pipe.Run();
    if (!stats.ok()) std::abort();
    const double total =
        (stats->build_wall_micros + stats->probe_wall_micros) / 1000.0;
    if (workers == 1) {
      base_total = total;
      reference_out = stats->output_rows;
    }
    if (stats->output_rows != reference_out) {
      std::printf("RESULT MISMATCH at %d workers!\n", workers);
    }
    PrintRow({std::to_string(workers), Fmt(stats->build_wall_micros / 1000),
              Fmt(stats->probe_wall_micros / 1000), Fmt(total),
              Fmt(base_total / total, 2), std::to_string(stats->output_rows)});
  }

  // Dynamic reduction: start with 4 workers, drop to 1 shortly after the
  // probe begins (paper: "the number of threads assigned to a plan can
  // very easily be changed during execution").
  {
    exec::ParallelHashPipeline pipe(heaps, spec, 4);
    std::atomic<bool> done{false};
    std::thread reducer([&pipe, &done]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (!done.load()) pipe.ReduceWorkers(1);
    });
    auto stats = pipe.Run();
    done.store(true);
    reducer.join();
    if (!stats.ok()) std::abort();
    const double total =
        (stats->build_wall_micros + stats->probe_wall_micros) / 1000.0;
    std::printf(
        "\ndynamic reduction 4->1 mid-query: total=%.1fms (serial=%.1fms, "
        "overhead=%.0f%%), workers at finish=%d, out=%llu (%s)\n",
        total, base_total,
        base_total > 0 ? (total / base_total - 1.0) * 100.0 : 0.0,
        stats->workers_at_finish,
        static_cast<unsigned long long>(stats->output_rows),
        stats->output_rows == reference_out ? "correct" : "WRONG");
  }
  return 0;
}
