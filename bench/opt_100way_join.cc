// §4.1 headline claim: "a 100-way join query against a small TPC-H
// database can be optimized and executed ... with as little as 3 MB of
// buffer pool, with only 1 MB needed for optimization."
//
// This bench creates a 100-table chain join over small tables, gives the
// enumerator a 1 MiB arena budget and the server a 3 MiB pool, and
// reports the arena high-water mark, governor effort, and the (correct)
// execution result.
#include <chrono>
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {
double NowMs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}
}  // namespace

int main() {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 768;          // 3 MB of 4K pages
  opts.optimizer_arena_bytes = 1 << 20;    // 1 MB optimization memory
  opts.optimizer_governor.initial_quota = 30000;
  BenchDb db(opts);

  constexpr int kTables = 100;
  constexpr int kRowsPerTable = 5;
  for (int t = 0; t < kTables; ++t) {
    const std::string name = "t" + std::to_string(t);
    db.Exec("CREATE TABLE " + name + " (a INT NOT NULL, b INT NOT NULL)");
    std::vector<table::Row> rows;
    for (int i = 0; i < kRowsPerTable; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i)});
    }
    db.Load(name, rows);
  }

  // Chain: t0.b = t1.a AND t1.b = t2.a AND ... (99 joins).
  std::string sql = "SELECT COUNT(*) FROM t0";
  for (int t = 1; t < kTables; ++t) sql += ", t" + std::to_string(t);
  sql += " WHERE ";
  for (int t = 0; t + 1 < kTables; ++t) {
    if (t > 0) sql += " AND ";
    sql += "t" + std::to_string(t) + ".b = t" + std::to_string(t + 1) + ".a";
  }

  const double t0 = NowMs();
  auto r = db.Exec(sql);
  const double elapsed = NowMs() - t0;

  std::printf("=== 100-way join on a 3MB pool with a 1MB optimizer arena ===\n");
  PrintHeader({"metric", "value"});
  PrintRow({"quantifiers", std::to_string(kTables)});
  PrintRow({"pool_bytes", std::to_string(db.db->pool().CurrentBytes())});
  PrintRow({"arena_budget", std::to_string(1 << 20)});
  PrintRow({"arena_high_water",
            std::to_string(r.diag.enumeration.arena_high_water)});
  PrintRow({"under_1MB",
            r.diag.enumeration.arena_high_water <= (1u << 20) ? "yes" : "NO"});
  PrintRow({"nodes_visited",
            std::to_string(r.diag.enumeration.nodes_visited)});
  PrintRow({"plans_completed",
            std::to_string(r.diag.enumeration.plans_completed)});
  PrintRow({"prunes", std::to_string(r.diag.enumeration.prunes)});
  PrintRow({"est_cost_us", Fmt(r.diag.enumeration.best_cost, 0)});
  PrintRow({"result_count", std::to_string(r.rows[0][0].AsInt())});
  PrintRow({"expected", std::to_string(kRowsPerTable)});
  PrintRow({"optimize+exec_ms", Fmt(elapsed)});
  return 0;
}
