// Eq. (4) and Eq. (5) / §4.3: memory governor limits and their effect.
//
// Part 1 tabulates the hard limit (4/3 * max pool / active requests) and
// the soft limit (current pool / multiprogramming level).
// Part 2 runs the same memory-hungry hash join + group-by statement under
// increasingly strict MPLs, showing the adaptive degradation chain:
// everything in memory -> partitions evicted -> group-by fallback -> and,
// at an absurd hard limit, statement termination with an error.
#include <cstdio>
#include <string>
#include <vector>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

struct DegradationRun {
  int mpl = 0;
  uint64_t soft_pages = 0;
  uint64_t evictions = 0;
  uint64_t spilled = 0;
  bool gb_fallback = false;
  size_t result_rows = 0;
  bool ok = false;
  std::string telemetry_json;  // Database::TelemetrySnapshotJson()
};

}  // namespace

int main() {
  std::printf("=== Eq.(4)/(5): governor limits (pages) ===\n");
  {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 4096;
    opts.pool_governor.max_bytes = 16384ull * 4096;  // 16384 pages max
    BenchDb db(opts);
    auto& gov = db.db->memory_governor();
    PrintHeader({"active_reqs", "mpl", "hard_limit", "soft_limit"});
    for (const int active : {1, 2, 4, 8}) {
      std::vector<std::unique_ptr<exec::TaskMemoryContext>> tasks;
      for (int i = 0; i < active; ++i) tasks.push_back(gov.BeginTask());
      for (const int mpl : {2, 8, 32}) {
        gov.SetMultiprogrammingLevel(mpl);
        PrintRow({std::to_string(active), std::to_string(mpl),
                  std::to_string(gov.HardLimitPages()),
                  std::to_string(gov.SoftLimitPages())});
      }
    }
  }

  std::printf(
      "\n=== adaptive degradation under shrinking soft limits ===\n");
  PrintHeader({"mpl", "soft_pages", "evictions", "spilled", "gb_fallback",
               "result_rows", "status"});
  std::vector<DegradationRun> degradation;
  for (const int mpl : {2, 16, 64, 256}) {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 512;
    opts.memory_governor.multiprogramming_level = mpl;
    BenchDb db(opts);
    db.Exec("CREATE TABLE l (k INT, pad VARCHAR(40))");
    db.Exec("CREATE TABLE r (k INT, g INT)");
    std::vector<table::Row> lr, rr;
    Rng rng(4);
    for (int i = 0; i < 6000; ++i) {
      lr.push_back({Value::Int(i), Value::String(std::string(32, 'l'))});
    }
    for (int i = 0; i < 6000; ++i) {
      rr.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(6000))),
                    Value::Int(static_cast<int32_t>(rng.Uniform(2000)))});
    }
    db.Load("l", lr);
    db.Load("r", rr);
    auto res = db.conn->Execute(
        "SELECT r.g, COUNT(*) FROM r JOIN l ON r.k = l.k GROUP BY r.g");
    const auto soft = db.db->memory_governor().SoftLimitPages();
    DegradationRun run;
    run.mpl = mpl;
    run.soft_pages = soft;
    run.ok = res.ok();
    if (res.ok()) {
      run.evictions = res->exec_stats.hash_partitions_evicted;
      run.spilled = res->exec_stats.hash_spilled_tuples;
      run.gb_fallback = res->exec_stats.group_by_used_fallback;
      run.result_rows = res->rows.size();
      PrintRow({std::to_string(mpl), std::to_string(soft),
                std::to_string(res->exec_stats.hash_partitions_evicted),
                std::to_string(res->exec_stats.hash_spilled_tuples),
                res->exec_stats.group_by_used_fallback ? "yes" : "no",
                std::to_string(res->rows.size()), "ok"});
    } else {
      PrintRow({std::to_string(mpl), std::to_string(soft), "-", "-", "-",
                "-", res.status().ToString()});
    }
    run.telemetry_json = db.db->TelemetrySnapshotJson();
    degradation.push_back(std::move(run));
  }

  std::printf("\n=== Eq.(4) hard-limit kill ===\n");
  std::string kill_telemetry;
  bool kill_succeeded = false;
  {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 256;
    // The engine derives Eq.(4)'s max-pool term from the pool governor's
    // hard upper bound; squeeze it to ~16 pages.
    opts.pool_governor.min_bytes = 8 * 4096;
    opts.pool_governor.max_bytes = 16 * 4096;
    BenchDb db(opts);
    db.Exec("CREATE TABLE big (k INT, pad VARCHAR(120))");
    std::vector<table::Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value::Int(i), Value::String(std::to_string(i) + std::string(90, 'x'))});
    }
    db.Load("big", rows);
    auto res = db.conn->Execute("SELECT DISTINCT pad FROM big");
    std::printf("huge DISTINCT under ~10-page hard limit: %s\n",
                res.ok() ? "unexpectedly succeeded"
                         : res.status().ToString().c_str());
    kill_succeeded = res.ok();
    // The snapshot carries mem.hard_limit_kills and the governor's "kill"
    // decision-log entry — proof the termination came from Eq.(4).
    kill_telemetry = db.db->TelemetrySnapshotJson();
  }

  std::FILE* f = std::fopen("BENCH_memory_governor.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"degradation\": [\n");
    for (size_t i = 0; i < degradation.size(); ++i) {
      const auto& r = degradation[i];
      std::fprintf(
          f,
          "    {\"mpl\": %d, \"soft_pages\": %llu, \"ok\": %s, "
          "\"partitions_evicted\": %llu, \"spilled_tuples\": %llu, "
          "\"group_by_fallback\": %s, \"result_rows\": %zu,\n"
          "     \"telemetry\": %s}%s\n",
          r.mpl, static_cast<unsigned long long>(r.soft_pages),
          r.ok ? "true" : "false",
          static_cast<unsigned long long>(r.evictions),
          static_cast<unsigned long long>(r.spilled),
          r.gb_fallback ? "true" : "false", r.result_rows,
          r.telemetry_json.c_str(), i + 1 < degradation.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"hard_limit_kill\": {\"killed\": %s, "
                 "\"telemetry\": %s}\n}\n",
                 kill_succeeded ? "false" : "true", kill_telemetry.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_memory_governor.json\n");
  }
  return 0;
}
