// Eq. (4) and Eq. (5) / §4.3: memory governor limits and their effect.
//
// Part 1 tabulates the hard limit (4/3 * max pool / active requests) and
// the soft limit (current pool / multiprogramming level).
// Part 2 runs the same memory-hungry hash join + group-by statement under
// increasingly strict MPLs, showing the adaptive degradation chain:
// everything in memory -> partitions evicted -> group-by fallback -> and,
// at an absurd hard limit, statement termination with an error.
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

int main() {
  std::printf("=== Eq.(4)/(5): governor limits (pages) ===\n");
  {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 4096;
    opts.pool_governor.max_bytes = 16384ull * 4096;  // 16384 pages max
    BenchDb db(opts);
    auto& gov = db.db->memory_governor();
    PrintHeader({"active_reqs", "mpl", "hard_limit", "soft_limit"});
    for (const int active : {1, 2, 4, 8}) {
      std::vector<std::unique_ptr<exec::TaskMemoryContext>> tasks;
      for (int i = 0; i < active; ++i) tasks.push_back(gov.BeginTask());
      for (const int mpl : {2, 8, 32}) {
        gov.SetMultiprogrammingLevel(mpl);
        PrintRow({std::to_string(active), std::to_string(mpl),
                  std::to_string(gov.HardLimitPages()),
                  std::to_string(gov.SoftLimitPages())});
      }
    }
  }

  std::printf(
      "\n=== adaptive degradation under shrinking soft limits ===\n");
  PrintHeader({"mpl", "soft_pages", "evictions", "spilled", "gb_fallback",
               "result_rows", "status"});
  for (const int mpl : {2, 16, 64, 256}) {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 512;
    opts.memory_governor.multiprogramming_level = mpl;
    BenchDb db(opts);
    db.Exec("CREATE TABLE l (k INT, pad VARCHAR(40))");
    db.Exec("CREATE TABLE r (k INT, g INT)");
    std::vector<table::Row> lr, rr;
    Rng rng(4);
    for (int i = 0; i < 6000; ++i) {
      lr.push_back({Value::Int(i), Value::String(std::string(32, 'l'))});
    }
    for (int i = 0; i < 6000; ++i) {
      rr.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(6000))),
                    Value::Int(static_cast<int32_t>(rng.Uniform(2000)))});
    }
    db.Load("l", lr);
    db.Load("r", rr);
    auto res = db.conn->Execute(
        "SELECT r.g, COUNT(*) FROM r JOIN l ON r.k = l.k GROUP BY r.g");
    const auto soft = db.db->memory_governor().SoftLimitPages();
    if (res.ok()) {
      PrintRow({std::to_string(mpl), std::to_string(soft),
                std::to_string(res->exec_stats.hash_partitions_evicted),
                std::to_string(res->exec_stats.hash_spilled_tuples),
                res->exec_stats.group_by_used_fallback ? "yes" : "no",
                std::to_string(res->rows.size()), "ok"});
    } else {
      PrintRow({std::to_string(mpl), std::to_string(soft), "-", "-", "-",
                "-", res.status().ToString()});
    }
  }

  std::printf("\n=== Eq.(4) hard-limit kill ===\n");
  {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 256;
    // The engine derives Eq.(4)'s max-pool term from the pool governor's
    // hard upper bound; squeeze it to ~16 pages.
    opts.pool_governor.min_bytes = 8 * 4096;
    opts.pool_governor.max_bytes = 16 * 4096;
    BenchDb db(opts);
    db.Exec("CREATE TABLE big (k INT, pad VARCHAR(120))");
    std::vector<table::Row> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value::Int(i), Value::String(std::to_string(i) + std::string(90, 'x'))});
    }
    db.Load("big", rows);
    auto res = db.conn->Execute("SELECT DISTINCT pad FROM big");
    std::printf("huge DISTINCT under ~10-page hard limit: %s\n",
                res.ok() ? "unexpectedly succeeded"
                         : res.status().ToString().c_str());
  }
  return 0;
}
