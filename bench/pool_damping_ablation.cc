// Ablation for §2's Eq. (2) damping and the §6 future-work hysteresis
// guard (implemented here as an extension).
//
// Workload: a competing application with a cyclic allocation pattern —
// the kind of "wildly fluctuating" system load the paper notes its
// heuristics are NOT stable under. Three governor configurations run the
// same trace:
//   undamped         d = 1.0 (jump straight to the target)
//   damped           d = 0.9 (the paper's Eq. (2))
//   damped+guard     d = 0.9 plus the anti-hysteresis re-grow cap (§6)
// Reported: how much pool the governor moved in total (resize churn, MB),
// the number of grow/shrink direction flips, and the final size. Less
// churn at similar final size = calmer control.
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {
constexpr uint64_t kMB = 1ull << 20;

struct Outcome {
  double churn_mb = 0;
  int flips = 0;
  double final_mb = 0;
};

Outcome RunTrace(double damping, int hysteresis_polls) {
  engine::DatabaseOptions opts;
  opts.physical_memory_bytes = 96 * kMB;
  opts.initial_pool_frames = 1024;
  opts.pool_governor.min_bytes = 1 * kMB;
  opts.pool_governor.max_bytes = 48 * kMB;
  opts.pool_governor.damping = damping;
  opts.pool_governor.hysteresis_polls = hysteresis_polls;
  opts.pool_governor.hysteresis_growth_cap = 0.4;
  BenchDb db(opts);

  db.Exec("CREATE TABLE t (k INT, pad VARCHAR(200))");
  std::vector<table::Row> rows;
  for (int i = 0; i < 200000; ++i) {
    rows.push_back(
        {Value::Int(i % 1000), Value::String(std::string(180, 'p'))});
  }
  db.Load("t", rows);

  Outcome out;
  uint64_t prev = db.db->pool().CurrentBytes();
  int last_dir = 0;
  for (int poll = 0; poll < 40; ++poll) {
    // Cyclic external pressure: a 70 MB app that appears and disappears
    // every other polling period.
    if (poll % 2 == 0) {
      db.db->memory_env().SetAllocation("cyclic-app", 70 * kMB);
    } else {
      db.db->memory_env().RemoveProcess("cyclic-app");
    }
    db.Exec("SELECT COUNT(*) FROM t WHERE k < 400");  // keep misses coming
    db.db->Tick(61 * 1000 * 1000);
    const uint64_t now = db.db->pool().CurrentBytes();
    if (now != prev) {
      out.churn_mb += std::abs(static_cast<double>(now) -
                               static_cast<double>(prev)) /
                      double(kMB);
      const int dir = now > prev ? 1 : -1;
      if (last_dir != 0 && dir != last_dir) out.flips++;
      last_dir = dir;
    }
    prev = now;
  }
  out.final_mb = static_cast<double>(prev) / double(kMB);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "=== §2 Eq.(2) damping + §6 anti-hysteresis ablation ===\n"
      "cyclic 70MB competing app toggling every poll, 40 polls\n\n");
  PrintHeader({"config", "churn_MB", "dir_flips", "final_MB"});
  const Outcome undamped = RunTrace(1.0, 0);
  const Outcome damped = RunTrace(0.9, 0);
  const Outcome guarded = RunTrace(0.9, 3);
  PrintRow({"undamped", Fmt(undamped.churn_mb), std::to_string(undamped.flips),
            Fmt(undamped.final_mb)});
  PrintRow({"damped(0.9)", Fmt(damped.churn_mb), std::to_string(damped.flips),
            Fmt(damped.final_mb)});
  PrintRow({"damped+guard", Fmt(guarded.churn_mb),
            std::to_string(guarded.flips), Fmt(guarded.final_mb)});
  std::printf(
      "\nreading: resize churn is pool memory moved (allocated+freed); the\n"
      "guard caps re-growth right after a shrink, trading responsiveness\n"
      "for stability under oscillating load (the §6 research item).\n");
  return 0;
}
