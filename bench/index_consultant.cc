// §5: Application Profiling and the Index Consultant.
//
// A traced workload exhibits (a) a client-side join anti-pattern and
// (b) repeated selective filters on an unindexed column. The analyzer
// must flag (a); the consultant must recommend an index for (b) via the
// optimizer's own virtual-index requests, with what-if costing showing
// the workload getting cheaper; and applying the recommendation must
// actually reduce the workload's measured cost.
#include <cstdio>

#include "profile/analyzer.h"
#include "profile/index_consultant.h"
#include "profile/tracer.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

int main() {
  BenchDb db;
  db.Exec(
      "CREATE TABLE orders (id INT NOT NULL, customer INT, total DOUBLE)");
  std::vector<table::Row> rows;
  Rng rng(13);
  for (int i = 0; i < 30000; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(800))),
                    Value::Double(rng.NextDouble() * 1000)});
  }
  db.Load("orders", rows);

  // Trace a workload with the client-side join pattern.
  profile::RequestTracer tracer;
  if (!tracer.Attach(db.db.get(), nullptr).ok()) std::abort();
  std::vector<std::string> select_workload;
  for (int i = 0; i < 25; ++i) {
    const std::string q = "SELECT total FROM orders WHERE customer = " +
                          std::to_string(i * 13);
    select_workload.push_back(q);
    db.Exec(q);
  }
  tracer.Detach();

  std::printf("=== §5 Application Profiling findings ===\n");
  profile::WorkloadAnalyzer analyzer;
  for (const auto& f : analyzer.Analyze(tracer.events(), db.db.get())) {
    const char* kind =
        f.kind == profile::FindingKind::kClientSideJoin ? "client-side-join"
        : f.kind == profile::FindingKind::kExpensiveScan ? "expensive-scan"
                                                         : "option";
    std::printf("[%s] x%llu: %s\n", kind,
                static_cast<unsigned long long>(f.occurrences),
                f.message.c_str());
  }

  std::printf("\n=== §5 Index Consultant ===\n");
  profile::IndexConsultant consultant(db.db.get());
  auto analysis = consultant.Analyze(select_workload);
  if (!analysis.ok()) std::abort();
  PrintHeader({"metric", "value"});
  PrintRow({"workload_cost", Fmt(analysis->workload_cost_before, 0)});
  PrintRow({"what_if_cost", Fmt(analysis->workload_cost_after, 0)});
  PrintRow({"predicted_gain",
            Fmt(100.0 * (1 - analysis->workload_cost_after /
                                 analysis->workload_cost_before)) + "%"});
  std::printf("\nrecommendations:\n");
  for (const auto& rec : analysis->recommendations) {
    if (rec.kind == profile::Recommendation::Kind::kCreateIndex) {
      std::printf("  %s   (benefit ~%.0fus over %d requests)\n",
                  rec.ddl.c_str(), rec.benefit_micros, rec.requests);
    } else {
      std::printf("  %s   (never used by any plan)\n", rec.ddl.c_str());
    }
  }

  // Apply the top recommendation and re-cost the workload for real.
  if (!analysis->recommendations.empty() &&
      analysis->recommendations[0].kind ==
          profile::Recommendation::Kind::kCreateIndex) {
    db.Exec(analysis->recommendations[0].ddl);
    double after = 0;
    for (const auto& sql : select_workload) {
      auto r = db.Exec(sql);
      after += r.diag.enumeration.best_cost;
    }
    std::printf(
        "\nafter applying the recommendation, the optimizer's workload "
        "cost is %.0f (was %.0f): %.1fx cheaper\n",
        after, analysis->workload_cost_before,
        analysis->workload_cost_before / std::max(after, 1.0));
  }
  return 0;
}
