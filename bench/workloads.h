#ifndef HDB_BENCH_WORKLOADS_H_
#define HDB_BENCH_WORKLOADS_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"

namespace hdb::bench {

/// An opened database plus one connection, with EXPECT-free error handling
/// (benches abort loudly on failure).
struct BenchDb {
  explicit BenchDb(engine::DatabaseOptions opts = {});

  engine::QueryResult Exec(const std::string& sql);
  void Load(const std::string& table, const std::vector<table::Row>& rows);

  std::unique_ptr<engine::Database> db;
  std::unique_ptr<engine::Connection> conn;
};

/// Loads a star schema: one `fact` table with `fact_rows` rows and
/// `dims` dimension tables `dim0..` of `dim_rows` rows each; fact column
/// `dK` joins dimK.id. Fact also has a `v` measure column. Declares FKs
/// and builds statistics.
void LoadStarSchema(BenchDb& db, int dims, int fact_rows, int dim_rows,
                    uint64_t seed = 42);

/// Loads `n` rows of a single-column Zipf-distributed INT table `name`.
void LoadZipfTable(BenchDb& db, const std::string& name, int n, int domain,
                   double theta, uint64_t seed = 7);

/// printf-style row helpers for aligned bench tables.
void PrintHeader(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double v, int precision = 1);

}  // namespace hdb::bench

#endif  // HDB_BENCH_WORKLOADS_H_
