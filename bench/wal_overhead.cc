// WAL commit overhead: N session threads each run small committed INSERT
// transactions against one durable Database, in three configurations —
// no WAL (HDB_WAL=OFF), WAL with per-commit fsync (group_commit off), and
// WAL with group commit. Reports commit throughput in *modeled* time
// (wall CPU + the rotational device's accrued service time, the repo's
// standard VirtualDisk accounting — service times are returned, not
// slept), because the cost group commit amortizes is the device's fsync.
// Writes BENCH_wal.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "os/stable_storage.h"
#include "wal/wal_manager.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

enum class Mode { kNoWal, kSingleFsync, kGroupCommit };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kNoWal: return "wal_off";
    case Mode::kSingleFsync: return "single_fsync";
    case Mode::kGroupCommit: return "group_commit";
  }
  return "?";
}

struct RunResult {
  int threads = 0;
  uint64_t commits = 0;
  double wall_seconds = 0;
  double device_seconds = 0;  // accrued VirtualDisk service time
  double modeled_seconds = 0;
  double throughput = 0;  // commits / modeled second
  uint64_t media_syncs = 0;
  uint64_t wal_group_batches = 0;
  uint64_t wal_appends = 0;
};

/// Committed transactions per session thread (fixed work, not a deadline,
/// so the modeled-time comparison across modes is apples to apples).
constexpr int kTxnsPerThread = 64;

engine::DatabaseOptions MakeOptions(std::shared_ptr<os::StableStorage> media,
                                    Mode mode) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 128;
  opts.media = std::move(media);
  opts.wal.group_commit = (mode == Mode::kGroupCommit);
  // The rotational device charges ~half a rotation per fsync — the cost
  // under comparison. Pin the MPL so admission never throttles a mode
  // differently from another.
  opts.device = engine::DeviceKind::kRotational;
  opts.memory_governor.multiprogramming_level = 16;
  opts.mpl_controller.min_mpl = 16;
  opts.mpl_controller.max_mpl = 16;
  return opts;
}

RunResult RunCommits(int threads, Mode mode) {
  auto media = std::make_shared<os::StableStorage>(
      engine::DatabaseOptions{}.page_bytes);
  // The no-WAL baseline goes through the documented switch so the bench
  // exercises the same path an operator would use.
  if (mode == Mode::kNoWal) setenv("HDB_WAL", "OFF", 1);
  BenchDb db(MakeOptions(media, mode));
  if (mode == Mode::kNoWal) unsetenv("HDB_WAL");

  db.Exec("CREATE TABLE t (k INT NOT NULL, v INT)");

  const double io_before = db.db->disk().io_micros();
  const uint64_t syncs_before = media->sync_count();
  const wal::WalStats wal_before = db.db->wal().stats();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto conn = db.db->Connect();
      if (!conn.ok()) std::abort();
      engine::Connection* c = conn->get();
      const int base = 100'000 * (t + 1);  // disjoint key space
      for (int i = 0; i < kTxnsPerThread; ++i) {
        for (const std::string& sql :
             {std::string("BEGIN"),
              "INSERT INTO t VALUES (" + std::to_string(base + i) + ", " +
                  std::to_string(i) + ")",
              std::string("COMMIT")}) {
          auto r = c->Execute(sql);
          if (!r.ok()) {
            std::fprintf(stderr, "hard failure: %s -> %s\n", sql.c_str(),
                         r.status().ToString().c_str());
            std::abort();
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult res;
  res.threads = threads;
  res.commits = static_cast<uint64_t>(threads) * kTxnsPerThread;
  res.wall_seconds =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1e6;
  res.device_seconds = (db.db->disk().io_micros() - io_before) / 1e6;
  res.modeled_seconds = res.wall_seconds + res.device_seconds;
  res.throughput = res.commits / res.modeled_seconds;
  res.media_syncs = media->sync_count() - syncs_before;
  const wal::WalStats wal_after = db.db->wal().stats();
  res.wal_group_batches = wal_after.group_batches - wal_before.group_batches;
  res.wal_appends = wal_after.appends - wal_before.appends;
  return res;
}

void PrintMode(Mode mode, const std::vector<RunResult>& runs) {
  std::printf("\n=== %s ===\n", ModeName(mode));
  PrintHeader({"threads", "commits", "wall_s", "dev_s", "modeled_s",
               "commit_per_s", "fsyncs", "batches"});
  for (const auto& r : runs) {
    PrintRow({std::to_string(r.threads), std::to_string(r.commits),
              Fmt(r.wall_seconds, 3), Fmt(r.device_seconds, 3),
              Fmt(r.modeled_seconds, 3), Fmt(r.throughput, 0),
              std::to_string(r.media_syncs),
              std::to_string(r.wal_group_batches)});
  }
}

void WriteModeJson(std::FILE* f, Mode mode,
                   const std::vector<RunResult>& runs, bool last) {
  std::fprintf(f, "  \"%s\": [\n", ModeName(mode));
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"commits\": %llu, \"wall_seconds\": %.4f, "
        "\"device_seconds\": %.4f, \"modeled_seconds\": %.4f, "
        "\"commits_per_second\": %.1f, \"fsyncs\": %llu, "
        "\"group_batches\": %llu, \"wal_appends\": %llu}%s\n",
        r.threads, static_cast<unsigned long long>(r.commits), r.wall_seconds,
        r.device_seconds, r.modeled_seconds, r.throughput,
        static_cast<unsigned long long>(r.media_syncs),
        static_cast<unsigned long long>(r.wal_group_batches),
        static_cast<unsigned long long>(r.wal_appends),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  std::printf("WAL commit overhead: %d committed single-row INSERT txns per "
              "session, rotational device fsync model\n",
              kTxnsPerThread);

  std::vector<std::vector<RunResult>> all;
  const Mode modes[] = {Mode::kNoWal, Mode::kSingleFsync, Mode::kGroupCommit};
  for (const Mode mode : modes) {
    std::vector<RunResult> runs;
    for (const int n : {1, 2, 4, 8}) runs.push_back(RunCommits(n, mode));
    PrintMode(mode, runs);
    all.push_back(std::move(runs));
  }

  const RunResult& single8 = all[1].back();
  const RunResult& group8 = all[2].back();
  const double speedup = group8.throughput / single8.throughput;
  std::printf("\ngroup commit vs single-fsync at 8 sessions: %.2fx "
              "(%llu fsyncs vs %llu)\n",
              speedup, static_cast<unsigned long long>(group8.media_syncs),
              static_cast<unsigned long long>(single8.media_syncs));

  std::FILE* f = std::fopen("BENCH_wal.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"txns_per_thread\": %d,\n", kTxnsPerThread);
    for (size_t m = 0; m < 3; ++m) {
      WriteModeJson(f, modes[m], all[m], /*last=*/false);
    }
    std::fprintf(f, "  \"group_vs_single_fsync_8_sessions\": %.3f\n}\n",
                 speedup);
    std::fclose(f);
    std::printf("wrote BENCH_wal.json\n");
  }
  return 0;
}
