// §4.3: hash group by's low-memory fallback.
//
// "The low-memory fallback for hash group by uses a temporary table
// containing partially computed groups..." — this bench sweeps the group
// count against a fixed (small) soft memory limit and shows graceful
// degradation: once the group state exceeds the quota, partials spill and
// merge, results stay correct, and the cost grows smoothly rather than
// the statement failing.
#include <chrono>
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {
double NowMs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}
}  // namespace

int main() {
  std::printf("=== §4.3 hash group by low-memory fallback ===\n");
  PrintHeader({"groups", "soft_pages", "fallback", "spill_evts", "groups_out",
               "correct", "ms"});
  constexpr int kRows = 40000;
  for (const int groups : {16, 1000, 8000, 40000}) {
    engine::DatabaseOptions opts;
    opts.initial_pool_frames = 512;
    opts.memory_governor.multiprogramming_level = 64;  // soft = 8 pages
    BenchDb db(opts);
    db.Exec("CREATE TABLE t (g INT, v INT)");
    std::vector<table::Row> rows;
    for (int i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(i % groups), Value::Int(1)});
    }
    db.Load("t", rows);
    const double t0 = NowMs();
    auto r = db.Exec("SELECT g, COUNT(*) FROM t GROUP BY g");
    const double ms = NowMs() - t0;
    bool correct = r.rows.size() == static_cast<size_t>(groups);
    for (const auto& row : r.rows) {
      if (row[1].AsInt() != kRows / groups) correct = false;
    }
    PrintRow({std::to_string(groups),
              std::to_string(db.db->memory_governor().SoftLimitPages()),
              r.exec_stats.group_by_used_fallback ? "yes" : "no",
              std::to_string(r.exec_stats.group_by_spilled_groups),
              std::to_string(r.rows.size()), correct ? "yes" : "NO",
              Fmt(ms)});
  }
  return 0;
}
