// §3: self-managing statistics accuracy and convergence.
//
// A Zipf-skewed column is loaded, then the data drifts (bulk inserts the
// statistics only see as per-row DML). Rounds of query execution feed the
// histogram through the feedback pipeline; after each round the bench
// reports the mean relative estimation error of equality and range
// predicates. Expected shape: error drops monotonically toward a small
// floor as feedback accrues — the paper's "statistics as a side effect of
// query execution".
#include <cmath>
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

double RelErr(double est, double truth) {
  const double denom = std::max(truth, 1e-4);
  return std::abs(est - truth) / denom;
}

}  // namespace

int main() {
  BenchDb db;
  constexpr int kRows = 20000;
  constexpr int kDomain = 500;
  LoadZipfTable(db, "t", kRows, kDomain, 1.1, 7);
  const uint32_t oid = (*db.db->catalog().GetTable("t"))->oid;

  // Ground truth counts.
  std::vector<int64_t> truth(kDomain, 0);
  {
    auto r = db.Exec("SELECT k, COUNT(*) FROM t GROUP BY k");
    for (const auto& row : r.rows) truth[row[0].AsInt()] = row[1].AsInt();
  }

  // Drift: a burst of inserts concentrated on a band of mid-popularity
  // values (plain DML; the histogram sees inserts but bucket shapes lag).
  int64_t total = kRows;
  for (int i = 0; i < 60; ++i) {
    const int v = 100 + (i % 20);
    db.Exec("INSERT INTO t VALUES (" + std::to_string(v) + ", 0), (" +
            std::to_string(v) + ", 0), (" + std::to_string(v) + ", 0)");
    truth[v] += 3;
    total += 3;
  }

  auto eq_error = [&]() {
    double err = 0;
    int n = 0;
    for (const int v : {0, 1, 5, 50, 100, 105, 110, 115, 200, 400}) {
      const double est =
          db.db->stats().SelEquals(oid, 0, Value::Int(v));
      err += RelErr(est, static_cast<double>(truth[v]) / total);
      ++n;
    }
    return err / n;
  };
  auto range_error = [&]() {
    double err = 0;
    int n = 0;
    for (const int lo : {0, 50, 100, 250}) {
      const int hi = lo + 49;
      int64_t t = 0;
      for (int v = lo; v <= hi; ++v) t += truth[v];
      const Value vlo = Value::Int(lo), vhi = Value::Int(hi);
      const double est =
          db.db->stats().SelRange(oid, 0, &vlo, true, &vhi, true);
      err += RelErr(est, static_cast<double>(t) / total);
      ++n;
    }
    return err / n;
  };

  std::printf(
      "=== §3 histogram accuracy under execution feedback (Zipf 1.1 + "
      "drift) ===\n");
  PrintHeader({"round", "eq_err", "range_err", "singletons"});
  auto singles = [&]() {
    const auto* cs = db.db->stats().Get(oid, 0);
    return cs != nullptr && cs->histogram != nullptr
               ? cs->histogram->singleton_count()
               : 0;
  };
  PrintRow({"0 (drifted)", Fmt(eq_error(), 3), Fmt(range_error(), 3),
            std::to_string(singles())});

  Rng rng(5);
  for (int round = 1; round <= 6; ++round) {
    // A round of query traffic: equality and range predicates whose
    // evaluations feed back into the histograms.
    for (int q = 0; q < 20; ++q) {
      const int v = static_cast<int>(rng.Uniform(450));
      db.Exec("SELECT COUNT(*) FROM t WHERE k = " + std::to_string(v));
      const int lo = static_cast<int>(rng.Uniform(kDomain - 60));
      db.Exec("SELECT COUNT(*) FROM t WHERE k BETWEEN " +
              std::to_string(lo) + " AND " + std::to_string(lo + 49));
    }
    PrintRow({std::to_string(round), Fmt(eq_error(), 3),
              Fmt(range_error(), 3), std::to_string(singles())});
  }
  return 0;
}
