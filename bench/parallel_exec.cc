// §4.4 / EXPERIMENTS C5: morsel-driven intra-query parallelism through the
// full SQL path. One Database per worker setting (parallel.max_workers =
// 1/2/4/8) runs the same hash-join and hash-group-by queries; the bench
// reports wall time, speedup vs serial, and the exec.parallel.* mechanism
// counters, and verifies the result set is identical at every width.
// Writes BENCH_parallel.json (path from argv[1], default cwd).
//
// On a small host the speedup column is bounded by the core count — the
// committed baseline is a MECHANISM-correctness record (pipelines ran,
// morsels were dispatched FCFS, workers folded identical results), not a
// throughput claim; see EXPERIMENTS.md C5.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

struct QueryRun {
  int max_workers = 0;
  double wall_ms = 0;
  uint64_t rows = 0;
  uint64_t checksum = 0;  // order-independent content hash of the result
  uint64_t pipelines = 0;
  uint64_t workers_started = 0;
  uint64_t workers_revoked = 0;
  uint64_t morsels = 0;
};

uint64_t RowsChecksum(const std::vector<std::vector<Value>>& rows) {
  uint64_t sum = 0;
  for (const auto& row : rows) {
    uint64_t h = 1469598103934665603ull;
    for (const auto& v : row) h = (h ^ v.Hash()) * 1099511628211ull;
    sum += h;  // commutative: packet arrival order must not matter
  }
  return sum;
}

engine::DatabaseOptions MakeOptions(int max_workers) {
  engine::DatabaseOptions opts;
  opts.parallel.max_workers = max_workers;
  // Low per-worker row target so every width actually launches its full
  // crew on the bench tables.
  opts.parallel.rows_per_worker = 4096;
  return opts;
}

void LoadData(BenchDb& db) {
  constexpr int kProbeRows = 300000;
  db.Exec("CREATE TABLE probe (k INT NOT NULL, g INT NOT NULL, v INT)");
  db.Exec("CREATE TABLE dim (k INT NOT NULL, tag INT)");
  Rng rng(17);
  std::vector<table::Row> rows;
  rows.reserve(kProbeRows);
  for (int i = 0; i < kProbeRows; ++i) {
    rows.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(4000))),
                    Value::Int(static_cast<int32_t>(rng.Uniform(64))),
                    Value::Int(static_cast<int32_t>(rng.Uniform(1000)))});
  }
  db.Load("probe", rows);
  std::vector<table::Row> dim;
  for (int i = 0; i < 3000; ++i) {
    dim.push_back({Value::Int(i), Value::Int(i % 7)});
  }
  db.Load("dim", dim);
}

QueryRun RunOne(int max_workers, const std::string& sql) {
  BenchDb db(MakeOptions(max_workers));
  LoadData(db);
  // Warm the pool so every width measures the same (cached) I/O.
  db.Exec(sql);
  const auto start = std::chrono::steady_clock::now();
  auto r = db.Exec(sql);
  const auto end = std::chrono::steady_clock::now();
  QueryRun out;
  out.max_workers = max_workers;
  out.wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    end - start)
                    .count() /
                1000.0;
  out.rows = r.rows.size();
  out.checksum = RowsChecksum(r.rows);
  out.pipelines = r.exec_stats.parallel_pipelines;
  out.workers_started = r.exec_stats.parallel_workers_started;
  out.workers_revoked = r.exec_stats.parallel_workers_revoked;
  out.morsels = r.exec_stats.parallel_morsels;
  return out;
}

std::vector<QueryRun> Sweep(const char* title, const std::string& sql) {
  std::printf("\n=== %s ===\n%s\n", title, sql.c_str());
  PrintHeader({"workers", "wall_ms", "speedup", "rows", "pipelines",
               "started", "morsels", "identical"});
  std::vector<QueryRun> runs;
  for (const int w : {1, 2, 4, 8}) runs.push_back(RunOne(w, sql));
  const QueryRun& base = runs.front();
  for (const auto& r : runs) {
    const bool same = r.rows == base.rows && r.checksum == base.checksum;
    PrintRow({std::to_string(r.max_workers), Fmt(r.wall_ms),
              Fmt(base.wall_ms / std::max(r.wall_ms, 1e-9), 2),
              std::to_string(r.rows), std::to_string(r.pipelines),
              std::to_string(r.workers_started), std::to_string(r.morsels),
              same ? "yes" : "NO"});
    if (!same) {
      std::fprintf(stderr, "RESULT MISMATCH at %d workers\n", r.max_workers);
      std::abort();
    }
  }
  // The serial run must never have paid for exchange machinery, and every
  // parallel run must actually have gone through it.
  if (base.pipelines != 0) {
    std::fprintf(stderr, "serial run built a parallel pipeline\n");
    std::abort();
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].pipelines == 0 || runs[i].workers_started < 2) {
      std::fprintf(stderr, "no parallel pipeline at %d workers\n",
                   runs[i].max_workers);
      std::abort();
    }
  }
  return runs;
}

void WriteSweepJson(std::FILE* f, const char* key,
                    const std::vector<QueryRun>& runs) {
  const double base = runs.front().wall_ms;
  std::fprintf(f, "  \"%s\": [\n", key);
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f,
                 "    {\"max_workers\": %d, \"wall_ms\": %.2f, "
                 "\"speedup_vs_serial\": %.3f, \"rows\": %llu, "
                 "\"result_identical\": true, \"pipelines\": %llu, "
                 "\"workers_started\": %llu, \"workers_revoked\": %llu, "
                 "\"morsels\": %llu}%s\n",
                 r.max_workers, r.wall_ms, base / std::max(r.wall_ms, 1e-9),
                 static_cast<unsigned long long>(r.rows),
                 static_cast<unsigned long long>(r.pipelines),
                 static_cast<unsigned long long>(r.workers_started),
                 static_cast<unsigned long long>(r.workers_revoked),
                 static_cast<unsigned long long>(r.morsels),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("parallel exec scaling, host cores: %u\n"
              "(speedup is bounded by the host; identical results, FCFS\n"
              "morsel dispatch and crew startup/fold are the mechanism "
              "checks)\n",
              std::thread::hardware_concurrency());

  const auto join = Sweep(
      "hash join (probe 300k x dim 3k)",
      "SELECT COUNT(*), SUM(probe.v) FROM probe, dim "
      "WHERE probe.k = dim.k AND dim.tag < 5");
  const auto group = Sweep(
      "hash group by (300k rows, 64 groups)",
      "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM probe "
      "GROUP BY g ORDER BY g");

  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_parallel.json");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "parallel_exec: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"note\": \"mechanism-correctness baseline: speedup is "
                  "bounded by host cores (EXPERIMENTS.md C5); the gated "
                  "invariants are identical results at every width, zero "
                  "serial overhead, and morsel/crew counters > 0\",\n");
  WriteSweepJson(f, "hash_join", join);
  std::fprintf(f, ",\n");
  WriteSweepJson(f, "hash_group_by", group);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
