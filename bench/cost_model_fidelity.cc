// Eq. (3) / §4.2: the cost model's contract is *ordering fidelity* —
// CostE(P1) > CostE(P2) iff CostA(P1) > CostA(P2).
//
// For a selectivity sweep over two physical layouts — `clu` (rows stored
// in key order: index fetches are nearly sequential) and `rnd` (random
// key placement: every index fetch is a seek) — this bench costs the two
// access plans for `k < X` and then executes both against the virtual
// rotational disk, measuring actual simulated device time + CPU. The
// interesting content is the crossover: on the clustered table the index
// should win at low selectivity and lose to the sequential scan past the
// crossover; on the random table the scan should win much earlier. The
// `agree` column checks that the estimate ordering matches the actual
// ordering (Eq. (3)).
#include <cstdio>

#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

constexpr int kRows = 60000;
constexpr int kDomain = 60000;

void FlushPool(BenchDb& db) {
  db.db->pool().Resize(64);
  db.db->pool().Resize(4096);
}

double ActualCost(BenchDb& db, const optimizer::PlanNode* plan) {
  FlushPool(db);
  db.db->disk().ResetIoStats();
  exec::ExecContext ec;
  ec.pool = &db.db->pool();
  ec.table_heap = [&db](uint32_t oid) { return db.db->heap(oid); };
  ec.index = [&db](uint32_t oid) { return db.db->btree(oid); };
  ec.num_quantifiers = 1;
  auto rows = exec::ExecuteToRows(plan, &ec);
  if (!rows.ok()) std::abort();
  return db.db->disk().io_micros() + 0.5 * ec.stats.rows_scanned;
}

void RunSweep(BenchDb& db, const char* label, const std::string& table_name,
              const std::string& index_name) {
  auto* table = *db.db->catalog().GetTable(table_name);
  auto* index = *db.db->catalog().GetIndex(index_name);
  optimizer::CostModel model(&db.db->catalog().dtt_model(), &db.db->pool(),
                             db.db->IndexStatsProvider());
  std::printf("\n-- %s (index clustering = %.2f) --\n", label,
              db.db->index_stats(index->oid)->clustering_fraction());
  PrintHeader({"sel_%", "est_seq", "est_idx", "act_seq", "act_idx",
               "est_pick", "act_pick", "agree"});
  int agreements = 0, total = 0;
  for (const double sel : {0.0002, 0.001, 0.01, 0.05, 0.2, 0.6}) {
    const auto cutoff = static_cast<int32_t>(sel * kDomain);
    const auto pred = optimizer::Expr::Compare(
        optimizer::CompareOp::kLt,
        optimizer::Expr::Column(0, 0, TypeId::kInt, "k"),
        optimizer::Expr::Literal(Value::Int(cutoff)));

    optimizer::PlanNode seq;
    seq.kind = optimizer::PlanKind::kSeqScan;
    seq.quantifier = 0;
    seq.table = table;
    seq.residual = pred;

    optimizer::PlanNode idx;
    idx.kind = optimizer::PlanKind::kIndexScan;
    idx.quantifier = 0;
    idx.table = table;
    idx.index = index;
    idx.index_hi = static_cast<double>(cutoff);
    idx.index_hi_inclusive = false;
    idx.residual = pred;

    FlushPool(db);  // estimates see the same cold pool as executions
    const double est_seq = model.SeqScanCost(*table, 1);
    const double est_idx =
        model.IndexScanCost(*table, index->oid, sel, /*pool=*/2048);
    const double act_seq = ActualCost(db, &seq);
    const double act_idx = ActualCost(db, &idx);

    const char* est_pick = est_seq < est_idx ? "seq" : "idx";
    const char* act_pick = act_seq < act_idx ? "seq" : "idx";
    const bool agree = std::string(est_pick) == act_pick;
    agreements += agree;
    ++total;
    PrintRow({Fmt(sel * 100, 2), Fmt(est_seq, 0), Fmt(est_idx, 0),
              Fmt(act_seq, 0), Fmt(act_idx, 0), est_pick, act_pick,
              agree ? "yes" : "NO"});
  }
  std::printf("ordering agreement: %d/%d\n", agreements, total);
}

}  // namespace

int main() {
  engine::DatabaseOptions opts;
  opts.device = engine::DeviceKind::kRotational;
  opts.initial_pool_frames = 4096;
  BenchDb db(opts);

  // Clustered layout: rows inserted in key order.
  db.Exec("CREATE TABLE clu (k INT NOT NULL, v INT)");
  {
    std::vector<table::Row> rows;
    for (int i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i)});
    }
    db.Load("clu", rows);
  }
  db.Exec("CREATE INDEX clu_k ON clu (k)");

  // Random layout: same keys, shuffled storage order.
  db.Exec("CREATE TABLE rnd (k INT NOT NULL, v INT)");
  {
    std::vector<int> keys(kRows);
    for (int i = 0; i < kRows; ++i) keys[i] = i;
    Rng rng(3);
    for (int i = kRows - 1; i > 0; --i) {
      std::swap(keys[i], keys[rng.Uniform(i + 1)]);
    }
    std::vector<table::Row> rows;
    for (int i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(keys[i]), Value::Int(i)});
    }
    db.Load("rnd", rows);
  }
  db.Exec("CREATE INDEX rnd_k ON rnd (k)");
  db.Exec("CALIBRATE DATABASE");

  std::printf("=== Eq.(3): estimated vs actual plan ordering ===\n");
  RunSweep(db, "clustered table", "clu", "clu_k");
  RunSweep(db, "randomly-placed table", "rnd", "rnd_k");
  return 0;
}
