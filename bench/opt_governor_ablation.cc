// §4.1: the optimizer governor's value. "A problem with traversing the
// search tree using branch-and-bound with early halting is that the
// search effort is not well-distributed over the entire search space."
//
// Three search-control policies optimize the same 12-table join at a
// sweep of effort quotas:
//   naive      - plain DFS that stops after N node visits (no spreading)
//   governor-r - quota halving per child, but no 20% redistribution
//   governor   - the full paper mechanism
// Reported: estimated cost of the best plan found (lower is better) and
// visits actually used. The governor should dominate at small quotas.
#include <cstdio>

#include "engine/binder.h"
#include "optimizer/optimizer.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

int main() {
  BenchDb db;
  // A star query crafted so that the promise heuristic (rank by output
  // cardinality) is misleading: half the dimensions are huge tables whose
  // selective local predicates make them *look* attractive early, while
  // the cheap tiny dimensions look unattractive. Join-order and
  // join-method choices interact, so the greedy-first plan is not optimal
  // and additional, well-distributed search pays off.
  constexpr int kDims = 11;
  Rng rng(9);
  std::string hub_cols = "id INT NOT NULL";
  for (int d = 0; d < kDims; ++d) hub_cols += ", c" + std::to_string(d) + " INT";
  db.Exec("CREATE TABLE hub (" + hub_cols + ")");
  {
    std::vector<table::Row> rows;
    for (int i = 0; i < 3000; ++i) {
      table::Row row = {Value::Int(i)};
      for (int d = 0; d < kDims; ++d) {
        const int domain = (d % 2 == 0) ? 200 : 40000;
        row.push_back(Value::Int(static_cast<int32_t>(rng.Uniform(domain))));
      }
      rows.push_back(std::move(row));
    }
    db.Load("hub", rows);
  }
  for (int d = 0; d < kDims; ++d) {
    const std::string name = "t" + std::to_string(d);
    db.Exec("CREATE TABLE " + name + " (a INT NOT NULL, f INT)");
    const int rows_n = (d % 2 == 0) ? 200 : 40000;
    std::vector<table::Row> data;
    for (int i = 0; i < rows_n; ++i) {
      data.push_back({Value::Int(i),
                      Value::Int(static_cast<int32_t>(rng.Uniform(1000)))});
    }
    db.Load(name, data);
  }
  std::string sql = "SELECT COUNT(*) FROM hub";
  for (int d = 0; d < kDims; ++d) sql += ", t" + std::to_string(d);
  sql += " WHERE ";
  for (int d = 0; d < kDims; ++d) {
    if (d > 0) sql += " AND ";
    sql += "hub.c" + std::to_string(d) + " = t" + std::to_string(d) + ".a";
  }
  // Selective predicates on the big dimensions.
  for (int d = 1; d < kDims; d += 2) {
    sql += " AND t" + std::to_string(d) + ".f < " + std::to_string(2 + d);
  }

  auto stmt = engine::Parse(sql);
  engine::Binder binder(&db.db->catalog());
  auto query = binder.BindSelect(std::get<engine::SelectAst>(*stmt));
  if (!query.ok()) std::abort();

  bool adversarial = false;
  auto run = [&](uint64_t quota, bool distribute, double redistribute) {
    optimizer::OptimizerContext ctx;
    ctx.catalog = &db.db->catalog();
    ctx.stats = &db.db->stats();
    ctx.pool = &db.db->pool();
    ctx.index_stats = db.db->IndexStatsProvider();
    ctx.governor.initial_quota = quota;
    ctx.governor.distribute = distribute;
    ctx.governor.redistribute_improvement = redistribute;
    ctx.invert_promise_order = adversarial;
    optimizer::Optimizer opt(ctx);
    optimizer::OptimizeDiagnostics diag;
    auto plan = opt.Optimize(*query, false, &diag);
    if (!plan.ok()) std::abort();
    return diag.enumeration;
  };

  std::printf("=== §4.1 optimizer governor ablation (12-way star join) ===\n");
  for (const bool adv : {false, true}) {
  adversarial = adv;
  std::printf("\n-- %s candidate ranking --\n",
              adv ? "ADVERSARIAL (worst-case heuristic)" : "accurate");
  PrintHeader({"quota", "policy", "best_cost", "visits", "plans", "prefixes"});
  for (const uint64_t quota : {300ull, 1000ull, 3000ull, 10000ull,
                               50000ull}) {
    const auto naive = run(quota, /*distribute=*/false, 2.0);
    const auto no_redist = run(quota, true, 2.0);
    const auto full = run(quota, true, 0.20);
    PrintRow({std::to_string(quota), "naive-dfs", Fmt(naive.best_cost, 0),
              std::to_string(naive.nodes_visited),
              std::to_string(naive.plans_completed),
              std::to_string(naive.distinct_prefixes)});
    PrintRow({std::to_string(quota), "governor-r",
              Fmt(no_redist.best_cost, 0),
              std::to_string(no_redist.nodes_visited),
              std::to_string(no_redist.plans_completed),
              std::to_string(no_redist.distinct_prefixes)});
    PrintRow({std::to_string(quota), "governor", Fmt(full.best_cost, 0),
              std::to_string(full.nodes_visited),
              std::to_string(full.plans_completed),
              std::to_string(full.distinct_prefixes)});
  }
  }
  std::printf(
      "\nreading: `prefixes` counts distinct 2-table join prefixes among\n"
      "completed plans. Naive early-halting burns its whole budget in one\n"
      "corner of the space (prefixes ~1-2); the governor spreads effort\n"
      "across dissimilar regions, the paper's §4.1 argument. When the\n"
      "ranking heuristic is accurate (as here) the corner already contains\n"
      "near-optimal plans, so best_cost differences stay small — the\n"
      "governor's value is robustness when the heuristic misleads, at\n"
      "bounded optimization effort.\n");
  return 0;
}
