#include "workloads.h"

#include <cstdlib>

#include "common/rng.h"

namespace hdb::bench {

BenchDb::BenchDb(engine::DatabaseOptions opts) {
  auto opened = engine::Database::Open(opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  db = std::move(*opened);
  auto c = db->Connect();
  if (!c.ok()) std::abort();
  conn = std::move(*c);
}

engine::QueryResult BenchDb::Exec(const std::string& sql) {
  auto r = conn->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "statement failed: %s\n  %s\n", sql.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return *r;
}

void BenchDb::Load(const std::string& table,
                   const std::vector<table::Row>& rows) {
  const Status s = db->LoadTable(table, rows);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

void LoadStarSchema(BenchDb& db, int dims, int fact_rows, int dim_rows,
                    uint64_t seed) {
  std::string fact_cols = "id INT NOT NULL, v DOUBLE";
  for (int d = 0; d < dims; ++d) {
    fact_cols += ", d" + std::to_string(d) + " INT";
  }
  db.Exec("CREATE TABLE fact (" + fact_cols + ")");
  for (int d = 0; d < dims; ++d) {
    const std::string t = "dim" + std::to_string(d);
    db.Exec("CREATE TABLE " + t + " (id INT NOT NULL, attr INT)");
    std::vector<table::Row> rows;
    for (int i = 0; i < dim_rows; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i % 10)});
    }
    db.Load(t, rows);
  }
  Rng rng(seed);
  std::vector<table::Row> fact;
  fact.reserve(fact_rows);
  for (int i = 0; i < fact_rows; ++i) {
    table::Row row = {Value::Int(i), Value::Double(rng.NextDouble() * 100)};
    for (int d = 0; d < dims; ++d) {
      row.push_back(
          Value::Int(static_cast<int32_t>(rng.Uniform(dim_rows))));
    }
    fact.push_back(std::move(row));
  }
  db.Load("fact", fact);
}

void LoadZipfTable(BenchDb& db, const std::string& name, int n, int domain,
                   double theta, uint64_t seed) {
  db.Exec("CREATE TABLE " + name + " (k INT, v INT)");
  ZipfGenerator zipf(domain, theta, seed);
  std::vector<table::Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int32_t>(zipf.Next())), Value::Int(i)});
  }
  db.Load(name, rows);
}

void PrintHeader(const std::vector<std::string>& columns) {
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace hdb::bench
