// Figure 2(a): the default (generic) Disk Transfer Time model.
//
// Prints the four curves of the paper's figure — Read 4K, Read 8K,
// Write 4K, Write 8K — in amortized microseconds per page as a function
// of band size (1 = sequential). Expected shape: sequential ~transfer
// time only; cost rises with band size toward seek+rotation; the write
// curves sit below the read curves at large bands.
#include <cstdio>

#include "os/dtt_model.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

int main() {
  const os::DttModel model = os::DttModel::Default();
  std::printf("=== Figure 2(a): default DTT model (microseconds/page) ===\n");
  PrintHeader({"band", "read_4k", "read_8k", "write_4k", "write_8k"});
  for (const double band :
       {1.0,    2.0,    8.0,     32.0,    128.0,   256.0,  512.0,
        1024.0, 1536.0, 2048.0,  2560.0,  3072.0,  3500.0}) {
    PrintRow({Fmt(band, 0),
              Fmt(model.MicrosPerPage(os::DttOp::kRead, 4096, band)),
              Fmt(model.MicrosPerPage(os::DttOp::kRead, 8192, band)),
              Fmt(model.MicrosPerPage(os::DttOp::kWrite, 4096, band)),
              Fmt(model.MicrosPerPage(os::DttOp::kWrite, 8192, band))});
  }
  std::printf(
      "\nshape checks: seq read4k=%.0fus; random read4k(3500)=%.0fus; "
      "write<read at band 3500: %s\n",
      model.MicrosPerPage(os::DttOp::kRead, 4096, 1),
      model.MicrosPerPage(os::DttOp::kRead, 4096, 3500),
      model.MicrosPerPage(os::DttOp::kWrite, 4096, 3500) <
              model.MicrosPerPage(os::DttOp::kRead, 4096, 3500)
          ? "yes"
          : "NO");
  return 0;
}
