// §4.1: "SQL Anywhere (re)optimizes a query at each invocation ...
// [except] statements within stored procedures", which train into a
// per-connection plan cache with a decaying-logarithmic verification
// schedule.
//
// This bench runs the same parameterized lookup 2000 times, once as an
// ad-hoc statement (re-optimized every call) and once through a
// procedure (plan cache). Reported: optimizer invocations, cached uses,
// verification count, and wall time per 1000 calls.
#include <chrono>
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {
double NowMs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}
}  // namespace

int main() {
  BenchDb db;
  db.Exec("CREATE TABLE t (k INT NOT NULL, a INT, b INT)");
  std::vector<table::Row> rows;
  Rng rng(8);
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int(i % 512),
                    Value::Int(static_cast<int32_t>(rng.Uniform(64))),
                    Value::Int(static_cast<int32_t>(rng.Uniform(64)))});
  }
  db.Load("t", rows);
  db.Exec("CREATE INDEX tk ON t (k)");
  db.Exec(
      "CREATE PROCEDURE lookup (:k) AS SELECT a FROM t WHERE k = :k AND "
      "b < 60");

  constexpr int kCalls = 2000;

  const double t0 = NowMs();
  for (int i = 0; i < kCalls; ++i) {
    db.Exec("SELECT a FROM t WHERE k = " + std::to_string(i % 512) +
            " AND b < 60");
  }
  const double adhoc_ms = NowMs() - t0;

  const double t1 = NowMs();
  for (int i = 0; i < kCalls; ++i) {
    db.Exec("CALL lookup(" + std::to_string(i % 512) + ")");
  }
  const double proc_ms = NowMs() - t1;

  const auto& stats = db.conn->plan_cache().stats();
  std::printf("=== §4.1 plan cache for procedure statements ===\n");
  PrintHeader({"path", "calls", "optimizations", "cached", "verifies",
               "ms/1000"});
  PrintRow({"ad-hoc", std::to_string(kCalls), std::to_string(kCalls), "0",
            "0", Fmt(adhoc_ms * 1000.0 / kCalls)});
  PrintRow({"procedure", std::to_string(kCalls),
            std::to_string(stats.optimizations),
            std::to_string(stats.cached_uses),
            std::to_string(stats.verifications),
            Fmt(proc_ms * 1000.0 / kCalls)});
  std::printf(
      "\noptimizations skipped by the cache: %.1f%%  "
      "(training=%llu, invalidations=%llu)\n",
      100.0 * (1.0 - static_cast<double>(stats.optimizations) / kCalls),
      static_cast<unsigned long long>(stats.trainings_completed),
      static_cast<unsigned long long>(stats.invalidations));
  std::printf(
      "verification points follow a decaying schedule: intervals 8, 64, "
      "512, ... cached uses.\n");
  return 0;
}
