// Figure 3: DTT of a 512 MB SD storage card (Pocket PC class device).
//
// The paper's observations: random read times are uniform across band
// sizes (no seek arm), and writes are far costlier than reads. Curves for
// 2K and 4K pages, bands matching the figure's x-axis labels.
#include <cstdio>

#include "os/virtual_disk.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

os::DttModel CalibrateFlash(uint32_t page_bytes) {
  os::FlashDiskOptions opts;
  opts.page_bytes = page_bytes;
  opts.total_pages = (512ull << 20) / page_bytes;  // 512 MB card
  os::FlashDisk disk(opts);
  os::CalibrationOptions copts;
  copts.bands = {1, 200, 800, 1237, 1674, 2548, 4296};
  return os::CalibrateDisk(disk, copts);
}

}  // namespace

int main() {
  const os::DttModel m4k = CalibrateFlash(4096);
  const os::DttModel m2k = CalibrateFlash(2048);

  std::printf(
      "=== Figure 3: DTT for a 512MB SD card (microseconds/page) ===\n");
  PrintHeader({"band", "read_4k", "read_2k", "write_4k", "write_2k"});
  for (const double band : {1.0, 200.0, 800.0, 1237.0, 1674.0, 2548.0,
                            4296.0}) {
    PrintRow({Fmt(band, 0),
              Fmt(m4k.MicrosPerPage(os::DttOp::kRead, 4096, band)),
              Fmt(m2k.MicrosPerPage(os::DttOp::kRead, 2048, band)),
              Fmt(m4k.MicrosPerPage(os::DttOp::kWrite, 4096, band)),
              Fmt(m2k.MicrosPerPage(os::DttOp::kWrite, 2048, band))});
  }
  const double flatness =
      m4k.MicrosPerPage(os::DttOp::kRead, 4096, 4296) /
      m4k.MicrosPerPage(os::DttOp::kRead, 4096, 200);
  std::printf(
      "\nuniform random access: read4k(band 4296)/read4k(band 200) = %.2f "
      "(paper: ~1.0)\n",
      flatness);
  std::printf("write4k/read4k ratio: %.1f (paper: writes far above reads)\n",
              m4k.MicrosPerPage(os::DttOp::kWrite, 4096, 800) /
                  m4k.MicrosPerPage(os::DttOp::kRead, 4096, 800));
  return 0;
}
