// Figure 1 / §2: the cache-sizing feedback control loop in action.
//
// Reproduces the behavioural content of the paper's Figure 1 (a schematic)
// as a time series: the buffer pool grows into free memory while the
// workload misses, shrinks when a competing application claims the
// machine, re-grows when it exits, and is capped by Eq. (1) when the
// database is small. Windows CE mode is shown as a second trace.
#include <cstdio>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

constexpr uint64_t kMB = 1ull << 20;

void RunTrace(bool ce_mode) {
  engine::DatabaseOptions opts;
  opts.initial_pool_frames = 512;  // 2 MB
  opts.physical_memory_bytes = 96 * kMB;
  opts.pool_governor.min_bytes = 1 * kMB;
  opts.pool_governor.max_bytes = 48 * kMB;
  opts.pool_governor.ce_mode = ce_mode;
  BenchDb db(opts);

  db.Exec("CREATE TABLE t (k INT, pad VARCHAR(200))");
  std::vector<table::Row> rows;
  for (int i = 0; i < 200000; ++i) {
    rows.push_back(
        {Value::Int(i % 1000), Value::String(std::string(180, 'p'))});
  }
  db.Load("t", rows);

  std::printf("\n-- %s trace --\n", ce_mode ? "Windows CE mode" : "default");
  PrintHeader({"minute", "phase", "ws_MB", "free_MB", "pool_MB"});

  auto step = [&](int minute, const char* phase, bool run_queries) {
    if (run_queries) {
      db.Exec("SELECT COUNT(*) FROM t WHERE k < 500");
    }
    db.db->Tick(60ll * 1000 * 1000);
    const auto& env = db.db->memory_env();
    PrintRow({std::to_string(minute), phase,
              Fmt(env.WorkingSetSize("hdb-server") / double(kMB)),
              Fmt(env.FreePhysical() / double(kMB)),
              Fmt(db.db->pool().CurrentBytes() / double(kMB))});
  };

  int minute = 0;
  // Phase 1: active workload, plenty of free memory -> grow.
  for (int i = 0; i < 6; ++i) step(minute++, "grow", true);
  // Phase 2: competing application allocates 80 MB -> shrink.
  db.db->memory_env().SetAllocation("browser", 88 * kMB);
  for (int i = 0; i < 6; ++i) step(minute++, "pressure", true);
  // Phase 3: the application exits -> re-grow (needs misses).
  db.db->memory_env().RemoveProcess("browser");
  for (int i = 0; i < 6; ++i) step(minute++, "release", true);
  // Phase 4: idle (no buffer misses) -> growth gated, size stable.
  for (int i = 0; i < 3; ++i) step(minute++, "idle", false);
}

}  // namespace

int main() {
  std::printf("=== Figure 1 / §2: buffer pool feedback control ===\n");
  std::printf(
      "target = working set + free physical - 5MB reserve, damped by\n"
      "Eq.(2), bounded by Eq.(1); growth requires buffer misses.\n");
  RunTrace(/*ce_mode=*/false);
  RunTrace(/*ce_mode=*/true);
  return 0;
}
