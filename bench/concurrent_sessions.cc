// Concurrent sessions: N threads, each with its own Connection, execute a
// mixed read/write SQL workload against one Database. Reports throughput
// scaling over 1/2/4/8 threads and the MplController's adaptation trace —
// the §6 extension driven by real parallelism instead of a simulated
// request stream. Writes BENCH_concurrent_sessions.json.
//
// Clients are closed-loop with a fixed think time between statements (the
// standard TPC-style arrangement the paper's multiprogramming discussion
// assumes): one session is latency-bound by its own think time, so adding
// sessions raises throughput until the server saturates — which is what
// makes the scaling number meaningful even on a small host.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;

namespace {

struct RunResult {
  int threads = 0;
  uint64_t completed = 0;
  uint64_t aborted = 0;
  uint64_t timed_out = 0;
  double wall_seconds = 0;
  double throughput = 0;  // completed statements / second
  int mpl_end = 0;
  int mpl_steps = 0;  // adaptation decisions that changed the MPL
  std::vector<exec::MplController::Sample> mpl_trace;
  std::string telemetry_json;  // Database::TelemetrySnapshotJson() at end
};

engine::DatabaseOptions MakeOptions() {
  engine::DatabaseOptions opts;
  // Start the MPL low so the admission gate actually constrains the
  // 4- and 8-thread runs; the hill climber must discover the capacity.
  opts.memory_governor.multiprogramming_level = 2;
  opts.mpl_controller.min_mpl = 1;
  opts.mpl_controller.max_mpl = 32;
  opts.mpl_controller.step = 2;
  opts.mpl_controller.interval_micros = 50'000;  // virtual time
  return opts;
}

/// Client think time between statements (closed loop).
constexpr int64_t kThinkMicros = 400;

RunResult RunMix(int threads, int read_pct, double seconds) {
  BenchDb db(MakeOptions());
  db.Exec("CREATE TABLE t (k INT NOT NULL, v INT)");
  db.Exec("CREATE INDEX t_k ON t (k)");
  {
    std::vector<table::Row> rows;
    rows.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i % 13)});
    }
    db.Load("t", rows);
  }

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> timed_out{0};
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto conn = db.db->Connect();
      if (!conn.ok()) std::abort();
      engine::Connection* c = conn->get();
      const int base = 100'000 * (t + 1);  // disjoint DML key space
      auto last_tick = std::chrono::steady_clock::now();
      for (int i = 0; std::chrono::steady_clock::now() < deadline; ++i) {
        std::string sql;
        const int roll = i % 100;
        if (roll < read_pct) {
          sql = "SELECT v FROM t WHERE k < " + std::to_string(50 + i % 200);
        } else if (roll % 3 == 0) {
          sql = "INSERT INTO t VALUES (" + std::to_string(base + i) + ", 1)";
        } else if (roll % 3 == 1) {
          sql = "UPDATE t SET v = v + 1 WHERE k = " +
                std::to_string(base + i - 100);
        } else {
          sql = "DELETE FROM t WHERE k = " + std::to_string(base + i - 200);
        }
        auto r = c->Execute(sql);
        if (r.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kAborted) {
          aborted.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kOverloaded ||
                   r.status().code() == StatusCode::kResourceExhausted) {
          timed_out.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::fprintf(stderr, "hard failure: %s -> %s\n", sql.c_str(),
                       r.status().ToString().c_str());
          std::abort();
        }
        // Each session thread advances the virtual clock by its own wall
        // elapsed time, so governor/controller intervals elapse under load.
        const auto now = std::chrono::steady_clock::now();
        db.db->Tick(std::chrono::duration_cast<std::chrono::microseconds>(
                        now - last_tick)
                        .count());
        last_tick = now;
        std::this_thread::sleep_for(std::chrono::microseconds(kThinkMicros));
      }
    });
  }
  for (auto& w : workers) w.join();

  RunResult res;
  res.threads = threads;
  res.completed = completed.load();
  res.aborted = aborted.load();
  res.timed_out = timed_out.load();
  res.wall_seconds =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1e6;
  res.throughput = res.completed / res.wall_seconds;
  res.mpl_end = db.db->memory_governor().multiprogramming_level();
  res.mpl_trace = db.db->mpl_controller().history();
  int prev_mpl = 2;
  for (const auto& s : res.mpl_trace) {
    if (s.mpl != prev_mpl) ++res.mpl_steps;
    prev_mpl = s.mpl;
  }
  // Snapshot before the BenchDb (and its registry) goes out of scope.
  res.telemetry_json = db.db->TelemetrySnapshotJson();
  return res;
}

void PrintRuns(const char* title, const std::vector<RunResult>& runs) {
  std::printf("\n=== %s ===\n", title);
  PrintHeader({"threads", "stmts", "aborted", "gate_timeouts", "stmt_per_s",
               "scaling", "mpl_end", "mpl_steps"});
  const double base = runs.front().throughput;
  for (const auto& r : runs) {
    PrintRow({std::to_string(r.threads), std::to_string(r.completed),
              std::to_string(r.aborted), std::to_string(r.timed_out),
              Fmt(r.throughput, 0), Fmt(r.throughput / base, 2),
              std::to_string(r.mpl_end), std::to_string(r.mpl_steps)});
  }
}

void WriteRunsJson(std::FILE* f, const char* key,
                   const std::vector<RunResult>& runs) {
  const double base = runs.front().throughput;
  std::fprintf(f, "  \"%s\": [\n", key);
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"completed\": %llu, \"aborted\": "
                 "%llu, \"gate_timeouts\": %llu, \"wall_seconds\": %.3f, "
                 "\"throughput\": %.1f, \"scaling_vs_1\": %.3f, "
                 "\"mpl_end\": %d, \"mpl_adaptation_steps\": %d}%s\n",
                 r.threads, static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.aborted),
                 static_cast<unsigned long long>(r.timed_out), r.wall_seconds,
                 r.throughput, r.throughput / base, r.mpl_end, r.mpl_steps,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

}  // namespace

int main() {
  constexpr double kSeconds = 0.6;
  std::printf("concurrent sessions: mixed SQL on one Database, "
              "host cores: %u, client think time: %lld us\n",
              std::thread::hardware_concurrency(),
              static_cast<long long>(kThinkMicros));

  std::vector<RunResult> read_heavy, mixed;
  for (const int n : {1, 2, 4, 8}) {
    read_heavy.push_back(RunMix(n, /*read_pct=*/90, kSeconds));
  }
  for (const int n : {1, 2, 4, 8}) {
    mixed.push_back(RunMix(n, /*read_pct=*/50, kSeconds));
  }

  PrintRuns("read-heavy (90% SELECT)", read_heavy);
  PrintRuns("mixed (50% SELECT, 50% DML)", mixed);

  // MPL adaptation trace of the 4-thread read-heavy run (Figure-style).
  const RunResult& traced = read_heavy[2];
  std::printf("\nMPL adaptation trace (4 threads, read-heavy):\n");
  PrintHeader({"t_virt_ms", "mpl", "stmt_per_s", "dir"});
  for (const auto& s : traced.mpl_trace) {
    PrintRow({Fmt(s.at_micros / 1000.0, 0), std::to_string(s.mpl),
              Fmt(s.throughput, 0), std::to_string(s.direction)});
  }

  std::FILE* f = std::fopen("BENCH_concurrent_sessions.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    WriteRunsJson(f, "read_heavy", read_heavy);
    std::fprintf(f, ",\n");
    WriteRunsJson(f, "mixed", mixed);
    std::fprintf(f, ",\n  \"mpl_trace_4t_read_heavy\": [\n");
    for (size_t i = 0; i < traced.mpl_trace.size(); ++i) {
      const auto& s = traced.mpl_trace[i];
      std::fprintf(f,
                   "    {\"at_micros\": %lld, \"mpl\": %d, \"throughput\": "
                   "%.1f, \"direction\": %d}%s\n",
                   static_cast<long long>(s.at_micros), s.mpl, s.throughput,
                   s.direction, i + 1 < traced.mpl_trace.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"telemetry_8t_mixed\": ");
    // TelemetrySnapshotJson() is a complete JSON object; embed verbatim.
    std::fputs(mixed.back().telemetry_json.c_str(), f);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_concurrent_sessions.json\n");
  }

  const double scaling4 = read_heavy[2].throughput / read_heavy[0].throughput;
  std::printf("\nread-heavy scaling at 4 threads: %.2fx (%s), "
              "MPL adaptation steps: %d\n",
              scaling4, scaling4 > 1.5 ? "PASS >1.5x" : "BELOW 1.5x",
              traced.mpl_steps);
  return 0;
}
