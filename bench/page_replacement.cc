// §2.2: the modified generalized clock replacement policy.
//
// Compares hit rates of the paper's segmented-clock-with-decay against a
// plain LRU (simulated on the same trace) under three access patterns:
//   hot-only   - Zipf point reads (both policies should do well)
//   scan-mixed - Zipf point reads interleaved with full table scans (LRU
//                flushes its hot set; the segmented clock's score logic
//                resists one-pass scans)
//   temp-churn - heap/temp pages allocated and discarded (exercises the
//                lock-free lookaside queue's immediate reuse)
#include <cstdio>
#include <list>
#include <unordered_map>

#include "storage/buffer_pool.h"
#include "workloads.h"

using namespace hdb;
using namespace hdb::bench;
using namespace hdb::storage;

namespace {

constexpr size_t kFrames = 128;
constexpr int kHotPages = 96;   // hot set fits in the pool
constexpr int kTotalPages = 512;  // scans sweep far beyond it
constexpr int kOps = 40000;

/// Reference LRU simulated over the same page-id trace.
struct LruSim {
  explicit LruSim(size_t capacity) : capacity_(capacity) {}
  bool Access(uint32_t page) {
    auto it = pos_.find(page);
    if (it != pos_.end()) {
      order_.erase(it->second);
      order_.push_front(page);
      pos_[page] = order_.begin();
      return true;
    }
    if (order_.size() >= capacity_) {
      pos_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(page);
    pos_[page] = order_.begin();
    return false;
  }
  size_t capacity_;
  std::list<uint32_t> order_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> pos_;
};

struct TraceResult {
  double clock_hit_rate;
  double lru_hit_rate;
};

TraceResult RunTrace(bool with_scans) {
  DiskManager disk(kDefaultPageBytes, nullptr, nullptr);
  BufferPool pool(&disk, BufferPoolOptions{.initial_frames = kFrames});
  std::vector<PageId> pages;
  for (int i = 0; i < kTotalPages; ++i) {
    PageId id;
    auto h = pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
    if (!h.ok()) std::abort();
    pages.push_back(id);
  }
  // Reset counters after the load phase.
  (void)pool.TakeMissesSinceLastPoll();
  const auto base = pool.stats();

  LruSim lru(kFrames);
  ZipfGenerator zipf(kHotPages, 1.1, 3);
  uint64_t lru_hits = 0, accesses = 0;
  for (int op = 0; op < kOps; ++op) {
    if (with_scans && op % 2000 == 1999) {
      // A full sequential scan of all pages.
      for (const PageId id : pages) {
        auto h = pool.FetchPage({SpaceId::kMain, id}, PageType::kTable, 1);
        if (!h.ok()) std::abort();
        lru_hits += lru.Access(id);
        ++accesses;
      }
      continue;
    }
    const PageId id = pages[zipf.Next()];
    auto h = pool.FetchPage({SpaceId::kMain, id}, PageType::kTable, 1);
    if (!h.ok()) std::abort();
    lru_hits += lru.Access(id);
    ++accesses;
  }
  const auto s = pool.stats();
  const double clock_hits =
      static_cast<double>(s.hits - base.hits);
  const double clock_misses = static_cast<double>(s.misses - base.misses);
  return TraceResult{clock_hits / (clock_hits + clock_misses),
                     static_cast<double>(lru_hits) / accesses};
}

}  // namespace

int main() {
  std::printf("=== §2.2 page replacement: segmented clock vs LRU ===\n");
  std::printf("frames=%zu, hot set=%d pages, table=%d pages, Zipf(1.1)\n\n",
              kFrames, kHotPages, kTotalPages);
  PrintHeader({"workload", "clock_hit%", "lru_hit%"});
  const auto hot = RunTrace(/*with_scans=*/false);
  PrintRow({"hot-only", Fmt(hot.clock_hit_rate * 100),
            Fmt(hot.lru_hit_rate * 100)});
  const auto mixed = RunTrace(/*with_scans=*/true);
  PrintRow({"scan-mixed", Fmt(mixed.clock_hit_rate * 100),
            Fmt(mixed.lru_hit_rate * 100)});

  // Lookaside-queue churn: temp pages discarded and immediately reused.
  {
    DiskManager disk(kDefaultPageBytes, nullptr, nullptr);
    BufferPool pool(&disk, BufferPoolOptions{.initial_frames = 64});
    // Occupy the pool so the free list stays empty.
    std::vector<PageId> filler;
    for (int i = 0; i < 64; ++i) {
      PageId id;
      auto h = pool.NewPage(SpaceId::kMain, PageType::kTable, 1, &id);
      if (!h.ok()) std::abort();
      filler.push_back(id);
    }
    for (int i = 0; i < 5000; ++i) {
      PageId id;
      auto h = pool.NewPage(SpaceId::kTemp, PageType::kTempTable, 2, &id);
      if (!h.ok()) std::abort();
      h->Release();
      pool.DiscardPage({SpaceId::kTemp, id});
    }
    const auto s = pool.stats();
    std::printf(
        "\ntemp-churn: %llu frame acquisitions served by the lock-free "
        "lookaside queue, %llu by clock eviction\n",
        static_cast<unsigned long long>(s.lookaside_reuses),
        static_cast<unsigned long long>(s.evictions));
  }
  return 0;
}
