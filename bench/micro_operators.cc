// Operator microbenchmarks (google-benchmark): throughput of the hot
// primitives behind the paper's mechanisms — the lock-free lookaside
// queue (§2.2), clock reference accounting, histogram estimation (§3),
// order-preserving hashing, expression evaluation, and telemetry
// primitives (counter add, histogram record) for the instrumentation
// overhead budget. Build once with default flags and once with
// -DHDB_TELEMETRY=OFF to compare (EXPERIMENTS.md "obs-overhead").
#include <benchmark/benchmark.h>

#include "common/ophash.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "optimizer/expr.h"
#include "stats/histogram.h"
#include "storage/clock_replacer.h"
#include "storage/lookaside_queue.h"
#include "workloads.h"

namespace hdb {
namespace {

// ---------------------------------------------------------------------------
// End-to-end executor throughput (the substrate every governor decision is
// capped by): full SQL pipeline over a resident table, reported as rows/s
// of base-table input. These are the benches scripts/bench_smoke.sh tracks
// in BENCH_exec.json, so names and shapes must stay stable.
// ---------------------------------------------------------------------------

constexpr int kExecRows = 40000;
constexpr int kExecDimRows = 1024;

bench::BenchDb& ExecDb() {
  static bench::BenchDb* db = [] {
    auto* d = new bench::BenchDb();
    d->Exec(
        "CREATE TABLE r (k INT NOT NULL, g INT NOT NULL, j INT NOT NULL, "
        "v DOUBLE, s VARCHAR(24))");
    d->Exec("CREATE TABLE d (id INT NOT NULL, w INT NOT NULL)");
    Rng rng(11);
    std::vector<table::Row> rows;
    rows.reserve(kExecRows);
    static const char* kTags[] = {"alpha", "bravo", "carbon", "delta"};
    for (int i = 0; i < kExecRows; ++i) {
      rows.push_back({Value::Int(static_cast<int32_t>(rng.Uniform(50000))),
                      Value::Int(static_cast<int32_t>(rng.Uniform(64))),
                      Value::Int(static_cast<int32_t>(rng.Uniform(kExecDimRows))),
                      Value::Double(static_cast<double>(rng.Uniform(1000)) / 1000.0),
                      Value::String(std::string(kTags[rng.Uniform(4)]) + "-" +
                                    std::to_string(rng.Uniform(1000)))});
    }
    d->Load("r", rows);
    rows.clear();
    for (int i = 0; i < kExecDimRows; ++i) {
      rows.push_back({Value::Int(i),
                      Value::Int(static_cast<int32_t>(rng.Uniform(100)))});
    }
    d->Load("d", rows);
    return d;
  }();
  return *db;
}

void RunExecBench(benchmark::State& state, const std::string& sql,
                  size_t expect_rows) {
  bench::BenchDb& db = ExecDb();
  for (auto _ : state) {
    auto r = db.conn->Execute(sql);
    if (!r.ok() || r->rows.size() != expect_rows) {
      state.SkipWithError("query failed or row count drifted");
      return;
    }
    benchmark::DoNotOptimize(r->rows);
  }
  // Throughput in base-table rows consumed per second.
  state.SetItemsProcessed(state.iterations() * kExecRows);
}

void BM_ExecSeqScan(benchmark::State& state) {
  RunExecBench(state, "SELECT k, v FROM r",
               static_cast<size_t>(kExecRows));
}
BENCHMARK(BM_ExecSeqScan);

void BM_ExecFilter(benchmark::State& state) {
  // ~20% selectivity on the leading conjunct, then a double compare.
  static const size_t expected = [] {
    auto r = ExecDb().conn->Execute(
        "SELECT k FROM r WHERE k >= 10000 AND k < 20000 AND v < 0.9");
    return r.ok() ? r->rows.size() : 0;
  }();
  RunExecBench(state,
               "SELECT k FROM r WHERE k >= 10000 AND k < 20000 AND v < 0.9",
               expected);
}
BENCHMARK(BM_ExecFilter);

void BM_ExecAggregate(benchmark::State& state) {
  RunExecBench(state, "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g", 64);
}
BENCHMARK(BM_ExecAggregate);

void BM_ExecHashJoin(benchmark::State& state) {
  RunExecBench(state,
               "SELECT COUNT(*) FROM r JOIN d ON r.j = d.id WHERE d.w < 100",
               1);
}
BENCHMARK(BM_ExecHashJoin);

void BM_LookasideQueuePushPop(benchmark::State& state) {
  storage::LookasideQueue q(1024);
  for (auto _ : state) {
    q.Push(7);
    benchmark::DoNotOptimize(q.Pop());
  }
}
BENCHMARK(BM_LookasideQueuePushPop);

void BM_LookasideQueueContended(benchmark::State& state) {
  static storage::LookasideQueue* q = nullptr;
  if (state.thread_index() == 0) q = new storage::LookasideQueue(4096);
  for (auto _ : state) {
    q->Push(static_cast<uint32_t>(state.thread_index()));
    benchmark::DoNotOptimize(q->Pop());
  }
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}
BENCHMARK(BM_LookasideQueueContended)->Threads(4);

void BM_ClockReplacerReference(benchmark::State& state) {
  storage::ClockReplacer clock(4096);
  for (uint32_t i = 0; i < 4096; ++i) {
    clock.RecordReference(i);
    clock.SetEvictable(i, true);
  }
  Rng rng(1);
  for (auto _ : state) {
    clock.RecordReference(static_cast<uint32_t>(rng.Uniform(4096)));
  }
}
BENCHMARK(BM_ClockReplacerReference);

void BM_ClockReplacerVictim(benchmark::State& state) {
  storage::ClockReplacer clock(4096);
  for (uint32_t i = 0; i < 4096; ++i) {
    clock.RecordReference(i);
    clock.SetEvictable(i, true);
  }
  uint32_t next = 0;
  for (auto _ : state) {
    auto v = clock.Victim();
    benchmark::DoNotOptimize(v);
    clock.RecordReference(next);
    clock.SetEvictable(next, true);
    next = (next + 1) % 4096;
  }
}
BENCHMARK(BM_ClockReplacerVictim);

void BM_OrderPreservingHash(benchmark::State& state) {
  const Value v = Value::String("category-17");
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrderPreservingHash(v));
  }
}
BENCHMARK(BM_OrderPreservingHash);

void BM_HistogramEstimateEquals(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(static_cast<double>(rng.Uniform(1000)));
  }
  const auto h = stats::Histogram::Build(TypeId::kInt, std::move(values));
  double v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.EstimateEquals(v));
    v = v < 999 ? v + 1 : 0;
  }
}
BENCHMARK(BM_HistogramEstimateEquals);

void BM_HistogramFeedback(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(static_cast<double>(rng.Uniform(1000)));
  }
  auto h = stats::Histogram::Build(TypeId::kInt, std::move(values));
  double lo = 0;
  for (auto _ : state) {
    h.FeedbackRange(lo, lo + 50, 0.08);
    lo = lo < 900 ? lo + 13 : 0;
  }
}
BENCHMARK(BM_HistogramFeedback);

void BM_ExpressionEvaluate(benchmark::State& state) {
  using namespace hdb::optimizer;
  // (k >= 10 AND k < 500) OR name LIKE '%gadget%'
  auto expr = Expr::Or(
      Expr::And(Expr::Compare(CompareOp::kGe, Expr::Column(0, 0, TypeId::kInt),
                              Expr::Literal(Value::Int(10))),
                Expr::Compare(CompareOp::kLt, Expr::Column(0, 0, TypeId::kInt),
                              Expr::Literal(Value::Int(500)))),
      Expr::Like(Expr::Column(0, 1, TypeId::kVarchar), "%gadget%"));
  std::vector<Value> row = {Value::Int(250), Value::String("the gadget x")};
  RowContext ctx;
  ctx.rows = {&row};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->EvaluatesToTrue(ctx));
  }
}
BENCHMARK(BM_ExpressionEvaluate);

void BM_ValueHashPartition(benchmark::State& state) {
  Rng rng(3);
  std::vector<Value> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back(Value::Int(static_cast<int32_t>(rng.Uniform(100000))));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys[i & 4095].Hash() % 8);
    ++i;
  }
}
BENCHMARK(BM_ValueHashPartition);

void BM_TelemetryCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.RegisterCounter("bench.counter");
  for (auto _ : state) {
    c->Add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryCounterAddContended(benchmark::State& state) {
  // Function-local static: thread-safe construction, so every worker can
  // register (idempotently) before the state-loop barrier.
  static obs::MetricsRegistry registry;
  obs::Counter* c = registry.RegisterCounter("bench.contended");
  for (auto _ : state) {
    c->Add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TelemetryCounterAddContended)->Threads(4);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::LatencyHistogram* h = registry.RegisterHistogram("bench.latency");
  int64_t micros = 1;
  for (auto _ : state) {
    h->Record(micros);
    micros = micros < 1'000'000 ? micros * 3 : 1;
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_TelemetryHistogramRecord);

}  // namespace
}  // namespace hdb

BENCHMARK_MAIN();
