# Empty compiler generated dependencies file for pool_governor_test.
# This may be replaced when dependencies are built.
