file(REMOVE_RECURSE
  "CMakeFiles/pool_governor_test.dir/pool_governor_test.cc.o"
  "CMakeFiles/pool_governor_test.dir/pool_governor_test.cc.o.d"
  "pool_governor_test"
  "pool_governor_test.pdb"
  "pool_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
