# Empty compiler generated dependencies file for heap_exthash_test.
# This may be replaced when dependencies are built.
