file(REMOVE_RECURSE
  "CMakeFiles/heap_exthash_test.dir/heap_exthash_test.cc.o"
  "CMakeFiles/heap_exthash_test.dir/heap_exthash_test.cc.o.d"
  "heap_exthash_test"
  "heap_exthash_test.pdb"
  "heap_exthash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_exthash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
