
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os_test.cc" "tests/CMakeFiles/os_test.dir/os_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/hdb_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/hdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/hdb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/hdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/hdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
