file(REMOVE_RECURSE
  "CMakeFiles/sql_differential_test.dir/sql_differential_test.cc.o"
  "CMakeFiles/sql_differential_test.dir/sql_differential_test.cc.o.d"
  "sql_differential_test"
  "sql_differential_test.pdb"
  "sql_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
