# Empty dependencies file for sql_differential_test.
# This may be replaced when dependencies are built.
