# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/pool_governor_test[1]_include.cmake")
include("/root/repo/build/tests/heap_exthash_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/table_index_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/engine_sql_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sql_differential_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
