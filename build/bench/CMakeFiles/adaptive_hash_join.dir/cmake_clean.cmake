file(REMOVE_RECURSE
  "CMakeFiles/adaptive_hash_join.dir/adaptive_hash_join.cc.o"
  "CMakeFiles/adaptive_hash_join.dir/adaptive_hash_join.cc.o.d"
  "adaptive_hash_join"
  "adaptive_hash_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_hash_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
