# Empty dependencies file for adaptive_hash_join.
# This may be replaced when dependencies are built.
