file(REMOVE_RECURSE
  "CMakeFiles/fig1_pool_adaptation.dir/fig1_pool_adaptation.cc.o"
  "CMakeFiles/fig1_pool_adaptation.dir/fig1_pool_adaptation.cc.o.d"
  "fig1_pool_adaptation"
  "fig1_pool_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pool_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
