# Empty dependencies file for fig1_pool_adaptation.
# This may be replaced when dependencies are built.
