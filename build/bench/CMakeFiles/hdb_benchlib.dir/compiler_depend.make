# Empty compiler generated dependencies file for hdb_benchlib.
# This may be replaced when dependencies are built.
