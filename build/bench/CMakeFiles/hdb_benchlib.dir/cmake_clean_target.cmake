file(REMOVE_RECURSE
  "../lib/libhdb_benchlib.a"
)
