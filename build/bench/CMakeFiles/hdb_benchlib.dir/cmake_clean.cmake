file(REMOVE_RECURSE
  "../lib/libhdb_benchlib.a"
  "../lib/libhdb_benchlib.pdb"
  "CMakeFiles/hdb_benchlib.dir/workloads.cc.o"
  "CMakeFiles/hdb_benchlib.dir/workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
