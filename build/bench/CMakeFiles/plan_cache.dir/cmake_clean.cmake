file(REMOVE_RECURSE
  "CMakeFiles/plan_cache.dir/plan_cache.cc.o"
  "CMakeFiles/plan_cache.dir/plan_cache.cc.o.d"
  "plan_cache"
  "plan_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
