# Empty dependencies file for plan_cache.
# This may be replaced when dependencies are built.
