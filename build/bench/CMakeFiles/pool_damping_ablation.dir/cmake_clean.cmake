file(REMOVE_RECURSE
  "CMakeFiles/pool_damping_ablation.dir/pool_damping_ablation.cc.o"
  "CMakeFiles/pool_damping_ablation.dir/pool_damping_ablation.cc.o.d"
  "pool_damping_ablation"
  "pool_damping_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_damping_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
