# Empty dependencies file for pool_damping_ablation.
# This may be replaced when dependencies are built.
