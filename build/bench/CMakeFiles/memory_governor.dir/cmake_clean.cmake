file(REMOVE_RECURSE
  "CMakeFiles/memory_governor.dir/memory_governor.cc.o"
  "CMakeFiles/memory_governor.dir/memory_governor.cc.o.d"
  "memory_governor"
  "memory_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
