# Empty dependencies file for memory_governor.
# This may be replaced when dependencies are built.
