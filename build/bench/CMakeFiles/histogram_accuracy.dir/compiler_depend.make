# Empty compiler generated dependencies file for histogram_accuracy.
# This may be replaced when dependencies are built.
