file(REMOVE_RECURSE
  "CMakeFiles/histogram_accuracy.dir/histogram_accuracy.cc.o"
  "CMakeFiles/histogram_accuracy.dir/histogram_accuracy.cc.o.d"
  "histogram_accuracy"
  "histogram_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
