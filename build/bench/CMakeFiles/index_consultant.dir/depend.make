# Empty dependencies file for index_consultant.
# This may be replaced when dependencies are built.
