file(REMOVE_RECURSE
  "CMakeFiles/index_consultant.dir/index_consultant.cc.o"
  "CMakeFiles/index_consultant.dir/index_consultant.cc.o.d"
  "index_consultant"
  "index_consultant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_consultant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
