# Empty dependencies file for cost_model_fidelity.
# This may be replaced when dependencies are built.
