file(REMOVE_RECURSE
  "CMakeFiles/cost_model_fidelity.dir/cost_model_fidelity.cc.o"
  "CMakeFiles/cost_model_fidelity.dir/cost_model_fidelity.cc.o.d"
  "cost_model_fidelity"
  "cost_model_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
