# Empty dependencies file for opt_100way_join.
# This may be replaced when dependencies are built.
