file(REMOVE_RECURSE
  "CMakeFiles/opt_100way_join.dir/opt_100way_join.cc.o"
  "CMakeFiles/opt_100way_join.dir/opt_100way_join.cc.o.d"
  "opt_100way_join"
  "opt_100way_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_100way_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
