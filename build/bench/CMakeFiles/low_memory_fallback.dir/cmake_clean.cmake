file(REMOVE_RECURSE
  "CMakeFiles/low_memory_fallback.dir/low_memory_fallback.cc.o"
  "CMakeFiles/low_memory_fallback.dir/low_memory_fallback.cc.o.d"
  "low_memory_fallback"
  "low_memory_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_memory_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
