# Empty compiler generated dependencies file for low_memory_fallback.
# This may be replaced when dependencies are built.
