# Empty dependencies file for opt_governor_ablation.
# This may be replaced when dependencies are built.
