file(REMOVE_RECURSE
  "CMakeFiles/opt_governor_ablation.dir/opt_governor_ablation.cc.o"
  "CMakeFiles/opt_governor_ablation.dir/opt_governor_ablation.cc.o.d"
  "opt_governor_ablation"
  "opt_governor_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_governor_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
