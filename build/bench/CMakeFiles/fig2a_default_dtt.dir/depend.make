# Empty dependencies file for fig2a_default_dtt.
# This may be replaced when dependencies are built.
