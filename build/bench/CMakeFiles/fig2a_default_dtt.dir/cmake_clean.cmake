file(REMOVE_RECURSE
  "CMakeFiles/fig2a_default_dtt.dir/fig2a_default_dtt.cc.o"
  "CMakeFiles/fig2a_default_dtt.dir/fig2a_default_dtt.cc.o.d"
  "fig2a_default_dtt"
  "fig2a_default_dtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_default_dtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
