file(REMOVE_RECURSE
  "CMakeFiles/fig2b_calibrated_dtt.dir/fig2b_calibrated_dtt.cc.o"
  "CMakeFiles/fig2b_calibrated_dtt.dir/fig2b_calibrated_dtt.cc.o.d"
  "fig2b_calibrated_dtt"
  "fig2b_calibrated_dtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_calibrated_dtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
