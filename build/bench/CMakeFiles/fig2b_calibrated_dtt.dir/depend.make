# Empty dependencies file for fig2b_calibrated_dtt.
# This may be replaced when dependencies are built.
