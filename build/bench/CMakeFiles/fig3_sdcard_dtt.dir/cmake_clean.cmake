file(REMOVE_RECURSE
  "CMakeFiles/fig3_sdcard_dtt.dir/fig3_sdcard_dtt.cc.o"
  "CMakeFiles/fig3_sdcard_dtt.dir/fig3_sdcard_dtt.cc.o.d"
  "fig3_sdcard_dtt"
  "fig3_sdcard_dtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sdcard_dtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
