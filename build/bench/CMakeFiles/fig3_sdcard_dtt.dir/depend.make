# Empty dependencies file for fig3_sdcard_dtt.
# This may be replaced when dependencies are built.
