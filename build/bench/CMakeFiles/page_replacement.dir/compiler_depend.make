# Empty compiler generated dependencies file for page_replacement.
# This may be replaced when dependencies are built.
