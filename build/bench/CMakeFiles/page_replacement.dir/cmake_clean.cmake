file(REMOVE_RECURSE
  "CMakeFiles/page_replacement.dir/page_replacement.cc.o"
  "CMakeFiles/page_replacement.dir/page_replacement.cc.o.d"
  "page_replacement"
  "page_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
