# Empty compiler generated dependencies file for embedded_coexistence.
# This may be replaced when dependencies are built.
