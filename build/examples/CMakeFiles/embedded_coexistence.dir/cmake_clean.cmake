file(REMOVE_RECURSE
  "CMakeFiles/embedded_coexistence.dir/embedded_coexistence.cc.o"
  "CMakeFiles/embedded_coexistence.dir/embedded_coexistence.cc.o.d"
  "embedded_coexistence"
  "embedded_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
