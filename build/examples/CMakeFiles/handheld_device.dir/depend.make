# Empty dependencies file for handheld_device.
# This may be replaced when dependencies are built.
