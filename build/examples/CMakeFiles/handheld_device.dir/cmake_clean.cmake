file(REMOVE_RECURSE
  "CMakeFiles/handheld_device.dir/handheld_device.cc.o"
  "CMakeFiles/handheld_device.dir/handheld_device.cc.o.d"
  "handheld_device"
  "handheld_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handheld_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
