# Empty dependencies file for self_tuning_tour.
# This may be replaced when dependencies are built.
