file(REMOVE_RECURSE
  "CMakeFiles/self_tuning_tour.dir/self_tuning_tour.cc.o"
  "CMakeFiles/self_tuning_tour.dir/self_tuning_tour.cc.o.d"
  "self_tuning_tour"
  "self_tuning_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_tuning_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
