file(REMOVE_RECURSE
  "libhdb_catalog.a"
)
