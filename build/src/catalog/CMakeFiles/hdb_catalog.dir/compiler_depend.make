# Empty compiler generated dependencies file for hdb_catalog.
# This may be replaced when dependencies are built.
