file(REMOVE_RECURSE
  "CMakeFiles/hdb_catalog.dir/catalog.cc.o"
  "CMakeFiles/hdb_catalog.dir/catalog.cc.o.d"
  "libhdb_catalog.a"
  "libhdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
