file(REMOVE_RECURSE
  "libhdb_exec.a"
)
