# Empty dependencies file for hdb_exec.
# This may be replaced when dependencies are built.
