file(REMOVE_RECURSE
  "CMakeFiles/hdb_exec.dir/executor.cc.o"
  "CMakeFiles/hdb_exec.dir/executor.cc.o.d"
  "CMakeFiles/hdb_exec.dir/memory_governor.cc.o"
  "CMakeFiles/hdb_exec.dir/memory_governor.cc.o.d"
  "CMakeFiles/hdb_exec.dir/mpl_controller.cc.o"
  "CMakeFiles/hdb_exec.dir/mpl_controller.cc.o.d"
  "CMakeFiles/hdb_exec.dir/parallel.cc.o"
  "CMakeFiles/hdb_exec.dir/parallel.cc.o.d"
  "CMakeFiles/hdb_exec.dir/recursive_union.cc.o"
  "CMakeFiles/hdb_exec.dir/recursive_union.cc.o.d"
  "CMakeFiles/hdb_exec.dir/spill.cc.o"
  "CMakeFiles/hdb_exec.dir/spill.cc.o.d"
  "libhdb_exec.a"
  "libhdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
