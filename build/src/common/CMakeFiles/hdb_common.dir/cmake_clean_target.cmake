file(REMOVE_RECURSE
  "libhdb_common.a"
)
