file(REMOVE_RECURSE
  "CMakeFiles/hdb_common.dir/arena.cc.o"
  "CMakeFiles/hdb_common.dir/arena.cc.o.d"
  "CMakeFiles/hdb_common.dir/ophash.cc.o"
  "CMakeFiles/hdb_common.dir/ophash.cc.o.d"
  "CMakeFiles/hdb_common.dir/status.cc.o"
  "CMakeFiles/hdb_common.dir/status.cc.o.d"
  "CMakeFiles/hdb_common.dir/types.cc.o"
  "CMakeFiles/hdb_common.dir/types.cc.o.d"
  "CMakeFiles/hdb_common.dir/value.cc.o"
  "CMakeFiles/hdb_common.dir/value.cc.o.d"
  "libhdb_common.a"
  "libhdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
