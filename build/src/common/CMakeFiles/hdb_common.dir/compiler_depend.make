# Empty compiler generated dependencies file for hdb_common.
# This may be replaced when dependencies are built.
