file(REMOVE_RECURSE
  "CMakeFiles/hdb_index.dir/btree.cc.o"
  "CMakeFiles/hdb_index.dir/btree.cc.o.d"
  "libhdb_index.a"
  "libhdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
