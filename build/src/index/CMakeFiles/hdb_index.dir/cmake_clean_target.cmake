file(REMOVE_RECURSE
  "libhdb_index.a"
)
