# Empty dependencies file for hdb_index.
# This may be replaced when dependencies are built.
