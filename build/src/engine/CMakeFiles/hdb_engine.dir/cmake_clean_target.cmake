file(REMOVE_RECURSE
  "libhdb_engine.a"
)
