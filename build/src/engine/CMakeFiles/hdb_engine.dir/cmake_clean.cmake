file(REMOVE_RECURSE
  "CMakeFiles/hdb_engine.dir/binder.cc.o"
  "CMakeFiles/hdb_engine.dir/binder.cc.o.d"
  "CMakeFiles/hdb_engine.dir/database.cc.o"
  "CMakeFiles/hdb_engine.dir/database.cc.o.d"
  "CMakeFiles/hdb_engine.dir/lexer.cc.o"
  "CMakeFiles/hdb_engine.dir/lexer.cc.o.d"
  "CMakeFiles/hdb_engine.dir/parser.cc.o"
  "CMakeFiles/hdb_engine.dir/parser.cc.o.d"
  "libhdb_engine.a"
  "libhdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
