# Empty compiler generated dependencies file for hdb_engine.
# This may be replaced when dependencies are built.
