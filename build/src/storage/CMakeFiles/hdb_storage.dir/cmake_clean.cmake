file(REMOVE_RECURSE
  "CMakeFiles/hdb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/hdb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/hdb_storage.dir/clock_replacer.cc.o"
  "CMakeFiles/hdb_storage.dir/clock_replacer.cc.o.d"
  "CMakeFiles/hdb_storage.dir/disk_manager.cc.o"
  "CMakeFiles/hdb_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/hdb_storage.dir/ext_hash.cc.o"
  "CMakeFiles/hdb_storage.dir/ext_hash.cc.o.d"
  "CMakeFiles/hdb_storage.dir/heap.cc.o"
  "CMakeFiles/hdb_storage.dir/heap.cc.o.d"
  "CMakeFiles/hdb_storage.dir/lookaside_queue.cc.o"
  "CMakeFiles/hdb_storage.dir/lookaside_queue.cc.o.d"
  "CMakeFiles/hdb_storage.dir/pool_governor.cc.o"
  "CMakeFiles/hdb_storage.dir/pool_governor.cc.o.d"
  "libhdb_storage.a"
  "libhdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
