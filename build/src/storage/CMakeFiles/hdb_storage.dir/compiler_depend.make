# Empty compiler generated dependencies file for hdb_storage.
# This may be replaced when dependencies are built.
