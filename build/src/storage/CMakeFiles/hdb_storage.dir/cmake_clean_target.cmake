file(REMOVE_RECURSE
  "libhdb_storage.a"
)
