
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/hdb_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/clock_replacer.cc" "src/storage/CMakeFiles/hdb_storage.dir/clock_replacer.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/clock_replacer.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/storage/CMakeFiles/hdb_storage.dir/disk_manager.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/disk_manager.cc.o.d"
  "/root/repo/src/storage/ext_hash.cc" "src/storage/CMakeFiles/hdb_storage.dir/ext_hash.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/ext_hash.cc.o.d"
  "/root/repo/src/storage/heap.cc" "src/storage/CMakeFiles/hdb_storage.dir/heap.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/heap.cc.o.d"
  "/root/repo/src/storage/lookaside_queue.cc" "src/storage/CMakeFiles/hdb_storage.dir/lookaside_queue.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/lookaside_queue.cc.o.d"
  "/root/repo/src/storage/pool_governor.cc" "src/storage/CMakeFiles/hdb_storage.dir/pool_governor.cc.o" "gcc" "src/storage/CMakeFiles/hdb_storage.dir/pool_governor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hdb_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
