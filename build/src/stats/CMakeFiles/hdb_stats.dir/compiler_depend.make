# Empty compiler generated dependencies file for hdb_stats.
# This may be replaced when dependencies are built.
