file(REMOVE_RECURSE
  "CMakeFiles/hdb_stats.dir/feedback.cc.o"
  "CMakeFiles/hdb_stats.dir/feedback.cc.o.d"
  "CMakeFiles/hdb_stats.dir/greenwald.cc.o"
  "CMakeFiles/hdb_stats.dir/greenwald.cc.o.d"
  "CMakeFiles/hdb_stats.dir/histogram.cc.o"
  "CMakeFiles/hdb_stats.dir/histogram.cc.o.d"
  "CMakeFiles/hdb_stats.dir/join_histogram.cc.o"
  "CMakeFiles/hdb_stats.dir/join_histogram.cc.o.d"
  "CMakeFiles/hdb_stats.dir/proc_stats.cc.o"
  "CMakeFiles/hdb_stats.dir/proc_stats.cc.o.d"
  "CMakeFiles/hdb_stats.dir/stats_registry.cc.o"
  "CMakeFiles/hdb_stats.dir/stats_registry.cc.o.d"
  "CMakeFiles/hdb_stats.dir/string_stats.cc.o"
  "CMakeFiles/hdb_stats.dir/string_stats.cc.o.d"
  "libhdb_stats.a"
  "libhdb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
