file(REMOVE_RECURSE
  "libhdb_stats.a"
)
