
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/feedback.cc" "src/stats/CMakeFiles/hdb_stats.dir/feedback.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/feedback.cc.o.d"
  "/root/repo/src/stats/greenwald.cc" "src/stats/CMakeFiles/hdb_stats.dir/greenwald.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/greenwald.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/hdb_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/join_histogram.cc" "src/stats/CMakeFiles/hdb_stats.dir/join_histogram.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/join_histogram.cc.o.d"
  "/root/repo/src/stats/proc_stats.cc" "src/stats/CMakeFiles/hdb_stats.dir/proc_stats.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/proc_stats.cc.o.d"
  "/root/repo/src/stats/stats_registry.cc" "src/stats/CMakeFiles/hdb_stats.dir/stats_registry.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/stats_registry.cc.o.d"
  "/root/repo/src/stats/string_stats.cc" "src/stats/CMakeFiles/hdb_stats.dir/string_stats.cc.o" "gcc" "src/stats/CMakeFiles/hdb_stats.dir/string_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/hdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/hdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hdb_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
