file(REMOVE_RECURSE
  "libhdb_txn.a"
)
