file(REMOVE_RECURSE
  "CMakeFiles/hdb_txn.dir/lock_manager.cc.o"
  "CMakeFiles/hdb_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/hdb_txn.dir/transaction.cc.o"
  "CMakeFiles/hdb_txn.dir/transaction.cc.o.d"
  "libhdb_txn.a"
  "libhdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
