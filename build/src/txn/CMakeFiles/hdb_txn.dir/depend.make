# Empty dependencies file for hdb_txn.
# This may be replaced when dependencies are built.
