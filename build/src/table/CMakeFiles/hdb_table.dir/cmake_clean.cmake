file(REMOVE_RECURSE
  "CMakeFiles/hdb_table.dir/row_codec.cc.o"
  "CMakeFiles/hdb_table.dir/row_codec.cc.o.d"
  "CMakeFiles/hdb_table.dir/table_heap.cc.o"
  "CMakeFiles/hdb_table.dir/table_heap.cc.o.d"
  "libhdb_table.a"
  "libhdb_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
