file(REMOVE_RECURSE
  "libhdb_table.a"
)
