
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/row_codec.cc" "src/table/CMakeFiles/hdb_table.dir/row_codec.cc.o" "gcc" "src/table/CMakeFiles/hdb_table.dir/row_codec.cc.o.d"
  "/root/repo/src/table/table_heap.cc" "src/table/CMakeFiles/hdb_table.dir/table_heap.cc.o" "gcc" "src/table/CMakeFiles/hdb_table.dir/table_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/hdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hdb_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
