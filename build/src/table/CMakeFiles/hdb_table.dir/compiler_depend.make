# Empty compiler generated dependencies file for hdb_table.
# This may be replaced when dependencies are built.
