# Empty dependencies file for hdb_profile.
# This may be replaced when dependencies are built.
