file(REMOVE_RECURSE
  "CMakeFiles/hdb_profile.dir/analyzer.cc.o"
  "CMakeFiles/hdb_profile.dir/analyzer.cc.o.d"
  "CMakeFiles/hdb_profile.dir/index_consultant.cc.o"
  "CMakeFiles/hdb_profile.dir/index_consultant.cc.o.d"
  "CMakeFiles/hdb_profile.dir/tracer.cc.o"
  "CMakeFiles/hdb_profile.dir/tracer.cc.o.d"
  "libhdb_profile.a"
  "libhdb_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
