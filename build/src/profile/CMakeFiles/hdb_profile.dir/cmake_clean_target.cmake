file(REMOVE_RECURSE
  "libhdb_profile.a"
)
