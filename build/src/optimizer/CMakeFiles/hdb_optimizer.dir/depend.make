# Empty dependencies file for hdb_optimizer.
# This may be replaced when dependencies are built.
