file(REMOVE_RECURSE
  "libhdb_optimizer.a"
)
