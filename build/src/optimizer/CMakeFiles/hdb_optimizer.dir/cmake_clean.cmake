file(REMOVE_RECURSE
  "CMakeFiles/hdb_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/hdb_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/enumerator.cc.o"
  "CMakeFiles/hdb_optimizer.dir/enumerator.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/expr.cc.o"
  "CMakeFiles/hdb_optimizer.dir/expr.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/governor.cc.o"
  "CMakeFiles/hdb_optimizer.dir/governor.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/hdb_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/plan.cc.o"
  "CMakeFiles/hdb_optimizer.dir/plan.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/plan_cache.cc.o"
  "CMakeFiles/hdb_optimizer.dir/plan_cache.cc.o.d"
  "CMakeFiles/hdb_optimizer.dir/selectivity.cc.o"
  "CMakeFiles/hdb_optimizer.dir/selectivity.cc.o.d"
  "libhdb_optimizer.a"
  "libhdb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
