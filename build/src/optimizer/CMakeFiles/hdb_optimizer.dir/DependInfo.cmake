
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/enumerator.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/enumerator.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/enumerator.cc.o.d"
  "/root/repo/src/optimizer/expr.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/expr.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/expr.cc.o.d"
  "/root/repo/src/optimizer/governor.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/governor.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/governor.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/plan.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/plan.cc.o.d"
  "/root/repo/src/optimizer/plan_cache.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/plan_cache.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/plan_cache.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/selectivity.cc.o" "gcc" "src/optimizer/CMakeFiles/hdb_optimizer.dir/selectivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/hdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/hdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hdb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
