# Empty dependencies file for hdb_os.
# This may be replaced when dependencies are built.
