file(REMOVE_RECURSE
  "CMakeFiles/hdb_os.dir/dtt_model.cc.o"
  "CMakeFiles/hdb_os.dir/dtt_model.cc.o.d"
  "CMakeFiles/hdb_os.dir/memory_env.cc.o"
  "CMakeFiles/hdb_os.dir/memory_env.cc.o.d"
  "CMakeFiles/hdb_os.dir/virtual_disk.cc.o"
  "CMakeFiles/hdb_os.dir/virtual_disk.cc.o.d"
  "libhdb_os.a"
  "libhdb_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdb_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
