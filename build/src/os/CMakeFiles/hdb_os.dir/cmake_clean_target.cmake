file(REMOVE_RECURSE
  "libhdb_os.a"
)
