
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/dtt_model.cc" "src/os/CMakeFiles/hdb_os.dir/dtt_model.cc.o" "gcc" "src/os/CMakeFiles/hdb_os.dir/dtt_model.cc.o.d"
  "/root/repo/src/os/memory_env.cc" "src/os/CMakeFiles/hdb_os.dir/memory_env.cc.o" "gcc" "src/os/CMakeFiles/hdb_os.dir/memory_env.cc.o.d"
  "/root/repo/src/os/virtual_disk.cc" "src/os/CMakeFiles/hdb_os.dir/virtual_disk.cc.o" "gcc" "src/os/CMakeFiles/hdb_os.dir/virtual_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
