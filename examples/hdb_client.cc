// hdb_client: command-line client for a running hdb_server.
//
// Reads SQL statements from stdin (one per line) and prints results —
// a minimal interactive session over the DESIGN.md §12 wire protocol,
// including the structured answers a loaded server gives: kOverloaded
// frames print the retry hint instead of an opaque failure.
//
// Build & run:   ./build/examples/hdb_client <port> [sql...]
// With SQL arguments it runs them and exits; without, it reads stdin.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.h"

using namespace hdb;

namespace {

void RunOne(net::Client& client, const std::string& sql) {
  auto r = client.Query(sql);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kOverloaded) {
      std::printf("!! server overloaded; retry in %u ms\n",
                  client.retry_after_ms());
    } else {
      std::printf("!! %s\n", r.status().ToString().c_str());
    }
    return;
  }
  if (!r->columns.empty()) {
    for (const auto& c : r->columns) std::printf("%-14s", c.c_str());
    std::printf("\n");
    for (const auto& row : r->rows) {
      for (const auto& v : row) std::printf("%-14s", v.ToString().c_str());
      std::printf("\n");
    }
    std::printf("(%llu rows)\n",
                static_cast<unsigned long long>(r->row_count));
  } else {
    std::printf("ok (%llu rows affected)\n",
                static_cast<unsigned long long>(r->rows_affected));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: hdb_client <port> [sql...]\n");
    return 2;
  }
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected (conn_id %llu)\n",
              static_cast<unsigned long long>((*client)->conn_id()));

  if (argc > 2) {
    for (int i = 2; i < argc; ++i) RunOne(**client, argv[i]);
  } else {
    std::string line;
    while (std::printf("sql> "), std::getline(std::cin, line)) {
      if (line == "\\q" || line == "quit") break;
      if (line.empty()) continue;
      RunOne(**client, line);
      if ((*client)->server_said_goodbye()) {
        std::printf("server is draining: %s\n",
                    (*client)->goodbye_reason().c_str());
        break;
      }
    }
  }
  (void)(*client)->Close();
  return 0;
}
