// Embedded co-existence: the paper's front-line scenario (§1–§2).
//
// A database embedded in an application "cannot normally use all the
// machine's resources. Rather, it must co-exist with other software ...
// whose configuration and memory usage vary from installation to
// installation, and from moment to moment."
//
// This example simulates a work day on a 128 MB machine: the embedded
// database serves a steady workload while other applications come and go.
// Watch the buffer pool grow into free memory, retreat when a big app
// launches, and return when it exits — no DBA, no knobs.
//
// Build & run:   ./build/examples/embedded_coexistence
#include <cstdio>

#include "engine/database.h"

using namespace hdb;

namespace {
constexpr uint64_t kMB = 1ull << 20;
}

int main() {
  engine::DatabaseOptions opts;
  opts.physical_memory_bytes = 128 * kMB;
  opts.initial_pool_frames = 512;  // starts at 2 MB
  opts.pool_governor.min_bytes = 1 * kMB;
  opts.pool_governor.max_bytes = 64 * kMB;

  auto db = engine::Database::Open(opts);
  if (!db.ok()) return 1;
  auto conn = (*db)->Connect();
  if (!conn.ok()) return 1;

  // The application's data: an order log it appends to and reports over.
  (void)(*conn)->Execute(
      "CREATE TABLE orders (id INT NOT NULL, item INT, qty INT, "
      "note VARCHAR(120))");
  std::vector<table::Row> rows;
  for (int i = 0; i < 300000; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i % 500), Value::Int(1 + i % 9),
                    Value::String(std::string(100, 'n'))});
  }
  if (!(*db)->LoadTable("orders", rows).ok()) return 1;

  auto& env = (*db)->memory_env();
  auto hour = [&](const char* what, bool busy) {
    // One simulated hour: the app queries periodically; virtual time
    // advances in governor-poll-sized steps.
    for (int tick = 0; tick < 8; ++tick) {
      if (busy) {
        (void)(*conn)->Execute(
            "SELECT item, SUM(qty) FROM orders WHERE item < 250 GROUP BY "
            "item");
      }
      (*db)->Tick(8 * 60 * 1000 * 1000ll / 8);
    }
    std::printf("%-28s pool=%5.1fMB  free=%5.1fMB  (ws=%5.1fMB)\n", what,
                (*db)->pool().CurrentBytes() / double(kMB),
                env.FreePhysical() / double(kMB),
                env.WorkingSetSize("hdb-server") / double(kMB));
  };

  std::printf("hour-by-hour on a 128MB machine:\n\n");
  hour("09:00 app starts, idle", false);
  hour("10:00 reports running", true);
  hour("11:00 reports running", true);

  env.SetAllocation("video-call", 85 * kMB);
  hour("12:00 +video call (85MB)", true);
  hour("13:00 video call ongoing", true);

  env.SetAllocation("photo-editor", 25 * kMB);
  hour("14:00 +photo editor (25MB)", true);

  env.RemoveProcess("video-call");
  hour("15:00 call ends", true);
  env.RemoveProcess("photo-editor");
  hour("16:00 editor closed", true);
  hour("17:00 reports running", true);
  hour("18:00 idle again", false);

  const auto& history = (*db)->pool_governor().history();
  std::printf("\n%zu governor polls; every decision follows Eq.(1)/(2) and\n"
              "the miss-gated growth rule of paper §2 — with zero operator\n"
              "intervention.\n",
              history.size());
  return 0;
}
