// hdb_server: HolisticDB as a network server.
//
// The same self-managing engine the embedded examples use, fronted by the
// wire protocol and epoll server of DESIGN.md §12: thousands of client
// connections multiplex onto a handful of workers, and the admission
// gate's multiprogramming level — not the connection count — bounds
// concurrent execution. SIGTERM (or Ctrl-C) drains gracefully: every
// connection gets a Goodbye frame before the process exits.
//
// Build & run:   ./build/examples/hdb_server [port]
// Then talk to it with ./build/examples/hdb_client <port>.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "engine/database.h"
#include "net/server.h"

using namespace hdb;

namespace {

net::Server* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: RequestShutdown is one eventfd write.
  if (g_server != nullptr) g_server->RequestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  auto db = engine::Database::Open();
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  // Seed a table so a fresh client has something to query.
  auto conn = (*db)->Connect();
  if (conn.ok()) {
    (void)(*conn)->Execute("CREATE TABLE greetings (id INT, msg VARCHAR)");
    (void)(*conn)->Execute("INSERT INTO greetings VALUES (1, 'hello, wire')");
  }

  net::ServerOptions options;
  options.port = port;
  options.workers = 4;
  options.idle_timeout_ms = 5 * 60 * 1000;
  auto server = net::Server::Start(db->get(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("holisticdb serving on 127.0.0.1:%u (SIGTERM drains)\n",
              (*server)->port());
  while (!(*server)->finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  g_server = nullptr;
  (*server)->Stop();
  std::printf("drained; bye\n");
  return 0;
}
