// Quickstart: HolisticDB as an embedded SQL database.
//
// The zero-administration model of the paper's §1: open a database with no
// configuration, connect, run SQL. Statistics, buffer management and
// optimization manage themselves.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "engine/database.h"

using namespace hdb;

namespace {

void Run(engine::Connection& conn, const std::string& sql) {
  auto r = conn.Execute(sql);
  if (!r.ok()) {
    std::printf("!! %s\n   %s\n", sql.c_str(), r.status().ToString().c_str());
    return;
  }
  std::printf(">> %s\n", sql.c_str());
  if (!r->columns.empty()) {
    for (const auto& c : r->columns) std::printf("%-14s", c.c_str());
    std::printf("\n");
    for (const auto& row : r->rows) {
      for (const auto& v : row) std::printf("%-14s", v.ToString().c_str());
      std::printf("\n");
    }
  }
  if (r->rows_affected > 0) {
    std::printf("   (%llu rows affected)\n",
                static_cast<unsigned long long>(r->rows_affected));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Open: no tuning knobs required. Every option has a self-managing
  // default (the paper's thesis).
  auto db = engine::Database::Open();
  if (!db.ok()) return 1;
  auto conn = (*db)->Connect();
  if (!conn.ok()) return 1;
  engine::Connection& c = **conn;

  Run(c, "CREATE TABLE department (id INT NOT NULL, name VARCHAR(30))");
  Run(c, "CREATE TABLE employee (id INT NOT NULL, name VARCHAR(30), "
         "dept INT, salary DOUBLE)");
  Run(c, "INSERT INTO department VALUES (10, 'engineering'), (20, 'sales')");
  Run(c, "INSERT INTO employee VALUES "
         "(1, 'ada', 10, 95000), (2, 'grace', 10, 105000), "
         "(3, 'edsger', 20, 88000), (4, 'barbara', 10, 99000)");

  Run(c, "SELECT e.name, d.name AS dept, e.salary FROM employee e "
         "JOIN department d ON e.dept = d.id "
         "WHERE e.salary > 90000 ORDER BY e.salary DESC");

  Run(c, "SELECT d.name AS dept, COUNT(*) AS heads, AVG(e.salary) AS avg_sal "
         "FROM employee e JOIN department d ON e.dept = d.id "
         "GROUP BY d.name ORDER BY d.name");

  // Transactions with rollback.
  Run(c, "BEGIN");
  Run(c, "UPDATE employee SET salary = salary * 2 WHERE dept = 10");
  Run(c, "ROLLBACK");
  Run(c, "SELECT MAX(salary) AS top FROM employee");

  // The optimizer explains itself.
  auto explain = c.Explain(
      "SELECT e.name FROM employee e JOIN department d ON e.dept = d.id "
      "WHERE d.name = 'engineering'");
  if (explain.ok()) {
    std::printf("EXPLAIN:\n%s\n", explain->c_str());
  }

  // Stored procedures train the per-connection plan cache (paper §4.1).
  Run(c, "CREATE PROCEDURE by_dept (:d) AS "
         "SELECT name FROM employee WHERE dept = :d");
  for (int i = 0; i < 6; ++i) Run(c, "CALL by_dept(10)");
  const auto& cache = c.plan_cache().stats();
  std::printf("plan cache: %llu optimizations, %llu cached uses\n",
              static_cast<unsigned long long>(cache.optimizations),
              static_cast<unsigned long long>(cache.cached_uses));
  return 0;
}
