// Handheld deployment: the paper's Windows CE story (§1, §2, §4.1, §4.2).
//
// SQL Anywhere ran as "a mobile database installed on a handheld device",
// and the paper's headline optimizer claim is a 100-way join optimized and
// executed on a Dell Axim with a 3 MB buffer pool. This example configures
// HolisticDB the same way: SD-card storage (flat DTT), CE-mode pool
// governor (no working-set reporting), 3 MB pool, 1 MB optimizer arena —
// then calibrates the device and runs a 20-way join.
//
// Build & run:   ./build/examples/handheld_device
#include <cstdio>

#include "engine/database.h"

using namespace hdb;

int main() {
  engine::DatabaseOptions opts;
  opts.device = engine::DeviceKind::kFlash;        // 512 MB SD card
  opts.physical_memory_bytes = 32ull << 20;        // a 32 MB handheld
  opts.initial_pool_frames = 768;                  // 3 MB pool
  opts.pool_governor.ce_mode = true;               // no working-set API
  opts.pool_governor.min_bytes = 1 << 20;
  opts.pool_governor.max_bytes = 8 << 20;
  opts.optimizer_arena_bytes = 1 << 20;            // 1 MB optimizer memory

  auto db = engine::Database::Open(opts);
  if (!db.ok()) return 1;
  auto conn = (*db)->Connect();
  if (!conn.ok()) return 1;
  engine::Connection& c = **conn;

  // Calibrate the SD card: the DTT model in the catalog now reflects the
  // device's flat random-access profile (paper Figure 3), and could be
  // deployed to thousands of identical devices as a text blob.
  if (!c.Execute("CALIBRATE DATABASE").ok()) return 1;
  const auto& dtt = (*db)->catalog().dtt_model();
  std::printf("calibrated '%s': seq read %.0fus, random read %.0fus "
              "(flat), write %.0fus\n\n",
              dtt.device_name().c_str(),
              dtt.MicrosPerPage(os::DttOp::kRead, 4096, 1),
              dtt.MicrosPerPage(os::DttOp::kRead, 4096, 100000),
              dtt.MicrosPerPage(os::DttOp::kWrite, 4096, 100000));

  // A synchronized mobile schema: 20 small reference tables joined into
  // one report — complex application design on a tiny device, which the
  // paper notes is the norm ("developers tend to complicate, rather than
  // simplify, application design when they migrate to business
  // front-lines").
  constexpr int kTables = 20;
  for (int t = 0; t < kTables; ++t) {
    const std::string name = "ref" + std::to_string(t);
    if (!c.Execute("CREATE TABLE " + name +
                   " (a INT NOT NULL, b INT NOT NULL)")
             .ok()) {
      return 1;
    }
    std::vector<table::Row> rows;
    for (int i = 0; i < 8; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i)});
    }
    if (!(*db)->LoadTable(name, rows).ok()) return 1;
  }
  std::string sql = "SELECT COUNT(*) FROM ref0";
  for (int t = 1; t < kTables; ++t) sql += ", ref" + std::to_string(t);
  sql += " WHERE ";
  for (int t = 0; t + 1 < kTables; ++t) {
    if (t > 0) sql += " AND ";
    sql += "ref" + std::to_string(t) + ".b = ref" + std::to_string(t + 1) +
           ".a";
  }

  auto r = c.Execute(sql);
  if (!r.ok()) {
    std::printf("join failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("20-way join on the device:\n");
  std::printf("  result rows        : %lld\n",
              static_cast<long long>(r->rows[0][0].AsInt()));
  std::printf("  pool size          : %llu bytes (3 MB budget)\n",
              static_cast<unsigned long long>((*db)->pool().CurrentBytes()));
  std::printf("  optimizer memory   : %zu bytes (1 MB budget)\n",
              r->diag.enumeration.arena_high_water);
  std::printf("  enumeration visits : %llu (governor-bounded)\n",
              static_cast<unsigned long long>(
                  r->diag.enumeration.nodes_visited));
  std::printf("\nCE-mode governor: the pool never grows unless device free "
              "memory rises,\nbut always shrinks for foreground apps "
              "(paper §2, final paragraph).\n");
  return 0;
}
