// A tour of the self-management loop working "in concert" (§3, §4, §5):
//
//   1. statistics appear automatically as data loads;
//   2. the data drifts; plain DML maintenance keeps counts but execution
//      feedback sharpens the distribution knowledge — watch an estimate
//      correct itself after a few queries;
//   3. the Application Profiler watches the workload and flags the
//      client-side join anti-pattern;
//   4. the Index Consultant turns the optimizer's own virtual-index
//      wishes into a CREATE INDEX, and the workload gets cheaper.
//
// Build & run:   ./build/examples/self_tuning_tour
#include <cstdio>

#include "engine/database.h"
#include "profile/analyzer.h"
#include "profile/index_consultant.h"
#include "profile/tracer.h"

using namespace hdb;

int main() {
  auto db = engine::Database::Open();
  if (!db.ok()) return 1;
  auto conn = (*db)->Connect();
  if (!conn.ok()) return 1;
  engine::Connection& c = **conn;

  // --- 1. statistics for free -------------------------------------------
  (void)c.Execute(
      "CREATE TABLE sales (id INT NOT NULL, region INT, amount DOUBLE)");
  std::vector<table::Row> rows;
  Rng rng(1);
  for (int i = 0; i < 30000; ++i) {
    rows.push_back({Value::Int(i),
                    Value::Int(static_cast<int32_t>(rng.Uniform(5000))),
                    Value::Double(rng.NextDouble() * 500)});
  }
  if (!(*db)->LoadTable("sales", rows).ok()) return 1;
  const uint32_t oid = (*db)->catalog().GetTable("sales").value()->oid;
  std::printf("1. LOAD TABLE built histograms automatically:\n");
  std::printf("   sel(region = 7) = %.6f   (truth: ~0.0002)\n\n",
              (*db)->stats().SelEquals(oid, 1, Value::Int(7)));

  // --- 2. drift + feedback ----------------------------------------------
  for (int i = 0; i < 100; ++i) {
    (void)c.Execute(
        "INSERT INTO sales VALUES (0, 7, 1), (0, 7, 1), (0, 7, 1), "
        "(0, 7, 1), (0, 7, 1), (0, 7, 1), (0, 7, 1), (0, 7, 1), "
        "(0, 7, 1), (0, 7, 1), (0, 7, 1), (0, 7, 1), (0, 7, 1), "
        "(0, 7, 1), (0, 7, 1), (0, 7, 1), (0, 7, 1), (0, 7, 1), "
        "(0, 7, 1), (0, 7, 1)");
  }
  std::printf("2. region 7 exploded from ~0.02%% to ~6%% of rows. Per-row\n"
              "   DML maintenance adds the mass to a bucket, but only "
              "execution\n   feedback recognizes the value as a new "
              "frequent-value singleton:\n");
  std::printf("   sel(region = 7) after drift : %.4f\n",
              (*db)->stats().SelEquals(oid, 1, Value::Int(7)));
  for (int i = 0; i < 4; ++i) {
    (void)c.Execute("SELECT COUNT(*) FROM sales WHERE region = 7");
  }
  std::printf("   sel(region = 7) after 4 runs: %.4f   (truth: ~0.0625)\n\n",
              (*db)->stats().SelEquals(oid, 1, Value::Int(7)));

  // --- 3. application profiling ------------------------------------------
  profile::RequestTracer tracer;
  if (!tracer.Attach(db->get(), nullptr).ok()) return 1;
  std::vector<std::string> workload;
  for (int i = 0; i < 20; ++i) {
    const std::string q =
        "SELECT amount FROM sales WHERE id = " + std::to_string(i * 100);
    workload.push_back(q);
    (void)c.Execute(q);
  }
  tracer.Detach();
  std::printf("3. the profiler watched %zu requests and found:\n",
              tracer.events().size());
  profile::WorkloadAnalyzer analyzer;
  for (const auto& f : analyzer.Analyze(tracer.events(), db->get())) {
    std::printf("   - %s\n", f.message.c_str());
  }

  // --- 4. index consultant -----------------------------------------------
  profile::IndexConsultant consultant(db->get());
  auto analysis = consultant.Analyze(workload);
  if (!analysis.ok()) return 1;
  std::printf("\n4. the Index Consultant (from the optimizer's own "
              "virtual-index requests):\n");
  for (const auto& rec : analysis->recommendations) {
    std::printf("   %s\n", rec.ddl.c_str());
  }
  if (!analysis->recommendations.empty()) {
    const auto& rec = analysis->recommendations.front();
    (void)c.Execute(rec.ddl);
    auto after = c.Execute(workload[0]);
    std::printf("   applied; the lookup now runs as:\n");
    auto explain = c.Explain(workload[0]);
    if (explain.ok()) std::printf("%s", explain->c_str());
  }
  return 0;
}
