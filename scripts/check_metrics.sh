#!/usr/bin/env bash
# Metric hygiene checks (wired into ctest as MetricNames.check).
#
#   check_metrics.sh <repo-root>          name check only (fast, always on)
#   check_metrics.sh <repo-root> --tsan   name check, then configure a
#                                         ThreadSanitizer build and run the
#                                         observability-path tests under it
#
# Name check: every string literal in src/obs/metric_names.h and
# src/obs/span_names.h must be dotted snake_case
# (`^[a-z0-9_]+(\.[a-z0-9_]+)+$`) and unique across both headers. A
# space, hyphen, or uppercase letter in a metric or span name silently
# forks dashboards; a duplicate silently merges two meanings into one
# series (or one Perfetto track).
#
# Sync check: the headers and the code registering against them must
# agree — every constant is referenced (`obs::kName`) somewhere in src/,
# and no dotted metric-name string literal appears in src/ outside the
# headers. Additionally the wait.* span-name count must equal
# kWaitCauseCount in obs/trace.h — WaitCauseName() is a bijection, and a
# cause added without its name (or vice versa) breaks it.
set -u

root="${1:?usage: check_metrics.sh <repo-root> [--tsan]}"
mode="${2:-}"
names_h="$root/src/obs/metric_names.h"
spans_h="$root/src/obs/span_names.h"
trace_h="$root/src/obs/trace.h"

for h in "$names_h" "$spans_h" "$trace_h"; do
  if [[ ! -f "$h" ]]; then
    echo "check_metrics: missing $h" >&2
    exit 1
  fi
done

# Pull the "..." literal off every constant definition line (comments may
# quote arbitrary prose, so they are skipped).
names=$(grep -h 'inline constexpr char' "$names_h" "$spans_h" |
        grep -o '"[^"]*"' | tr -d '"')

if [[ -z "$names" ]]; then
  echo "check_metrics: no metric names found in $names_h / $spans_h" >&2
  exit 1
fi

fail=0
while IFS= read -r name; do
  if ! printf '%s\n' "$name" | grep -Eq '^[a-z0-9_]+(\.[a-z0-9_]+)+$'; then
    echo "check_metrics: bad metric name (want dotted snake_case): '$name'" >&2
    fail=1
  fi
done <<< "$names"

dupes=$(printf '%s\n' "$names" | sort | uniq -d)
if [[ -n "$dupes" ]]; then
  echo "check_metrics: duplicate metric names:" >&2
  printf '%s\n' "$dupes" >&2
  fail=1
fi

# Defined => registered: a constant nothing references is drift (the
# registering call was renamed or deleted without updating the header).
for const in $(grep -ho 'char k[A-Za-z0-9_]*' "$names_h" "$spans_h" |
               awk '{print $2}'); do
  if ! grep -rq "obs::${const}\b" "$root/src" \
        --include='*.cc' --include='*.h' \
        --exclude='metric_names.h' --exclude='span_names.h'; then
    echo "check_metrics: obs::$const is defined but never registered" >&2
    fail=1
  fi
done

# WaitCauseName bijection: one wait.* span name per WaitCause enumerator.
wait_names=$(printf '%s\n' "$names" | grep -c '^wait\.')
wait_causes=$(grep -o 'kWaitCauseCount = [0-9]*' "$trace_h" |
              awk '{print $3}')
if [[ -z "$wait_causes" ]]; then
  echo "check_metrics: kWaitCauseCount not found in $trace_h" >&2
  fail=1
elif [[ "$wait_names" -ne "$wait_causes" ]]; then
  echo "check_metrics: $wait_names wait.* span names but" \
       "kWaitCauseCount = $wait_causes (WaitCauseName bijection broken)" >&2
  fail=1
fi

# Registered => defined: all registrations must go through the header's
# constants. A raw dotted literal ("wal.foo") in src/ bypasses the name
# check above and can silently fork a series the header spells otherwise.
stray=$(grep -rn '"[a-z0-9_]\+\(\.[a-z0-9_]\+\)\+"' "$root/src" \
        --include='*.cc' --include='*.h' \
        --exclude='metric_names.h' --exclude='span_names.h' |
        grep -E 'Register(Counter|Gauge|Callback)' || true)
if [[ -n "$stray" ]]; then
  echo "check_metrics: raw metric-name literals (use obs:: constants):" >&2
  printf '%s\n' "$stray" >&2
  fail=1
fi

count=$(printf '%s\n' "$names" | wc -l)
if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_metrics: $count metric/span names, all unique dotted" \
     "snake_case, all registered via obs:: constants," \
     "$wait_names wait causes in sync"

if [[ "$mode" == "--tsan" ]]; then
  # Race-check the observability paths: the registry hammered from many
  # threads, sys.* scans racing live instrumentation, tracer sink writes,
  # the concurrent-session SQL mix, the WAL/recovery paths (group
  # commit's flusher thread + concurrent committers, crash sweeps that
  # tear the Database down while the flusher is live), and the spill
  # scheduler (concurrent starved statements sharing the DecisionLog and
  # temp-page path), the network front end (epoll loop + workers +
  # client threads hammering one server, DESIGN.md §12 — the `net` ctest
  # label), and the intra-query parallel executor (exchange worker crews
  # sharing one TaskMemoryContext and PacketQueue, DESIGN.md §13 — the
  # `parallel` ctest label).
  build="$root/build-tsan-obs"
  cmake -B "$build" -S "$root" -DHDB_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo || exit 1
  cmake --build "$build" -j "$(nproc)" \
        --target obs_test profile_test concurrency_test wal_test \
                 recovery_test spill_parity_test trace_test \
                 parallel_parity_test \
                 net_wire_test net_server_test net_smoke_test || exit 1
  (cd "$build" && ctest --output-on-failure \
      -R 'MetricsRegistry|DecisionLog|SysTables|ExplainAnalyze|GovernorLog|Tracer|Concurren|Wal|CheckpointGovernor|Recovery|CrashSweep|SpillParity|StatementTrace|StatementRegistry|ActiveStatements|SlowStatements|TraceExport') || exit 1
  (cd "$build" && ctest --output-on-failure -L net) || exit 1
  (cd "$build" && ctest --output-on-failure -L parallel) || exit 1
  echo "check_metrics: TSan observability+durability+net+parallel run clean"
fi
