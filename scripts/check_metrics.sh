#!/usr/bin/env bash
# Metric hygiene checks (wired into ctest as MetricNames.check).
#
#   check_metrics.sh <repo-root>          name check only (fast, always on)
#   check_metrics.sh <repo-root> --tsan   name check, then configure a
#                                         ThreadSanitizer build and run the
#                                         observability-path tests under it
#
# Name check: every string literal in src/obs/metric_names.h must be
# dotted snake_case (`^[a-z0-9_]+(\.[a-z0-9_]+)+$`) and unique. A space,
# hyphen, or uppercase letter in a metric name silently forks dashboards;
# a duplicate silently merges two meanings into one series.
set -u

root="${1:?usage: check_metrics.sh <repo-root> [--tsan]}"
mode="${2:-}"
names_h="$root/src/obs/metric_names.h"

if [[ ! -f "$names_h" ]]; then
  echo "check_metrics: missing $names_h" >&2
  exit 1
fi

# Pull the "..." literal off every constant definition line (comments may
# quote arbitrary prose, so they are skipped).
names=$(grep 'inline constexpr char' "$names_h" | grep -o '"[^"]*"' |
        tr -d '"')

if [[ -z "$names" ]]; then
  echo "check_metrics: no metric names found in $names_h" >&2
  exit 1
fi

fail=0
while IFS= read -r name; do
  if ! printf '%s\n' "$name" | grep -Eq '^[a-z0-9_]+(\.[a-z0-9_]+)+$'; then
    echo "check_metrics: bad metric name (want dotted snake_case): '$name'" >&2
    fail=1
  fi
done <<< "$names"

dupes=$(printf '%s\n' "$names" | sort | uniq -d)
if [[ -n "$dupes" ]]; then
  echo "check_metrics: duplicate metric names:" >&2
  printf '%s\n' "$dupes" >&2
  fail=1
fi

count=$(printf '%s\n' "$names" | wc -l)
if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_metrics: $count metric names, all unique dotted snake_case"

if [[ "$mode" == "--tsan" ]]; then
  # Race-check the observability paths: the registry hammered from many
  # threads, sys.* scans racing live instrumentation, tracer sink writes,
  # and the concurrent-session SQL mix.
  build="$root/build-tsan-obs"
  cmake -B "$build" -S "$root" -DHDB_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo || exit 1
  cmake --build "$build" -j "$(nproc)" \
        --target obs_test profile_test concurrency_test || exit 1
  (cd "$build" && ctest --output-on-failure \
      -R 'MetricsRegistry|DecisionLog|SysTables|ExplainAnalyze|GovernorLog|Tracer|Concurren') || exit 1
  echo "check_metrics: TSan observability run clean"
fi
