#!/usr/bin/env bash
# Metric hygiene checks (wired into ctest as MetricNames.check).
#
#   check_metrics.sh <repo-root>          name check only (fast, always on)
#   check_metrics.sh <repo-root> --tsan   name check, then configure a
#                                         ThreadSanitizer build and run the
#                                         observability-path tests under it
#
# Name check: every string literal in src/obs/metric_names.h must be
# dotted snake_case (`^[a-z0-9_]+(\.[a-z0-9_]+)+$`) and unique. A space,
# hyphen, or uppercase letter in a metric name silently forks dashboards;
# a duplicate silently merges two meanings into one series.
#
# Sync check: the header and the code registering against it must agree —
# every constant defined in metric_names.h is referenced (`obs::kName`)
# somewhere in src/, and no dotted metric-name string literal appears in
# src/ outside the header. Either drift (a constant renamed but left
# behind, or a subsystem registering a raw "wal.foo" literal) splits the
# metric namespace between the header and reality.
set -u

root="${1:?usage: check_metrics.sh <repo-root> [--tsan]}"
mode="${2:-}"
names_h="$root/src/obs/metric_names.h"

if [[ ! -f "$names_h" ]]; then
  echo "check_metrics: missing $names_h" >&2
  exit 1
fi

# Pull the "..." literal off every constant definition line (comments may
# quote arbitrary prose, so they are skipped).
names=$(grep 'inline constexpr char' "$names_h" | grep -o '"[^"]*"' |
        tr -d '"')

if [[ -z "$names" ]]; then
  echo "check_metrics: no metric names found in $names_h" >&2
  exit 1
fi

fail=0
while IFS= read -r name; do
  if ! printf '%s\n' "$name" | grep -Eq '^[a-z0-9_]+(\.[a-z0-9_]+)+$'; then
    echo "check_metrics: bad metric name (want dotted snake_case): '$name'" >&2
    fail=1
  fi
done <<< "$names"

dupes=$(printf '%s\n' "$names" | sort | uniq -d)
if [[ -n "$dupes" ]]; then
  echo "check_metrics: duplicate metric names:" >&2
  printf '%s\n' "$dupes" >&2
  fail=1
fi

# Defined => registered: a constant nothing references is drift (the
# registering call was renamed or deleted without updating the header).
for const in $(grep -o 'char k[A-Za-z0-9_]*' "$names_h" | awk '{print $2}'); do
  if ! grep -rq "obs::${const}\b" "$root/src" \
        --include='*.cc' --include='*.h' \
        --exclude='metric_names.h'; then
    echo "check_metrics: obs::$const is defined but never registered" >&2
    fail=1
  fi
done

# Registered => defined: all registrations must go through the header's
# constants. A raw dotted literal ("wal.foo") in src/ bypasses the name
# check above and can silently fork a series the header spells otherwise.
stray=$(grep -rn '"[a-z0-9_]\+\(\.[a-z0-9_]\+\)\+"' "$root/src" \
        --include='*.cc' --include='*.h' --exclude='metric_names.h' |
        grep -E 'Register(Counter|Gauge|Callback)' || true)
if [[ -n "$stray" ]]; then
  echo "check_metrics: raw metric-name literals (use obs:: constants):" >&2
  printf '%s\n' "$stray" >&2
  fail=1
fi

count=$(printf '%s\n' "$names" | wc -l)
if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_metrics: $count metric names, all unique dotted snake_case," \
     "all registered via obs:: constants"

if [[ "$mode" == "--tsan" ]]; then
  # Race-check the observability paths: the registry hammered from many
  # threads, sys.* scans racing live instrumentation, tracer sink writes,
  # the concurrent-session SQL mix, the WAL/recovery paths (group
  # commit's flusher thread + concurrent committers, crash sweeps that
  # tear the Database down while the flusher is live), and the spill
  # scheduler (concurrent starved statements sharing the DecisionLog and
  # temp-page path).
  build="$root/build-tsan-obs"
  cmake -B "$build" -S "$root" -DHDB_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo || exit 1
  cmake --build "$build" -j "$(nproc)" \
        --target obs_test profile_test concurrency_test wal_test \
                 recovery_test spill_parity_test || exit 1
  (cd "$build" && ctest --output-on-failure \
      -R 'MetricsRegistry|DecisionLog|SysTables|ExplainAnalyze|GovernorLog|Tracer|Concurren|Wal|CheckpointGovernor|Recovery|CrashSweep|SpillParity') || exit 1
  echo "check_metrics: TSan observability+durability run clean"
fi
