#!/usr/bin/env bash
# Latch-discipline lint (wired into ctest as LockDiscipline.check).
#
#   check_locks.sh <repo-root>
#
# Every latch in the tree — src/ AND tests/bench/examples, which run
# against the same engine and feed the same rank checker — must be
# declared through the ranked wrappers in src/common/lock_rank.h so it
# carries an explicit LockRank, the runtime hierarchy check sees it, and
# the Clang Thread Safety Analysis capability attributes apply. This lint
# fails on:
#
#   * naked std::mutex / std::shared_mutex / std::recursive_mutex
#     declarations (a rank-less latch is invisible to both checkers), and
#   * std:: guard types (std::lock_guard / std::unique_lock /
#     std::shared_lock / std::scoped_lock) — they would capture the
#     acquisition site inside the STL header instead of the caller, and
#     they carry no SCOPED_CAPABILITY annotation, so the engine uses
#     LockGuard / UniqueLock / SharedLock et al., and
#   * plain std::condition_variable — it only accepts std::mutex, so its
#     presence means a naked mutex is nearby; waits over ranked mutexes
#     use std::condition_variable_any, and
#   * raw pthread mutex/rwlock/cond primitives — the C-level loophole
#     around all of the above.
#
# Only src/common/lock_rank.* (the wrappers' own implementation) may name
# the raw primitives. Comments and string literals are stripped before
# matching so prose about std::mutex stays legal.
set -u

root="${1:?usage: check_locks.sh <repo-root>}"

if [[ ! -d "$root/src" ]]; then
  echo "check_locks: missing $root/src" >&2
  exit 1
fi

pattern='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b|pthread_(mutex|rwlock|cond)_t\b'

fail=0
checked=0
scan_dirs=("$root/src")
for d in tests bench examples; do
  if [[ -d "$root/$d" ]]; then
    scan_dirs+=("$root/$d")
  fi
done

while IFS= read -r -d '' file; do
  case "$file" in
    "$root"/src/common/lock_rank.h | "$root"/src/common/lock_rank.cc)
      continue ;;
  esac
  checked=$((checked + 1))
  # Strip // and /* */ comments and string literals, then grep. The sed is
  # line-local, which is enough: the forbidden tokens never span lines.
  hits=$(sed -e 's://.*$::' -e 's:/\*.*\*/::g' -e 's:"[^"]*"::g' "$file" |
         grep -nE "$pattern" |
         sed "s|^|$file:|" || true)
  if [[ -n "$hits" ]]; then
    echo "check_locks: naked synchronization primitive (declare it" \
         "through common/lock_rank.h so it carries a LockRank and the" \
         "thread-safety capability attributes):" >&2
    printf '%s\n' "$hits" >&2
    fail=1
  fi
done < <(find "${scan_dirs[@]}" \( -name '*.h' -o -name '*.cc' \) -print0 |
         sort -z)

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_locks: $checked files, every latch goes through the ranked" \
     "wrappers (std::condition_variable_any excepted by design)"
