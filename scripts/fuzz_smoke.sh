#!/usr/bin/env bash
# Wire-codec fuzz smoke (wired into ctest as FuzzWire.replay and
# FuzzWire.libfuzzer).
#
#   fuzz_smoke.sh <mode: replay|fuzz> <seedgen-bin> <fuzzer-bin> \
#                 <libfuzzer: ON|OFF> <workdir>
#
# Both modes start by regenerating the seed corpus with wire_fuzz_seedgen
# (the codec's own encoders write it, so it can never drift from the wire
# format), then:
#
#   replay  runs every seed through the harness once. Always available —
#           under GCC the fuzzer binary is the same LLVMFuzzerTestOneInput
#           with a plain replay main(), so the corpus and the decode
#           logic stay exercised on every toolchain.
#   fuzz    a short coverage-guided libFuzzer run over the seed dir
#           (fixed -seed for reproducibility, bounded by -runs and
#           -max_total_time so ctest stays fast). Exit 77 (ctest SKIP)
#           when the binary was not built with -DHDB_LIBFUZZER=ON —
#           libFuzzer needs Clang; the sanitize-matrix build:tsa stage
#           runs it for real.
set -u

mode="${1:?usage: fuzz_smoke.sh <replay|fuzz> <seedgen> <fuzzer> <ON|OFF> <workdir>}"
seedgen="${2:?missing seedgen binary}"
fuzzer="${3:?missing fuzzer binary}"
libfuzzer="${4:?missing libfuzzer ON|OFF flag}"
workdir="${5:?missing workdir}"

if [[ "$mode" == "fuzz" && "$libfuzzer" != "ON" ]]; then
  echo "fuzz_smoke: built without -DHDB_LIBFUZZER=ON (needs Clang) —" \
       "coverage-guided run unavailable, skipping (replay still covers" \
       "the corpus)"
  exit 77
fi

seeds="$workdir/wire-fuzz-seeds"
mkdir -p "$seeds"
"$seedgen" "$seeds" || exit 1

shopt -s nullglob
seed_files=("$seeds"/*.bin)
if [[ "${#seed_files[@]}" -eq 0 ]]; then
  echo "fuzz_smoke: seed generator produced no corpus files" >&2
  exit 1
fi

case "$mode" in
  replay)
    "$fuzzer" "${seed_files[@]}"
    ;;
  fuzz)
    artifacts="$workdir/wire-fuzz-artifacts"
    mkdir -p "$artifacts"
    "$fuzzer" -seed=1 -runs=20000 -max_total_time=20 -max_len=4096 \
              -artifact_prefix="$artifacts/" "$seeds"
    ;;
  *)
    echo "fuzz_smoke: unknown mode '$mode' (expected replay|fuzz)" >&2
    exit 2
    ;;
esac
