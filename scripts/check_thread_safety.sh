#!/usr/bin/env bash
# Thread-safety negative-compile harness (wired into ctest as
# ThreadSafety.negative; SKIP_RETURN_CODE 77).
#
#   check_thread_safety.sh <repo-root> [compiler]
#
# Clang's Thread Safety Analysis only exists under Clang, and the
# annotation macros in src/common/thread_annotations.h expand to nothing
# everywhere else — so a stubbed macro, a flag typo, or a silently-ignored
# attribute would make the build:tsa stage a no-op without anyone
# noticing. This harness proves the analysis has teeth:
#
#   * tests/thread_safety/positive_control.cc (correct locking) MUST
#     compile cleanly — otherwise the flags themselves are broken and a
#     "failing" negative proves nothing;
#   * tests/thread_safety/guarded_by_violation.cc (unlocked read of a
#     GUARDED_BY field) MUST fail to compile, with a thread-safety
#     diagnostic (not some unrelated error);
#   * tests/thread_safety/missing_requires.cc (REQUIRES helper called
#     without the lock) MUST fail the same way.
#
# Exit 77 (ctest SKIP) when no Clang is available to run the analysis.
set -u

root="${1:?usage: check_thread_safety.sh <repo-root> [compiler]}"
configured="${2:-}"

find_clang() {
  # The build's own compiler, when it is a Clang.
  if [[ -n "$configured" ]] &&
      "$configured" --version 2> /dev/null | grep -qi clang; then
    echo "$configured"
    return 0
  fi
  local c
  for c in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
           clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$c" > /dev/null 2>&1; then
      echo "$c"
      return 0
    fi
  done
  return 1
}

if ! cxx="$(find_clang)"; then
  echo "check_thread_safety: no Clang available — the analysis cannot run" \
       "(annotations expand to nothing off-Clang); skipping"
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
       -I "$root/src")
fixtures="$root/tests/thread_safety"
fail=0

# Positive control: correct locking must compile.
if out=$("$cxx" "${flags[@]}" "$fixtures/positive_control.cc" 2>&1); then
  echo "check_thread_safety: positive control compiles (flags are live)"
else
  echo "check_thread_safety: FAIL — positive control did not compile;" \
       "the harness flags are broken, negatives would prove nothing:" >&2
  printf '%s\n' "$out" >&2
  fail=1
fi

# Negatives: each must FAIL, and for the right reason.
for bad in guarded_by_violation missing_requires; do
  if out=$("$cxx" "${flags[@]}" "$fixtures/$bad.cc" 2>&1); then
    echo "check_thread_safety: FAIL — seeded violation $bad.cc compiled;" \
         "the analysis is not rejecting bad code" >&2
    fail=1
  elif ! grep -q "thread-safety" <<< "$out"; then
    echo "check_thread_safety: FAIL — $bad.cc failed to compile, but not" \
         "with a thread-safety diagnostic:" >&2
    printf '%s\n' "$out" >&2
    fail=1
  else
    echo "check_thread_safety: $bad.cc rejected with a thread-safety error"
  fi
done

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_thread_safety: analysis verified against seeded violations"
