#!/usr/bin/env bash
# One-stop correctness matrix (ISSUE 4): static lints, clang-tidy, and the
# full ctest suite under each sanitizer, with a per-stage summary.
#
#   sanitize_matrix.sh [repo-root] [--fast]   (root defaults to the repo
#                                              containing this script)
#
# Stages:
#   lint:locks      scripts/check_locks.sh (no naked std::mutex in src/)
#   lint:metrics    scripts/check_metrics.sh (metric-name hygiene)
#   build:werror    RelWithDebInfo, HDB_WERROR=ON, HDB_LOCK_RANK=ON,
#                   full ctest (this is also the tidy compile database).
#                   This is the one stage where BenchSmoke.compare runs
#                   for real (optimized, unsanitized): the BM_Exec*
#                   numbers are diffed against the committed
#                   BENCH_exec.json baseline (DESIGN.md §9).
#   build:tsa       Clang Thread Safety Analysis: the whole tree compiled
#                   by clang++ with -DHDB_THREAD_SAFETY=ON (-Wthread-safety
#                   -Werror=thread-safety), plus the negative-compile
#                   harness (scripts/check_thread_safety.sh) proving the
#                   annotations reject seeded violations, plus — being the
#                   matrix's one Clang tree — the coverage-guided libFuzzer
#                   run over the wire codec (-DHDB_LIBFUZZER=ON, ctest -R
#                   FuzzWire). Skipped, not failed, when no clang++ is
#                   installed — neither the analysis nor libFuzzer exists
#                   under GCC (FuzzWire.replay in the main suite still
#                   replays the corpus there).
#   tidy            clang-tidy with the repo .clang-tidy over src/**/*.cc
#                   (skipped, not failed, when clang-tidy is absent)
#   tsan            full ctest under ThreadSanitizer (a superset of
#                   check_metrics.sh --tsan, which builds only the
#                   observability/durability test subset). The batch
#                   executor's shared scan path is covered here by
#                   BatchParity.ConcurrentScansAgree; BenchSmoke.compare
#                   self-skips under every sanitizer (exit 77).
#   asan            full ctest under AddressSanitizer
#   ubsan           full ctest under UndefinedBehaviorSanitizer
#   tsan:net        ctest -L net re-run in the TSan tree, named in the
#                   summary (the epoll/worker-pool subsystem, §12)
#   tsan:parallel   ctest -L parallel likewise (exchange worker crews,
#                   morsel dispenser, shared memory account, §13)
#
# --fast keeps only lint + build:werror + tidy (the cheap static stages).
# Build trees live in <root>/build-matrix-*; they are reused across runs.
set -u

default_root="$(cd "$(dirname "$0")/.." && pwd)"
if [[ "${1:-}" == "--fast" ]]; then
  root="$default_root"
  mode="--fast"
else
  root="${1:-$default_root}"
  mode="${2:-}"
fi
jobs="$(nproc)"

declare -a stage_names=()
declare -a stage_results=()

note_stage() {
  stage_names+=("$1")
  stage_results+=("$2")
}

run_ctest_build() {
  # run_ctest_build <build-dir> <extra cmake args...>
  local build="$1"
  shift
  cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DHDB_LOCK_RANK=ON "$@" &&
    cmake --build "$build" -j "$jobs" &&
    (cd "$build" && ctest --output-on-failure -j "$jobs")
}

# ---- lint stages ----------------------------------------------------------
if "$root/scripts/check_locks.sh" "$root"; then
  note_stage "lint:locks" "PASS"
else
  note_stage "lint:locks" "FAIL"
fi

if "$root/scripts/check_metrics.sh" "$root"; then
  note_stage "lint:metrics" "PASS"
else
  note_stage "lint:metrics" "FAIL"
fi

# ---- warning-clean build + full suite (also the tidy compile DB) ----------
werror_build="$root/build-matrix-werror"
if run_ctest_build "$werror_build" -DHDB_WERROR=ON; then
  note_stage "build:werror" "PASS"
else
  note_stage "build:werror" "FAIL"
fi

# ---- Clang Thread Safety Analysis (compile-time lock discipline) ----------
find_clangxx() {
  local c
  for c in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
           clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$c" > /dev/null 2>&1; then
      echo "$c"
      return 0
    fi
  done
  return 1
}

if clangxx="$(find_clangxx)"; then
  tsa_build="$root/build-matrix-tsa"
  # Compile only (the suite already runs in build:werror): this stage's
  # products are the clean -Werror=thread-safety build itself, the
  # harness run that proves the flags reject seeded violations, and — as
  # this is the one Clang build tree in the matrix — the coverage-guided
  # libFuzzer run over the wire codec (FuzzWire.*).
  if cmake -B "$tsa_build" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
         -DCMAKE_CXX_COMPILER="$clangxx" -DHDB_LOCK_RANK=ON \
         -DHDB_THREAD_SAFETY=ON -DHDB_LIBFUZZER=ON &&
      cmake --build "$tsa_build" -j "$jobs" &&
      "$root/scripts/check_thread_safety.sh" "$root" "$clangxx" &&
      (cd "$tsa_build" && ctest --output-on-failure -R '^FuzzWire'); then
    note_stage "build:tsa" "PASS"
  else
    note_stage "build:tsa" "FAIL"
  fi
else
  echo "sanitize_matrix: no clang++ installed, skipping build:tsa stage" \
       "(Thread Safety Analysis does not exist under GCC)"
  note_stage "build:tsa" "SKIP"
fi

# ---- clang-tidy -----------------------------------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  if [[ -f "$werror_build/compile_commands.json" ]] &&
      find "$root/src" -name '*.cc' -print0 |
        xargs -0 -n 8 -P "$jobs" clang-tidy -p "$werror_build" --quiet; then
    note_stage "tidy" "PASS"
  else
    note_stage "tidy" "FAIL"
  fi
else
  echo "sanitize_matrix: clang-tidy not installed, skipping tidy stage"
  note_stage "tidy" "SKIP"
fi

# ---- sanitizer matrix -----------------------------------------------------
if [[ "$mode" != "--fast" ]]; then
  for san in thread address undefined; do
    if run_ctest_build "$root/build-matrix-$san" -DHDB_SANITIZE="$san"; then
      note_stage "$san" "PASS"
    else
      note_stage "$san" "FAIL"
    fi
  done

  # The network front end is the most thread-shaped subsystem (epoll loop
  # + worker pool + client threads, DESIGN.md §12): run its ctest label as
  # its own TSan stage so a race there is named in the summary instead of
  # drowning in the full-suite stage above.
  if (cd "$root/build-matrix-thread" && ctest --output-on-failure -L net); then
    note_stage "tsan:net" "PASS"
  else
    note_stage "tsan:net" "FAIL"
  fi

  # The intra-query parallel executor (DESIGN.md §13) is the other
  # deliberately thread-shaped subsystem: exchange worker crews racing on
  # the morsel dispenser, packet queues, and one shared TaskMemoryContext.
  # Same reasoning as tsan:net — name it in the summary.
  if (cd "$root/build-matrix-thread" &&
      ctest --output-on-failure -L parallel); then
    note_stage "tsan:parallel" "PASS"
  else
    note_stage "tsan:parallel" "FAIL"
  fi
fi

# ---- summary --------------------------------------------------------------
echo
echo "sanitize_matrix summary:"
fail=0
for i in "${!stage_names[@]}"; do
  printf '  %-14s %s\n' "${stage_names[$i]}" "${stage_results[$i]}"
  if [[ "${stage_results[$i]}" == "FAIL" ]]; then
    fail=1
  fi
done
exit "$fail"
