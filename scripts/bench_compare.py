#!/usr/bin/env python3
"""Compare two bench_smoke JSON files and fail on regressions.

    bench_compare.py <old.json> <new.json> [--tolerance 0.15]

Both files map bench name -> rows_per_sec (see scripts/bench_smoke.sh).
A bench regresses when new < old * (1 - tolerance); improvements and
benches present only in <new> are reported but never fail. A bench present
in <old> but missing from <new> fails — a silently dropped benchmark must
not read as a pass.

Exit status: 0 = no regression, 1 = at least one regression or a missing
bench, 2 = bad usage/unreadable input.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline JSON (bench -> rows_per_sec)")
    parser.add_argument("new", help="candidate JSON (bench -> rows_per_sec)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drop before a bench counts "
                             "as regressed (default 0.15)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print(f"bench_compare: tolerance {args.tolerance} outside [0, 1)",
              file=sys.stderr)
        return 2

    try:
        with open(args.old) as f:
            old = json.load(f)
        with open(args.new) as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    failures = []
    print(f"{'bench':32s} {'old':>14s} {'new':>14s} {'ratio':>8s}")
    for name in sorted(old):
        if name not in new:
            failures.append(f"{name}: missing from {args.new}")
            print(f"{name:32s} {old[name]:>14.1f} {'MISSING':>14s}")
            continue
        ratio = new[name] / old[name] if old[name] > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: {old[name]:.1f} -> {new[name]:.1f} /s "
                f"({(1.0 - ratio) * 100:.1f}% drop, tolerance "
                f"{args.tolerance * 100:.0f}%)")
            flag = "  REGRESSED"
        print(f"{name:32s} {old[name]:>14.1f} {new[name]:>14.1f} "
              f"{ratio:>8.3f}{flag}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:32s} {'(new)':>14s} {new[name]:>14.1f}")

    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s):",
              file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nbench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
