#!/usr/bin/env bash
# Crash-recovery soak: run the fault-injection recovery suite across many
# workload seeds. Each seed drives `tests/recovery_test.cc` through every
# crash point of its random workload under all three media-failure
# flavors (clean drop, torn write, short write), so the matrix is
#
#   seeds x crash points x {clean, torn, short}
#
# with the committed-durable / uncommitted-rolled-back / integrity checks
# after every simulated kill -9. Wired into the build as the
# `crash_matrix` custom target (nightly-style; the single-seed run is
# already in the regular ctest suite under the `crash` label:
# `ctest -L crash`).
#
#   crash_matrix.sh <recovery_test-binary> [seeds]
#
# Default 50 seeds — the durability acceptance bar. Exit code is the
# number of failing seeds (0 = clean sweep).
set -u

bin="${1:?usage: crash_matrix.sh <recovery_test-binary> [seeds]}"
seeds="${2:-50}"

if [[ ! -x "$bin" ]]; then
  echo "crash_matrix: $bin is not an executable" >&2
  exit 1
fi

failed=0
failed_seeds=()
for ((s = 1; s <= seeds; ++s)); do
  if out=$(HDB_SEED="$s" "$bin" 2>&1); then
    printf 'crash_matrix: seed %3d/%d ok\n' "$s" "$seeds"
  else
    printf 'crash_matrix: seed %3d/%d FAILED\n' "$s" "$seeds"
    printf '%s\n' "$out" | tail -40
    failed=$((failed + 1))
    failed_seeds+=("$s")
  fi
done

if [[ "$failed" -ne 0 ]]; then
  echo "crash_matrix: ${failed}/${seeds} seeds failed:" \
       "${failed_seeds[*]} (rerun one with HDB_SEED=<seed> $bin)" >&2
else
  echo "crash_matrix: all $seeds seeds survived every crash point"
fi
exit "$failed"
