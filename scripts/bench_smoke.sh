#!/usr/bin/env bash
# Perf-regression smoke (DESIGN.md §9): runs the executor microbenchmarks
# (micro_operators BM_Exec*) plus the single-thread rows of the
# concurrent_sessions bench and emits a flat JSON mapping
# bench -> rows_per_sec. Both workloads use fixed in-code seeds, so a
# shifted number means a perf change, not a data change.
#
#   bench_smoke.sh <build-dir> <out.json>
#   bench_smoke.sh --compare <baseline.json> --build-type <type> \
#                  --sanitize <sanitize> <build-dir> <out.json>
#   bench_smoke.sh --trace-overhead [--tolerance T] <build-dir> <out.json>
#
# The --compare form is the ctest entry point (BenchSmoke.compare): it
# regenerates <out.json> and diffs it against the committed baseline with
# scripts/bench_compare.py. Wall-clock numbers are only comparable from an
# optimized, unsanitized build, so the test SKIPS (exit 77) under
# -DHDB_SANITIZE=* or a non-Release/RelWithDebInfo build type.
#
# The --trace-overhead form guards the statement-tracing budget
# (DESIGN.md §11, target <= 2%): it configures a sibling build with
# -DHDB_TELEMETRY=OFF, runs the BM_Exec* microbenchmarks in both trees
# interleaved over 5 rounds, compares best per-iteration CPU time, and
# fails when the geometric-mean slowdown of tracing-on vs telemetry-off
# exceeds the tolerance (default 0.03: the 2% budget plus residual
# measurement noise). Same exit-77 guards as --compare. Invoke via
# `cmake --build <build> --target trace_overhead`.
set -eu

baseline=""
spill_baseline=""
parallel_baseline=""
build_type="RelWithDebInfo"
sanitize=""
trace_overhead=0
tolerance="0.03"
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --compare)       baseline="$2"; shift 2 ;;
    --compare=*)     baseline="${1#*=}"; shift ;;
    --compare-spill)   spill_baseline="$2"; shift 2 ;;
    --compare-spill=*) spill_baseline="${1#*=}"; shift ;;
    --compare-parallel)   parallel_baseline="$2"; shift 2 ;;
    --compare-parallel=*) parallel_baseline="${1#*=}"; shift ;;
    --build-type)    build_type="$2"; shift 2 ;;
    --build-type=*)  build_type="${1#*=}"; shift ;;
    --sanitize)      sanitize="$2"; shift 2 ;;
    --sanitize=*)    sanitize="${1#*=}"; shift ;;
    --trace-overhead) trace_overhead=1; shift ;;
    --tolerance)     tolerance="$2"; shift 2 ;;
    --tolerance=*)   tolerance="${1#*=}"; shift ;;
    *) echo "bench_smoke: unknown flag $1" >&2; exit 2 ;;
  esac
done

build="${1:?usage: bench_smoke.sh [--compare baseline.json] <build-dir> <out.json>}"
out="${2:?usage: bench_smoke.sh [--compare baseline.json] <build-dir> <out.json>}"
here="$(cd "$(dirname "$0")" && pwd)"

if [[ -n "$baseline" || "$trace_overhead" == 1 ]]; then
  if [[ -n "$sanitize" ]]; then
    echo "bench_smoke: sanitizer build ($sanitize), skipping perf compare"
    exit 77
  fi
  case "$build_type" in
    Release | RelWithDebInfo) ;;
    *)
      echo "bench_smoke: build type '$build_type' is not optimized," \
           "skipping perf compare"
      exit 77
      ;;
  esac
  # Wall-clock throughput is also meaningless when the host is already
  # busy (shared CI runners): with the 1-minute load ahead of the core
  # count, a clean build can read 40% slow. Skip rather than flake.
  cores=$(nproc)
  load=$(awk '{printf "%d", $1 * 10}' /proc/loadavg 2>/dev/null || echo 0)
  if (( load > cores * 10 )); then
    echo "bench_smoke: host load $(awk '{print $1}' /proc/loadavg) on" \
         "$cores core(s), skipping perf compare"
    exit 77
  fi
fi

if [[ "$trace_overhead" == 1 ]]; then
  # Tracing-on numbers come from the regular build; the baseline comes
  # from a sibling tree compiled with every obs/ mutation compiled out.
  notrace="$build-notrace"
  root="$(cd "$here/.." && pwd)"
  cmake -B "$notrace" -S "$root" -DHDB_TELEMETRY=OFF \
        -DCMAKE_BUILD_TYPE="$build_type" > /dev/null
  cmake --build "$notrace" -j "$(nproc)" --target micro_operators \
        > /dev/null
  cmake --build "$build" -j "$(nproc)" --target micro_operators > /dev/null

  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  # Measurement discipline: two sequential blocks (all-on, then all-off)
  # would let host drift — co-tenant load, frequency scaling — masquerade
  # as a tracing delta, so the two binaries run INTERLEAVED, 5 rounds
  # each. The comparison below then takes the best (minimum) per-iteration
  # CPU time per bench: tracing cost is CPU work, and CPU time is immune
  # to the scheduler-steal noise that dominates wall clock on shared
  # hosts. The leftover ~1% jitter is what the tolerance's headroom over
  # the 2% budget absorbs.
  run_bm() {
    "$1/bench/micro_operators" --benchmark_filter='BM_Exec' \
        --benchmark_min_time=0.5 \
        --benchmark_format=json > "$2"
  }
  for round in 1 2 3 4 5; do
    run_bm "$build" "$tmpdir/on.$round.json"
    run_bm "$notrace" "$tmpdir/off.$round.json"
  done

  python3 - "$tmpdir" "$out" "$tolerance" <<'EOF'
import glob
import json
import math
import sys

tmpdir, out_path, tol = sys.argv[1:4]
tol = float(tol)

def best_of(pattern):
    # Minimum CPU time per iteration across rounds = the run least
    # disturbed by the host; report it as rows/cpu-second.
    best = {}
    for path in glob.glob(pattern):
        with open(path) as f:
            for b in json.load(f)["benchmarks"]:
                if b.get("run_type") == "aggregate":
                    continue
                name = b["name"].split("/")[0]
                # cpu_time is per-iteration in time_unit (ns by default);
                # scale by items/iteration derived from the real-time rate.
                items_per_iter = b["items_per_second"] * b["real_time"] * 1e-9
                rate = items_per_iter / (b["cpu_time"] * 1e-9)
                best[name] = max(best.get(name, 0.0), rate)
    return best

on = best_of(f"{tmpdir}/on.*.json")
off = best_of(f"{tmpdir}/off.*.json")
common = sorted(set(on) & set(off))
if not common:
    sys.exit("bench_smoke: no common BM_Exec benchmarks between builds")

report = {}
log_sum = 0.0
for name in common:
    overhead = off[name] / on[name] - 1.0
    log_sum += math.log(off[name] / on[name])
    report[name] = {"tracing_on": round(on[name], 1),
                    "telemetry_off": round(off[name], 1),
                    "overhead": round(overhead, 4)}
geomean = math.exp(log_sum / len(common)) - 1.0
report["geomean_overhead"] = round(geomean, 4)

with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
for name in common:
    r = report[name]
    print(f"  {name:24s} on={r['tracing_on']:>14.1f}/s "
          f"off={r['telemetry_off']:>14.1f}/s "
          f"overhead={r['overhead']*100:+.2f}%")
print(f"bench_smoke: tracing geomean overhead {geomean*100:+.2f}% "
      f"(tolerance {tol*100:.1f}%)")
if geomean > tol:
    sys.exit(f"bench_smoke: statement tracing costs {geomean*100:.2f}% "
             f"> {tol*100:.1f}% budget")
EOF
  exit 0
fi

micro="$build/bench/micro_operators"
sessions="$build/bench/concurrent_sessions"
spill="$build/bench/spill_scan"
parallel="$build/bench/parallel_exec"
for bin in "$micro" "$sessions" "$spill" "$parallel"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: missing benchmark binary $bin" >&2
    exit 1
  fi
done

micro_json="$(mktemp)"
sessions_txt="$(mktemp)"
trap 'rm -f "$micro_json" "$sessions_txt"' EXIT

# BM_Exec* report items_per_second = base-table rows per wall second.
"$micro" --benchmark_filter='BM_Exec' --benchmark_min_time=0.5 \
         --benchmark_format=json > "$micro_json"

# The 1-thread rows are the stable ones (no scheduler/core-count noise);
# stmt_per_s there is 1 / (think time + statement latency).
"$sessions" > "$sessions_txt"

python3 - "$micro_json" "$sessions_txt" "$out" <<'EOF'
import json
import re
import sys

micro_json, sessions_txt, out_path = sys.argv[1:4]

result = {}
with open(micro_json) as f:
    for b in json.load(f)["benchmarks"]:
        name = b["name"]
        key = "exec_" + re.sub(r"^BM_Exec", "", name).lower()
        result[key] = round(b["items_per_second"], 1)

# concurrent_sessions prints one table per workload; take the threads=1
# row of each (columns: threads stmts aborted gate_timeouts stmt_per_s ...).
section = None
with open(sessions_txt) as f:
    for line in f:
        m = re.match(r"=== (\S+)", line.strip())
        if m:
            section = m.group(1).replace("-", "_")
            continue
        cols = line.split()
        if section and len(cols) >= 5 and cols[0] == "1" and cols[0].isdigit():
            result[f"sessions_{section}_1t"] = float(cols[4])
            section = None

expected = {"exec_seqscan", "exec_filter", "exec_aggregate", "exec_hashjoin"}
missing = expected - result.keys()
if missing:
    sys.exit(f"bench_smoke: missing benchmarks: {sorted(missing)}")

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_smoke: wrote {out_path}")
for k in sorted(result):
    print(f"  {k:32s} {result[k]:>14.1f} /s")
EOF

if [[ -n "$baseline" ]]; then
  python3 "$here/bench_compare.py" "$baseline" "$out" --tolerance 0.15
fi

# Larger-than-memory execution (DESIGN.md §10): spill_scan verifies its
# own results against an unconstrained run and emits its JSON directly.
spill_out="$(dirname "$out")/BENCH_spill_current.json"
"$spill" "$spill_out"
if [[ -n "$spill_baseline" ]]; then
  python3 "$here/bench_compare.py" "$spill_baseline" "$spill_out" \
          --tolerance 0.15
fi

# Intra-query parallelism (DESIGN.md §13, EXPERIMENTS C5): parallel_exec
# sweeps parallel.max_workers over the same join + group-by queries and
# emits BENCH_parallel.json. Wall-clock speedup is bounded by the host's
# core count, so the gate checks MECHANISM invariants — identical results
# at every width, zero pipelines in the serial run, crews and morsels
# actually dispatched at every parallel width — never times. With
# --compare-parallel the committed baseline's row counts must also match
# the fresh run (the workload is seeded, so a drift means an executor
# change, not a data change).
parallel_out="$(dirname "$out")/BENCH_parallel_current.json"
"$parallel" "$parallel_out"
python3 - "$parallel_out" "${parallel_baseline:-}" <<'EOF'
import json
import sys

cur_path, base_path = sys.argv[1], sys.argv[2]
fail = []

def check(path, doc):
    for key in ("hash_join", "hash_group_by"):
        runs = doc.get(key, [])
        if [r["max_workers"] for r in runs] != [1, 2, 4, 8]:
            fail.append(f"{path}: {key}: expected widths 1/2/4/8")
            continue
        for r in runs:
            w = r["max_workers"]
            if not r.get("result_identical"):
                fail.append(f"{path}: {key}@{w}: results differ from serial")
            if w == 1 and r["pipelines"] != 0:
                fail.append(f"{path}: {key}@1: serial run built a pipeline")
            if w > 1 and (r["pipelines"] < 1 or r["workers_started"] < 2
                          or r["morsels"] < 1):
                fail.append(f"{path}: {key}@{w}: no parallel execution "
                            f"(pipelines={r['pipelines']}, "
                            f"started={r['workers_started']}, "
                            f"morsels={r['morsels']})")
    return {k: [r["rows"] for r in doc.get(k, [])]
            for k in ("hash_join", "hash_group_by")}

with open(cur_path) as f:
    cur_rows = check(cur_path, json.load(f))
if base_path:
    with open(base_path) as f:
        base_rows = check(base_path, json.load(f))
    if base_rows != cur_rows:
        fail.append(f"row counts drifted: baseline {base_rows} "
                    f"vs current {cur_rows}")
if fail:
    sys.exit("bench_smoke: parallel mechanism check failed:\n  "
             + "\n  ".join(fail))
print("bench_smoke: parallel mechanism invariants hold"
      + (" (baseline row counts match)" if base_path else ""))
EOF
