#!/usr/bin/env bash
# Perf-regression smoke (DESIGN.md §9): runs the executor microbenchmarks
# (micro_operators BM_Exec*) plus the single-thread rows of the
# concurrent_sessions bench and emits a flat JSON mapping
# bench -> rows_per_sec. Both workloads use fixed in-code seeds, so a
# shifted number means a perf change, not a data change.
#
#   bench_smoke.sh <build-dir> <out.json>
#   bench_smoke.sh --compare <baseline.json> --build-type <type> \
#                  --sanitize <sanitize> <build-dir> <out.json>
#
# The --compare form is the ctest entry point (BenchSmoke.compare): it
# regenerates <out.json> and diffs it against the committed baseline with
# scripts/bench_compare.py. Wall-clock numbers are only comparable from an
# optimized, unsanitized build, so the test SKIPS (exit 77) under
# -DHDB_SANITIZE=* or a non-Release/RelWithDebInfo build type.
set -eu

baseline=""
spill_baseline=""
build_type="RelWithDebInfo"
sanitize=""
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --compare)       baseline="$2"; shift 2 ;;
    --compare=*)     baseline="${1#*=}"; shift ;;
    --compare-spill)   spill_baseline="$2"; shift 2 ;;
    --compare-spill=*) spill_baseline="${1#*=}"; shift ;;
    --build-type)    build_type="$2"; shift 2 ;;
    --build-type=*)  build_type="${1#*=}"; shift ;;
    --sanitize)      sanitize="$2"; shift 2 ;;
    --sanitize=*)    sanitize="${1#*=}"; shift ;;
    *) echo "bench_smoke: unknown flag $1" >&2; exit 2 ;;
  esac
done

build="${1:?usage: bench_smoke.sh [--compare baseline.json] <build-dir> <out.json>}"
out="${2:?usage: bench_smoke.sh [--compare baseline.json] <build-dir> <out.json>}"
here="$(cd "$(dirname "$0")" && pwd)"

if [[ -n "$baseline" ]]; then
  if [[ -n "$sanitize" ]]; then
    echo "bench_smoke: sanitizer build ($sanitize), skipping perf compare"
    exit 77
  fi
  case "$build_type" in
    Release | RelWithDebInfo) ;;
    *)
      echo "bench_smoke: build type '$build_type' is not optimized," \
           "skipping perf compare"
      exit 77
      ;;
  esac
  # Wall-clock throughput is also meaningless when the host is already
  # busy (shared CI runners): with the 1-minute load ahead of the core
  # count, a clean build can read 40% slow. Skip rather than flake.
  cores=$(nproc)
  load=$(awk '{printf "%d", $1 * 10}' /proc/loadavg 2>/dev/null || echo 0)
  if (( load > cores * 10 )); then
    echo "bench_smoke: host load $(awk '{print $1}' /proc/loadavg) on" \
         "$cores core(s), skipping perf compare"
    exit 77
  fi
fi

micro="$build/bench/micro_operators"
sessions="$build/bench/concurrent_sessions"
spill="$build/bench/spill_scan"
for bin in "$micro" "$sessions" "$spill"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: missing benchmark binary $bin" >&2
    exit 1
  fi
done

micro_json="$(mktemp)"
sessions_txt="$(mktemp)"
trap 'rm -f "$micro_json" "$sessions_txt"' EXIT

# BM_Exec* report items_per_second = base-table rows per wall second.
"$micro" --benchmark_filter='BM_Exec' --benchmark_min_time=0.5 \
         --benchmark_format=json > "$micro_json"

# The 1-thread rows are the stable ones (no scheduler/core-count noise);
# stmt_per_s there is 1 / (think time + statement latency).
"$sessions" > "$sessions_txt"

python3 - "$micro_json" "$sessions_txt" "$out" <<'EOF'
import json
import re
import sys

micro_json, sessions_txt, out_path = sys.argv[1:4]

result = {}
with open(micro_json) as f:
    for b in json.load(f)["benchmarks"]:
        name = b["name"]
        key = "exec_" + re.sub(r"^BM_Exec", "", name).lower()
        result[key] = round(b["items_per_second"], 1)

# concurrent_sessions prints one table per workload; take the threads=1
# row of each (columns: threads stmts aborted gate_timeouts stmt_per_s ...).
section = None
with open(sessions_txt) as f:
    for line in f:
        m = re.match(r"=== (\S+)", line.strip())
        if m:
            section = m.group(1).replace("-", "_")
            continue
        cols = line.split()
        if section and len(cols) >= 5 and cols[0] == "1" and cols[0].isdigit():
            result[f"sessions_{section}_1t"] = float(cols[4])
            section = None

expected = {"exec_seqscan", "exec_filter", "exec_aggregate", "exec_hashjoin"}
missing = expected - result.keys()
if missing:
    sys.exit(f"bench_smoke: missing benchmarks: {sorted(missing)}")

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_smoke: wrote {out_path}")
for k in sorted(result):
    print(f"  {k:32s} {result[k]:>14.1f} /s")
EOF

if [[ -n "$baseline" ]]; then
  python3 "$here/bench_compare.py" "$baseline" "$out" --tolerance 0.15
fi

# Larger-than-memory execution (DESIGN.md §10): spill_scan verifies its
# own results against an unconstrained run and emits its JSON directly.
spill_out="$(dirname "$out")/BENCH_spill_current.json"
"$spill" "$spill_out"
if [[ -n "$spill_baseline" ]]; then
  python3 "$here/bench_compare.py" "$spill_baseline" "$spill_out" \
          --tolerance 0.15
fi
